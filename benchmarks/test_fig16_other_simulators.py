"""Bench: Fig. 16 - Q-GPU vs Google Qsim-Cirq and Microsoft QDK."""

from repro.experiments.fig16_other_simulators import run


def test_fig16_other_simulators(run_once) -> None:
    result = run_once(run)
    averages = result.data["averages"]
    speedups = result.data["speedups"]

    # Q-GPU wins against both (paper: 2.02x and 10.82x; our stronger
    # reorder pass pushes the factors higher - direction and ordering are
    # the reproduced claims).
    assert averages["Qsim-Cirq"] > 2.0
    assert averages["QDK"] > 10.0
    assert averages["QDK"] > averages["Qsim-Cirq"]
    assert all(s > 1.0 for s in speedups["Qsim-Cirq"])
    assert all(s > 1.0 for s in speedups["QDK"])
