"""Measured planner benchmark: selection accuracy and speedup vs always-dense.

For each benchmark circuit the adaptive planner (``repro.planner.plan``)
picks a backend; this benchmark then *measures* every feasible backend on
the same circuit in the same process and scores the planner two ways:

* **selection accuracy** - the fraction of circuits where the planner's
  pick is (within a noise tolerance) the measured-fastest feasible
  backend.  A pick counts as correct when its measured time is within
  ``TOLERANCE`` of the fastest, so near-ties at a crossover width do not
  flap the gate.
* **geomean speedup vs always-dense** - wall-clock of the planner's
  chosen backend against the dense complex128 engine on every circuit.
  The recipe only pays off if this exceeds 1.  Planning itself (feature
  analysis + pricing, dominated by the bounded sparse probe) is timed and
  reported separately as ``plan_seconds``: it is a per-circuit one-off
  that amortises over shots and re-runs, and at benchmark widths it is
  the same order as an entire sub-millisecond dense simulation, so
  folding it into the per-run ratio would measure the probe, not the
  routing.  ``auto_seconds`` (a full ``backend="auto"`` run, planning
  included) is recorded too so the overhead stays visible.

The circuit set spans the planner's routing space: pure-Clifford families
(``bv``/``gs``/``hlf`` - tableau wins), support-sparse ``w`` states
(hash-map wins), and dense families (``qft``/``rqc``/``qaoa``/``iqp`` -
the chunked engine wins, in complex64 when the norm guard allows).

Results are printed and written to ``BENCH_planner.json``;
``benchmarks/check_planner_regression.py`` gates on accuracy >= 0.8 and
geomean speedup > 1.  Set ``QGPU_BENCH_SMOKE=1`` for a fast CI-sized run
(narrower circuits, fewer repeats).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.planner import DEFAULT_CONFIG, all_backend_costs, analyze_circuit, plan

SMOKE = os.environ.get("QGPU_BENCH_SMOKE", "") not in ("", "0")

# Best-of-N wall-clock per backend; ratios of minima are what we gate on.
REPEATS = 2 if SMOKE else 5

#: (family, full-mode width, smoke-mode width, backend the planner must pick).
CASES = (
    ("bv", 16, 12, "stabilizer"),
    ("gs", 16, 12, "stabilizer"),
    ("hlf", 16, 12, "stabilizer"),
    ("w", 14, 10, "sparse"),
    ("w", 16, 12, "sparse"),
    ("qft", 11, 9, "statevector"),
    ("rqc", 10, 8, "statevector"),
    ("qaoa", 12, 10, "statevector"),
    ("iqp", 11, 9, "statevector"),
)

#: A pick is "correct" when its measured time is within this factor of the
#: measured-fastest feasible backend (absorbs timing noise at crossovers).
TOLERANCE = 1.3

RESULTS_PATH = Path("BENCH_planner.json")


def _time_run(simulator: QGpuSimulator, circuit) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        simulator.run(circuit)
        best = min(best, time.perf_counter() - start)
    return best


def _measure_case(family: str, qubits: int, expected: str) -> dict:
    circuit = get_circuit(family, qubits)
    plan_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        chosen = plan(circuit, DEFAULT_CONFIG)
        plan_best = min(plan_best, time.perf_counter() - start)
    features = analyze_circuit(circuit)
    measured: dict[str, float] = {}
    for cost in all_backend_costs(features):
        if not cost.feasible or cost.approximate:
            continue
        measured[cost.backend] = _time_run(
            QGpuSimulator(backend=cost.backend), circuit
        )
    fastest = min(measured, key=measured.get)
    correct = measured[chosen.backend] <= TOLERANCE * measured[fastest]
    auto_seconds = _time_run(
        QGpuSimulator(backend="auto", precision="auto"), circuit
    )
    dense_seconds = measured["statevector"]
    return {
        "circuit": circuit.name,
        "selected": chosen.backend,
        "selected_precision": chosen.precision,
        "expected": expected,
        "fastest_measured": fastest,
        "correct": correct,
        "measured_seconds": measured,
        "plan_seconds": plan_best,
        "auto_seconds": auto_seconds,
        "dense_seconds": dense_seconds,
        "speedup_vs_dense": dense_seconds / measured[chosen.backend],
    }


def test_planner_selection_and_speedup():
    cases = []
    for family, full_width, smoke_width, expected in CASES:
        qubits = smoke_width if SMOKE else full_width
        cases.append(_measure_case(family, qubits, expected))

    accuracy = sum(case["correct"] for case in cases) / len(cases)
    product = 1.0
    for case in cases:
        product *= case["speedup_vs_dense"]
    geomean = product ** (1.0 / len(cases))

    payload = {
        "mode": "smoke" if SMOKE else "full",
        "repeats": REPEATS,
        "tolerance": TOLERANCE,
        "accuracy": accuracy,
        "geomean_speedup_vs_dense": geomean,
        "cases": cases,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print(f"{'circuit':<10} {'selected':<12} {'fastest':<12} "
          f"{'ok':<3} {'vs dense':>9} {'plan ms':>8}")
    for case in cases:
        print(f"{case['circuit']:<10} {case['selected']:<12} "
              f"{case['fastest_measured']:<12} "
              f"{'yes' if case['correct'] else 'NO':<3} "
              f"{case['speedup_vs_dense']:>8.2f}x "
              f"{case['plan_seconds'] * 1e3:>7.2f}")
    print(f"selection accuracy : {accuracy:.0%}")
    print(f"geomean vs dense   : {geomean:.2f}x")

    # The planner must route the paper's Clifford and sparse families off
    # the dense engine regardless of local timing noise.
    for case in cases:
        if case["expected"] != "statevector":
            assert case["selected"] == case["expected"], (
                f"{case['circuit']}: planner chose {case['selected']}, "
                f"expected {case['expected']}"
            )
    assert accuracy >= 0.8, f"selection accuracy {accuracy:.0%} below 80%"
    assert geomean > 1.0, f"geomean speedup {geomean:.2f}x not above 1"
