"""Ablation: live-set GPU residency (extension beyond the paper).

The paper's design streams live chunks from host memory on every gate; this
ablation caches the pruned live set on the GPU while it fits
(``VersionConfig.live_residency``), quantifying what the paper's circular-
buffer design leaves on the table for late-involvement circuits.
"""

from repro.analysis.tables import format_table
from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import REORDER, VersionConfig
from repro.hardware.specs import PAPER_MACHINE

RESIDENT = VersionConfig(
    "Reorder+residency", dynamic_allocation=True, overlap=True, pruning=True,
    reorder_strategy="forward_looking", live_residency=True,
)

FAMILIES = ("iqp", "gs", "qft", "qaoa", "hchain")
NUM_QUBITS = 32


def run_ablation() -> dict[str, tuple[float, float]]:
    results = {}
    for family in FAMILIES:
        circuit = get_circuit(family, NUM_QUBITS)
        streaming = QGpuSimulator(version=REORDER).estimate(circuit).total_seconds
        resident = QGpuSimulator(version=RESIDENT).estimate(circuit).total_seconds
        results[family] = (streaming, resident)
    return results


def test_ablation_live_residency(benchmark) -> None:
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [family, streaming, resident, streaming / resident]
        for family, (streaming, resident) in results.items()
    ]
    print()
    print(format_table(
        ["circuit", "streaming_s", "resident_s", "speedup"], rows,
        title=f"[ablation] live-set residency at {NUM_QUBITS} qubits (P100)",
    ))
    for family, (streaming, resident) in results.items():
        # Residency can only help (never adds work).
        assert resident <= streaming * 1.001, family
    # Late-involvement circuits benefit the most from caching the live set.
    gain = {f: s / r for f, (s, r) in results.items()}
    assert gain["iqp"] > gain["qaoa"]
