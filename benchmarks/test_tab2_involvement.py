"""Bench: Table II - operations before full qubit involvement."""

from repro.experiments.tab2_involvement import run


def test_tab2_involvement(run_once) -> None:
    result = run_once(run)
    measured = result.data["measured_pct"]
    assert max(measured, key=measured.get) == "iqp"
    assert measured["iqp"] > 80  # paper: 90.41%
    for family in ("qaoa", "qft", "qf", "hchain"):
        assert measured[family] < 15, family
    for family in ("rqc", "gs", "hlf", "bv"):
        assert 15 < measured[family] < 70, family
