"""Measured tracing overhead: disabled tracer must be near-free.

The observability layer promises that an un-traced run pays essentially
nothing for the instrumentation now wired through the simulator, engine
and kernels.  This benchmark times the same full functional simulation
three ways in one process:

* ``baseline`` - ``QGpuSimulator`` with no tracer argument (the
  :data:`~repro.obs.NULL_TRACER` default path),
* ``disabled`` - an explicit ``Tracer(enabled=False)``: counters attach
  but spans are no-ops.  The gate asserts this costs < 3% over baseline
  (best-of-N minima, so host noise cancels),
* ``enabled``  - a live :class:`~repro.obs.Tracer` with a
  :class:`~repro.obs.LogicalClock`, reported for context (not gated; a
  real trace is allowed to cost real time),
* ``enabled_nohist`` - the same live tracer with ``histograms=False``,
  isolating what the streaming duration histograms add on top of span
  recording.

A second benchmark times the trace-analysis engine itself
(:func:`repro.obs.analyze` - rollups, critical path, overlap, top-k)
over the span list of a real traced run.

Results go to ``BENCH_obs.json``.  Set ``QGPU_BENCH_SMOKE=1`` for a
CI-sized run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import VERSIONS_BY_NAME
from repro.obs import LogicalClock, Tracer

SMOKE = os.environ.get("QGPU_BENCH_SMOKE", "") not in ("", "0")

NUM_QUBITS = 12 if SMOKE else 16
REPEATS = 3 if SMOKE else 7
# The gate: disabled-tracer minimum over no-tracer minimum, plus a small
# absolute allowance so microsecond-scale jitter cannot fail a run whose
# absolute cost is far below a millisecond.
MAX_DISABLED_OVERHEAD = 0.03
JITTER_ALLOWANCE_S = 2e-3

# Repo-root anchored like the other BENCH_* artifacts (the ledger ingests
# all four from the root), not cwd-relative.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _best_of(run) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _update_results(fields: dict) -> None:
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except (OSError, ValueError):
            payload = {}
    payload.update(fields)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_disabled_tracer_overhead() -> None:
    circuit = get_circuit("qft", NUM_QUBITS)
    version = VERSIONS_BY_NAME["Q-GPU"]

    def run(tracer: Tracer | None) -> None:
        QGpuSimulator(version=version, workers=1, tracer=tracer).run(circuit)

    run(None)  # warm caches (BLAS pools, imports) outside the timed region
    baseline_s = _best_of(lambda: run(None))
    disabled_s = _best_of(lambda: run(Tracer(enabled=False)))
    enabled_s = _best_of(lambda: run(Tracer(clock=LogicalClock())))
    nohist_s = _best_of(
        lambda: run(Tracer(clock=LogicalClock(), histograms=False))
    )

    overhead = disabled_s / baseline_s - 1.0
    payload = {
        "mode": "smoke" if SMOKE else "full",
        "num_qubits": NUM_QUBITS,
        "repeats": REPEATS,
        "baseline_seconds": baseline_s,
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "enabled_nohist_seconds": nohist_s,
        "disabled_overhead": overhead,
        "enabled_overhead": enabled_s / baseline_s - 1.0,
        "histogram_overhead": enabled_s / nohist_s - 1.0,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }
    _update_results(payload)
    print(f"\n  obs overhead bench ({payload['mode']}, qft_{NUM_QUBITS})")
    print(f"  baseline {baseline_s * 1e3:8.2f} ms")
    print(f"  disabled {disabled_s * 1e3:8.2f} ms ({overhead:+.1%})")
    print(f"  enabled  {enabled_s * 1e3:8.2f} ms "
          f"({payload['enabled_overhead']:+.1%})")
    print(f"  no-hist  {nohist_s * 1e3:8.2f} ms "
          f"(histograms add {payload['histogram_overhead']:+.1%})")
    print(f"  wrote {RESULTS_PATH}")

    assert disabled_s <= baseline_s * (1 + MAX_DISABLED_OVERHEAD) + JITTER_ALLOWANCE_S, (
        f"disabled tracer costs {overhead:.1%} over the untraced baseline "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_analyzer_runtime() -> None:
    """Time the full trace-analysis pass over a real traced run."""
    from repro.obs import analyze

    circuit = get_circuit("qft", NUM_QUBITS)
    version = VERSIONS_BY_NAME["Q-GPU"]
    tracer = Tracer(clock=LogicalClock())
    QGpuSimulator(version=version, workers=1, tracer=tracer).run(circuit)
    spans = tracer.spans
    analyze(spans)  # warm
    analyze_s = _best_of(lambda: analyze(spans))

    fields = {
        "analyzer_span_count": len(spans),
        "analyzer_seconds": analyze_s,
        "analyzer_spans_per_second": (
            len(spans) / analyze_s if analyze_s > 0 else None
        ),
    }
    _update_results(fields)
    print(f"\n  trace analyzer: {len(spans)} spans in {analyze_s * 1e3:.2f} ms")
    print(f"  wrote {RESULTS_PATH}")

    # Sanity floor, not a perf gate: analysis of a modest trace must not
    # take longer than the simulation it describes typically does.
    assert analyze_s < 5.0


def test_profiler_and_memory_overhead() -> None:
    """Cost of the deep-performance additions, for the ledger's history.

    Times the same run with (a) the sampling profiler attached and
    running and (b) per-span memory telemetry, against the plain enabled
    tracer.  Neither is gated - both are opt-in features whose budget is
    "cheap enough to leave on when asked for" - but the numbers land in
    ``BENCH_obs.json`` so the perf ledger tracks them over time.  The
    disabled path (no profiler object at all) stays covered by the <3%
    gate above.
    """
    from repro.obs import SamplingProfiler

    circuit = get_circuit("qft", NUM_QUBITS)
    version = VERSIONS_BY_NAME["Q-GPU"]

    def run(tracer: Tracer) -> None:
        QGpuSimulator(version=version, workers=1, tracer=tracer).run(circuit)

    run(Tracer(clock=LogicalClock()))  # warm
    enabled_s = _best_of(lambda: run(Tracer(clock=LogicalClock())))

    def profiled() -> None:
        profiler = SamplingProfiler()
        with profiler:
            run(Tracer(clock=LogicalClock(), profiler=profiler))

    profiled_s = _best_of(profiled)
    memory_s = _best_of(
        lambda: run(Tracer(clock=LogicalClock(), memory=True))
    )
    fields = {
        "profiler_seconds": profiled_s,
        "profiler_overhead": profiled_s / enabled_s - 1.0,
        "memory_seconds": memory_s,
        "memory_overhead": memory_s / enabled_s - 1.0,
    }
    _update_results(fields)
    print(f"\n  profiler  {profiled_s * 1e3:8.2f} ms "
          f"({fields['profiler_overhead']:+.1%} over enabled tracer)")
    print(f"  memory    {memory_s * 1e3:8.2f} ms "
          f"({fields['memory_overhead']:+.1%} over enabled tracer)")
    print(f"  wrote {RESULTS_PATH}")
