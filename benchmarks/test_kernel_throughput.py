"""Measured micro-benchmarks of the functional kernels.

Unlike the modelled GPU benches, these time the actual Python/numpy
implementations in this process with pytest-benchmark's statistics:

* dense single-/two-qubit gate application at 2^20 amplitudes,
* the GFC codec's compress and decompress paths,
* a stabilizer tableau gate,
* an MPS two-site update.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.compression.gfc import compress, decompress
from repro.mps import MpsState
from repro.stabilizer import StabilizerState
from repro.statevector.apply import apply_gate

KERNEL_QUBITS = 20


@pytest.fixture(scope="module")
def _dense_state_template() -> np.ndarray:
    generator = np.random.default_rng(0)
    state = generator.normal(size=1 << KERNEL_QUBITS) + 1j * generator.normal(
        size=1 << KERNEL_QUBITS
    )
    return (state / np.linalg.norm(state)).astype(np.complex128)


@pytest.fixture
def dense_state(_dense_state_template: np.ndarray) -> np.ndarray:
    # The kernels mutate the state in place; hand every benchmark its own
    # fresh copy so one test's repeated applications never drift the input
    # of the next (module scope here once meant later benchmarks timed a
    # progressively transformed, unnormalised vector).
    return _dense_state_template.copy()


def test_kernel_single_qubit_dense(benchmark, dense_state) -> None:
    gate = Gate("h", (7,))
    benchmark(apply_gate, dense_state, gate)
    amps_per_second = (1 << KERNEL_QUBITS) / benchmark.stats["mean"]
    print(f"\n  h-gate: {amps_per_second / 1e6:.0f} M amplitudes/s")


def test_kernel_diagonal_gate(benchmark, dense_state) -> None:
    gate = Gate("rz", (13,), (0.3,))
    benchmark(apply_gate, dense_state, gate)


def test_kernel_two_qubit_gate(benchmark, dense_state) -> None:
    gate = Gate("cx", (3, 17),)
    benchmark(apply_gate, dense_state, gate)


def test_kernel_gfc_compress(benchmark, dense_state) -> None:
    benchmark(compress, dense_state, 8)
    bytes_per_second = dense_state.nbytes / benchmark.stats["mean"]
    print(f"\n  gfc compress: {bytes_per_second / 1e6:.0f} MB/s")


def test_kernel_gfc_decompress(benchmark, dense_state) -> None:
    stream = compress(dense_state, num_segments=8)
    benchmark(decompress, stream)


def test_kernel_tableau_gate(benchmark) -> None:
    state = StabilizerState(512)
    gate = Gate("cx", (100, 400))

    def run() -> None:
        state.apply(gate)

    benchmark(run)


def test_kernel_mps_two_site(benchmark) -> None:
    state = MpsState(24)
    # Entangle once so the two-site update includes a real SVD.
    state.apply(Gate("h", (11,)))
    gate = Gate("cx", (11, 12))

    def run() -> None:
        state.apply(gate)

    benchmark(run)
