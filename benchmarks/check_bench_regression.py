"""CI gate: one verdict over the whole benchmark surface.

Wraps (never supersedes) the two existing gates -
``check_kernel_regression.py`` and ``check_planner_regression.py`` - and
adds the perf-ledger comparison on top: the newest ``BENCH_LEDGER.jsonl``
record is diffed against the most recent earlier record with the **same
environment fingerprint and mode** (see :mod:`repro.obs.ledger`).  When
no comparable record exists - the usual case on a fresh CI runner, whose
fingerprint differs from any committed snapshot - the ledger step passes
with a note; the wrapped gates still enforce their host-portable
thresholds, so CI always has one authoritative exit code.

Usage::

    python benchmarks/check_bench_regression.py [--root DIR] \
        [--ledger FILE] [--tolerance 0.2] [--ledger-tolerance 0.05] \
        [--json FILE]

exits 0 when every sub-gate passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# The sibling gate scripts are plain scripts, not a package: make them
# importable no matter where this one is invoked from.
sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import check_kernel_regression  # noqa: E402
import check_planner_regression  # noqa: E402


def ledger_gate(
    ledger_path: Path, tolerance: float = 0.05
) -> dict:
    """The per-fingerprint ledger comparison as a gate verdict."""
    from repro.obs.ledger import baseline_for, diff_records, load_ledger

    verdict: dict = {
        "gate": "ledger",
        "ledger": str(ledger_path),
        "tolerance": tolerance,
        "checks": [],
        "failures": [],
        "passed": True,
    }
    if not ledger_path.exists():
        verdict["note"] = "no ledger file; nothing to compare"
        return verdict
    records = load_ledger(ledger_path)
    if not records:
        verdict["note"] = "empty ledger; nothing to compare"
        return verdict
    latest = records[-1]
    baseline = baseline_for(records[:-1], latest)
    verdict["fingerprint_id"] = latest.get("fingerprint_id")
    verdict["mode"] = latest.get("mode")
    if baseline is None:
        verdict["note"] = (
            "no earlier record shares this fingerprint and mode "
            "(first run on this environment); passing"
        )
        return verdict
    entries = diff_records(baseline, latest, tolerance=tolerance)
    regressions = [e for e in entries if e.regressed]
    verdict["compared"] = len(entries)
    verdict["checks"] = [
        {
            "case": e.bench,
            "metric": e.metric,
            "baseline": e.baseline,
            "current": e.latest,
            "ratio": e.ratio,
            "direction": e.direction,
            "passed": not e.regressed,
        }
        for e in regressions
    ]
    verdict["failures"] = [
        f"{e.bench}.{e.metric}: {e.baseline:.6g} -> {e.latest:.6g}"
        for e in regressions
    ]
    verdict["passed"] = not regressions
    return verdict


def fleet_gate(bench_path: Path) -> dict:
    """Fleet-observatory invariants over ``BENCH_fleet.json``.

    Host-portable correctness checks, not timing thresholds: the
    trace-side communication matrix must equal the DES executor's own
    transfer accounting exactly, load imbalance is >= 1 by construction,
    and every strong-scaling row must report positive time and speedup
    (no linearity gate - the closed-form model legitimately goes
    superlinear once the aggregate pool holds the whole state).
    """
    verdict: dict = {
        "gate": "fleet",
        "bench": str(bench_path),
        "checks": [],
        "failures": [],
        "passed": True,
    }
    if not bench_path.exists():
        verdict["note"] = "no BENCH_fleet.json; run benchmarks/test_fleet_scaling.py"
        return verdict
    try:
        payload = json.loads(bench_path.read_text())
    except (OSError, ValueError) as exc:
        verdict["failures"].append(f"unreadable bench file: {exc}")
        verdict["passed"] = False
        return verdict

    def check(name: str, passed: bool, detail: str) -> None:
        verdict["checks"].append(
            {"case": name, "passed": passed, "detail": detail}
        )
        if not passed:
            verdict["failures"].append(f"{name}: {detail}")

    comm = payload.get("comm_bytes_total")
    des = payload.get("des_transfer_bytes")
    if comm is not None or des is not None:
        check(
            "comm_identity",
            comm == des and comm is not None,
            f"trace comm matrix {comm} vs DES transfers {des}",
        )
        imbalance = payload.get("load_imbalance")
        check(
            "load_imbalance",
            isinstance(imbalance, (int, float)) and imbalance >= 1.0,
            f"max/mean busy = {imbalance}",
        )
    for sweep in ("strong", "weak"):
        rows = payload.get(sweep) or []
        for row in rows:
            ok = row.get("seconds", 0) > 0 and (
                sweep == "weak" or row.get("speedup", 0) > 0
            )
            if not ok:
                check(sweep, False, f"non-positive metrics in {row.get('name')}")
        if rows:
            check(sweep, True, f"{len(rows)} rows positive")
    verdict["passed"] = not verdict["failures"]
    return verdict


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--ledger", default=None, metavar="FILE",
                        help="ledger file (default: ROOT/BENCH_LEDGER.jsonl)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="kernel-gate speedup tolerance (default 0.2)")
    parser.add_argument("--ledger-tolerance", type=float, default=0.05,
                        help="ledger-diff regression tolerance (default 0.05)")
    parser.add_argument("--min-accuracy", type=float, default=0.8,
                        help="planner-gate accuracy floor (default 0.8)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="planner-gate geomean floor (default 1.0)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the combined verdict JSON here")
    args = parser.parse_args(argv)

    root = Path(args.root)
    ledger_path = Path(args.ledger) if args.ledger else root / "BENCH_LEDGER.jsonl"
    gates = [
        check_kernel_regression.run_gate(
            root / "BENCH_kernels.json", tolerance=args.tolerance
        ),
        check_planner_regression.run_gate(
            root / "BENCH_planner.json",
            min_accuracy=args.min_accuracy,
            min_speedup=args.min_speedup,
        ),
        fleet_gate(root / "BENCH_fleet.json"),
        ledger_gate(ledger_path, tolerance=args.ledger_tolerance),
    ]
    combined = {
        "gates": gates,
        "passed": all(gate["passed"] for gate in gates),
    }
    for gate in gates:
        status = "PASS" if gate["passed"] else "FAIL"
        note = f" ({gate['note']})" if gate.get("note") else ""
        print(f"{status}  {gate['gate']:<8} "
              f"{len(gate.get('checks', []))} check(s), "
              f"{len(gate.get('failures', []))} failure(s){note}")
        for failure in gate.get("failures", []):
            print(f"      - {failure}", file=sys.stderr)
    if args.json:
        Path(args.json).write_text(
            json.dumps(combined, sort_keys=True, indent=1) + "\n"
        )
        print(f"verdict JSON written to {args.json}")
    if combined["passed"]:
        print("all benchmark gates green")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
