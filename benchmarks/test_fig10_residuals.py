"""Bench: Fig. 10 - residual distributions of qaoa vs iqp."""

from repro.experiments.fig10_residuals import run


def test_fig10_residuals(run_once) -> None:
    result = run_once(run)
    stats = result.data["stats"]
    qaoa_res, _, qaoa_ratio = stats["qaoa"]
    iqp_res, _, iqp_ratio = stats["iqp"]
    assert qaoa_res.near_zero_fraction > iqp_res.near_zero_fraction
    assert qaoa_ratio < iqp_ratio  # qaoa compressible, iqp not
