"""Extension bench: basis-tracking pruning (beyond the paper).

Generalises Algorithm 1 from one bit per qubit (involved/not) to three
states (fixed-0 / fixed-1 / free): X gates and fixed-control CX/CCX are
basis permutations that never inflate the live set, and diagonal gates are
skipped as in the diagonal-aware extension.  Soundness is proven against
real simulations in the test suite.

Expected shape: subsumes the diagonal-aware win on qft, adds a new win on
hchain (its Hartree-Fock X-preparation and fixed-control ladder steps), and
is neutral where superposition genuinely spreads (qaoa, gs).
"""

from repro.analysis.tables import format_table
from repro.circuits.library import FAMILIES, get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import PRUNING, VersionConfig

DIAGONAL_AWARE = VersionConfig(
    "Pruning+diag", dynamic_allocation=True, overlap=True, pruning=True,
    diagonal_aware_pruning=True,
)
BASIS_TRACKING = VersionConfig(
    "Pruning+basis", dynamic_allocation=True, overlap=True, pruning=True,
    basis_tracking_pruning=True,
)
NUM_QUBITS = 32


def run_ablation() -> dict[str, tuple[float, float, float]]:
    results = {}
    for family in FAMILIES:
        circuit = get_circuit(family, NUM_QUBITS)
        paper = QGpuSimulator(version=PRUNING).estimate(circuit).total_seconds
        diag = QGpuSimulator(version=DIAGONAL_AWARE).estimate(circuit).total_seconds
        basis = QGpuSimulator(version=BASIS_TRACKING).estimate(circuit).total_seconds
        results[family] = (paper, diag, basis)
    return results


def test_ext_basis_tracking_pruning(benchmark) -> None:
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [family, paper, diag, basis, paper / basis]
        for family, (paper, diag, basis) in results.items()
    ]
    print()
    print(format_table(
        ["circuit", "algorithm1_s", "diag_aware_s", "basis_s", "gain_vs_alg1"],
        rows, title=f"[extension] basis-tracking pruning at {NUM_QUBITS}q",
    ))
    for family, (paper, diag, basis) in results.items():
        # Sound and subsuming: never slower than either predecessor.
        assert basis <= paper * 1.001, family
        assert basis <= diag * 1.01, family
    # New win on hchain (X-prep + fixed-control ladders).
    assert results["hchain"][0] / results["hchain"][2] > 1.1
    # Retains the diagonal-aware win on qft.
    assert results["qft"][0] / results["qft"][2] > 10
