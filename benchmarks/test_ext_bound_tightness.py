"""Extension bench: how tight is Algorithm 1's involvement bound?

Algorithm 1 prunes amplitudes that are *structurally* zero (an uninvolved
qubit's bit set); it never checks values, so it streams every structurally
live amplitude even when the value happens to be zero.  This bench runs the
exact-support sparse engine next to the involvement tracker and reports the
mean ratio ``true support / involvement bound`` along each circuit - 1.0
means the bound is tight (everything streamed was genuinely non-zero),
small values mean value-level sparsity Q-GPU leaves on the table.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.circuits.library import FAMILIES, get_circuit
from repro.core.involvement import InvolvementTracker
from repro.sparse import simulate_sparse, SparseState

NUM_QUBITS = 12


def run_tightness() -> dict[str, float]:
    results = {}
    for family in FAMILIES:
        circuit = get_circuit(family, NUM_QUBITS)
        tracker = InvolvementTracker(NUM_QUBITS)
        state = SparseState(NUM_QUBITS)
        ratios = []
        for gate in circuit:
            tracker.involve(gate)
            state.apply(gate)
            ratios.append(state.support_size / tracker.live_amplitudes)
        results[family] = float(np.mean(ratios))
    return results


def test_ext_involvement_bound_tightness(benchmark) -> None:
    results = benchmark.pedantic(run_tightness, rounds=1, iterations=1)
    rows = sorted(results.items(), key=lambda kv: -kv[1])
    print()
    print(format_table(
        ["circuit", "mean support/bound"], rows,
        title=f"[extension] Algorithm 1 bound tightness at {NUM_QUBITS}q",
    ))
    # The bound is sound: true support never exceeds it.
    assert all(ratio <= 1.0 + 1e-9 for ratio in results.values())
    # For Hadamard-driven circuits the bound is essentially tight.
    for family in ("qaoa", "iqp", "gs"):
        assert results[family] > 0.95, family
    # qft exposes the bound's blind spot: controlled-phase gates involve
    # qubits without creating any support (a diagonal gate cannot turn a
    # zero amplitude non-zero), so Algorithm 1 over-counts massively -
    # the motivation for the diagonal-aware pruning extension.
    assert results["qft"] < 0.2
    # bv's oracle keeps the data register a basis state: value-level
    # sparsity involvement cannot see.
    assert results["bv"] < 0.8
