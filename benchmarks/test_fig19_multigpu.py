"""Bench: Fig. 19 - multi-GPU performance (4xP4 PCIe, 4xV100 NVLink)."""

from repro.experiments.fig19_multigpu import run


def test_fig19_multigpu(run_once) -> None:
    result = run_once(run)
    averages = result.data["averages"]
    table = result.data["normalized"]

    # Q-GPU beats the Aer multi-GPU baseline by ~3x on both servers
    # (paper: 2.97x and 2.98x); every circuit improves.
    for label, value in averages.items():
        assert value < 0.5, label
    for family, row in table.items():
        for label, ratio in row.items():
            assert ratio < 1.0, (family, label)
