"""Bench: Fig. 7 - hchain_10 amplitude distribution along the circuit."""

from repro.experiments.fig07_amplitude_distribution import run


def test_fig7_amplitude_distribution(run_once) -> None:
    result = run_once(run)
    snapshots = result.data["snapshots"]
    fractions = [s.nonzero_fraction for s in snapshots]
    assert fractions[0] < 0.01  # mostly zero at op 0
    assert fractions == sorted(fractions)  # fills in monotonically
    assert fractions[-1] > 0.2  # dense by op 90
