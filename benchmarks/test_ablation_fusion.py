"""Ablation: Aer-style gate fusion width (extension bench).

Fusion multiplies adjacent overlapping gates into one pass, cutting
full-state traversals; it is on by default in both the paper's baseline and
Q-GPU, so it cancels out of normalized figures.  This bench measures its
absolute effect per version.
"""

from repro.analysis.tables import format_table
from repro.circuits.library import get_circuit
from repro.core.executor import TimedExecutor
from repro.core.versions import OVERLAP, QGPU
from repro.hardware.machine import Machine
from repro.hardware.specs import PAPER_MACHINE

WIDTHS = (0, 2, 4)
NUM_QUBITS = 32


def run_ablation() -> dict[tuple[str, int], float]:
    executor = TimedExecutor(Machine(PAPER_MACHINE))
    results = {}
    for family in ("qft", "hchain"):
        circuit = get_circuit(family, NUM_QUBITS)
        for width in WIDTHS:
            timing = executor.execute(
                circuit, OVERLAP, fusion_max_qubits=width
            )
            results[(family, width)] = timing.total_seconds
    return results


def test_ablation_fusion(benchmark) -> None:
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [f"{family} fusion<={width or 'off'}", seconds]
        for (family, width), seconds in results.items()
    ]
    print()
    print(format_table(["configuration", "seconds"], rows,
                       title=f"[ablation] gate fusion, Overlap at {NUM_QUBITS}q"))
    for family in ("qft", "hchain"):
        off = results[(family, 0)]
        two = results[(family, 2)]
        four = results[(family, 4)]
        # Wider fusion never streams more passes.
        assert four <= two <= off * 1.001, family
        # hchain's dense single-qubit runs fuse well (>1.5x fewer passes).
        if family == "hchain":
            assert off / four > 1.5
