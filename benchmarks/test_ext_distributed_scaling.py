"""Extension bench: multi-node scaling projection.

Projects Q-GPU's streaming model onto clusters of the paper's V100 server,
asking (a) how far the qubit ceiling moves with node count, and (b) how
strong-scaling efficiency decays as shard exchanges grow.
"""

from repro.analysis.scaling import (
    ClusterSpec,
    estimate_distributed,
    max_cluster_qubits,
)
from repro.analysis.tables import format_table
from repro.circuits.library import get_circuit
from repro.hardware.specs import V100_MACHINE


def run_scaling() -> dict:
    capacity_rows = []
    for nodes in (1, 4, 16, 64, 256):
        cluster = ClusterSpec(V100_MACHINE, nodes)
        capacity_rows.append([nodes, max_cluster_qubits(cluster)])

    circuit = get_circuit("qft", 32)
    strong_rows = []
    base = None
    for nodes in (1, 2, 4, 8, 16):
        estimate = estimate_distributed(circuit, ClusterSpec(V100_MACHINE, nodes))
        if base is None:
            base = estimate.total_seconds
        efficiency = base / (nodes * estimate.total_seconds)
        strong_rows.append(
            [nodes, estimate.total_seconds, estimate.exchange_seconds,
             estimate.exchange_gates, efficiency]
        )
    return {"capacity": capacity_rows, "strong": strong_rows}


def test_ext_distributed_scaling(benchmark) -> None:
    data = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    print()
    print(format_table(["nodes", "max_qubits"], data["capacity"],
                       title="[extension] cluster capacity (V100 nodes)"))
    print()
    print(format_table(
        ["nodes", "total_s", "exchange_s", "exchange_gates", "efficiency"],
        data["strong"], title="[extension] strong scaling, qft_32",
    ))
    capacity = dict((row[0], row[1]) for row in data["capacity"])
    # Doubling nodes buys one qubit (state doubles per qubit).
    assert capacity[4] == capacity[1] + 2
    assert capacity[256] == capacity[1] + 8
    strong = {row[0]: row for row in data["strong"]}
    # More nodes is faster in absolute terms...
    totals = [strong[nodes][1] for nodes in (1, 2, 4, 8, 16)]
    assert all(a >= b for a, b in zip(totals, totals[1:]))
    # ...but efficiency decays as exchanges grow.
    assert strong[16][4] < strong[2][4]
    assert strong[16][3] > 0  # boundary gates exist at 16 nodes
