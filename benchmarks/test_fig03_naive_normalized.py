"""Bench: Fig. 3 - naive dynamic allocation never beats the baseline."""

from repro.experiments.fig03_naive_normalized import run


def test_fig3_naive_normalized(run_once) -> None:
    result = run_once(run)
    for family, by_size in result.data["normalized"].items():
        for size, ratio in by_size.items():
            assert ratio > 1.0, f"{family}_{size} improved under naive streaming"
