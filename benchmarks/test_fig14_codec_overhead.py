"""Bench: Fig. 14 - GFC compression/decompression overhead in Q-GPU."""

from repro.experiments.fig14_codec_overhead import run


def test_fig14_codec_overhead(run_once) -> None:
    result = run_once(run)
    average = result.data["average_pct"]
    overheads = result.data["overhead_pct"]
    # Codec cost is a minor share of execution (paper: 6.15% combined; our
    # faster reorder shrinks the denominator, so the share lands higher but
    # stays far below the transfer savings it buys).
    assert 0 < average < 35
    assert all(pct < 60 for pct in overheads.values())
