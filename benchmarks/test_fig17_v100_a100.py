"""Bench: Fig. 17 - Q-GPU on the V100 and A100 servers."""

import math

from repro.experiments.fig17_v100_a100 import run


def test_fig17_v100_a100(run_once) -> None:
    result = run_once(run)
    reductions = result.data["average_reduction"]
    table = result.data["normalized"]

    # Both servers gain; the A100's larger device memory helps the baseline
    # more, so its headroom is smaller (paper: 53.24% vs 27.05%).
    assert reductions["V100"] > reductions["A100"] > 0

    # The baseline wins some benchmarks on the A100 (qaoa at 32 qubits
    # streams incompressible-ish data against a 60%-resident baseline).
    a100_ratios = [row["A100"] for row in table.values() if not math.isnan(row["A100"])]
    assert any(ratio > 0.9 for ratio in a100_ratios)
    assert any(ratio < 0.1 for ratio in a100_ratios)
