"""Bench: Fig. 2 - baseline execution-time breakdown at 34 qubits."""

from repro.experiments.fig02_baseline_breakdown import run


def test_fig2_baseline_breakdown(run_once) -> None:
    result = run_once(run)
    mean = result.data["average"]
    # Paper: cpu 88.89%, exchange+sync 10.29%, gpu 0.82%.
    assert mean["cpu"] > 0.85
    assert 0.01 < mean["transfer"] < 0.15
    assert mean["gpu"] < 0.05
