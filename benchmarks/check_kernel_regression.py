"""CI gate: fail when the chunk-engine speedups regress past tolerance.

Compares the *dimensionless speedup ratios* in a fresh ``BENCH_kernels.json``
(produced by ``benchmarks/test_chunk_engine.py``) against the committed
baseline for the same mode in ``benchmarks/baselines/``.  Ratios - parallel
over legacy on identical work in the same process - are what stays
comparable across hosts; absolute Mamp/s depends on the machine and would
gate on hardware, not code.

A case regresses when its current speedup falls below ``(1 - tolerance)``
of the baseline speedup (default tolerance 20%).  Improvements never fail.

Usage::

    python benchmarks/check_kernel_regression.py [RESULTS] [--tolerance 0.2]

exits 0 when every case is within tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).parent / "baselines"

#: Ratio metrics gated per case (higher is better).  Only the speedups the
#: zero-copy/parallel/fusion recipe actually claims are gated: the
#: cross-chunk ``serial_speedup`` is 1.0 by design (the serial engine
#: keeps the bit-exact gather arithmetic for non-diagonal gates).
#: ``inside_h`` is gated since the tiled in-place kernel replaced the
#: per-chunk gather path; the ``fused_*`` cases gate the fusion pass
#: itself (one slab sweep vs gate-by-gate legacy sweeps).
GATED_METRICS: dict[str, tuple[str, ...]] = {
    "cross_chunk_h": ("parallel_speedup",),
    "diagonal_rz": ("parallel_speedup", "serial_speedup"),
    "inside_h": ("parallel_speedup",),
    "fused_diag": ("parallel_speedup", "serial_speedup"),
    "fused_dense": ("parallel_speedup", "serial_speedup"),
}


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except OSError as error:
        sys.exit(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        sys.exit(f"{path}: not valid JSON ({error})")


def run_gate(
    results_path: Path,
    baseline_path: Path | None = None,
    tolerance: float = 0.2,
) -> dict:
    """Evaluate the gate; returns a structured verdict (no printing).

    The verdict dict is what ``--json`` writes and what
    ``check_bench_regression.py`` aggregates: ``gate``/``mode``/
    ``passed`` plus one entry per gated metric under ``checks`` (case,
    metric, baseline, current, floor, ratio, passed).
    """
    current = load(Path(results_path))
    mode = current.get("mode", "full")
    baseline_path = (
        Path(baseline_path)
        if baseline_path
        else BASELINE_DIR / f"BENCH_kernels_baseline_{mode}.json"
    )
    baseline = load(baseline_path)
    if baseline.get("mode", "full") != mode:
        sys.exit(
            f"mode mismatch: results are {mode!r} but baseline "
            f"{baseline_path} is {baseline.get('mode')!r}"
        )
    checks: list[dict] = []
    failures: list[str] = []
    for case, metrics in sorted(GATED_METRICS.items()):
        base_row = baseline["results"].get(case)
        row = current["results"].get(case)
        if base_row is None:
            failures.append(f"case {case!r} missing from baseline")
            continue
        if row is None:
            failures.append(f"case {case!r} missing from current results")
            continue
        for metric in metrics:
            base_value = base_row[metric]
            value = row[metric]
            floor = base_value * (1.0 - tolerance)
            passed = value >= floor
            checks.append(
                {
                    "case": case,
                    "metric": metric,
                    "baseline": base_value,
                    "current": value,
                    "floor": floor,
                    "ratio": value / base_value if base_value else None,
                    "passed": passed,
                }
            )
            if not passed:
                failures.append(
                    f"{case}.{metric}: {value:.2f} < floor {floor:.2f} "
                    f"(baseline {base_value:.2f})"
                )
    return {
        "gate": "kernels",
        "mode": mode,
        "tolerance": tolerance,
        "results": str(results_path),
        "baseline": str(baseline_path),
        "checks": checks,
        "failures": failures,
        "passed": not failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results",
        nargs="?",
        default="BENCH_kernels.json",
        help="fresh benchmark output (default: ./BENCH_kernels.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: benchmarks/baselines/ for the run's mode)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop below the baseline speedup (default 0.2)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the structured verdict (gate, checks, pass/fail) here",
    )
    args = parser.parse_args(argv)

    verdict = run_gate(args.results, args.baseline, args.tolerance)
    print(f"kernel regression gate ({verdict['mode']} mode, "
          f"tolerance {args.tolerance:.0%})")
    print(f"{'case':<18} {'metric':<18} {'baseline':>9} {'current':>9} {'floor':>7}")
    for check in verdict["checks"]:
        flag = "" if check["passed"] else "  REGRESSION"
        print(
            f"{check['case']:<18} {check['metric']:<18} "
            f"{check['baseline']:>9.2f} {check['current']:>9.2f} "
            f"{check['floor']:>7.2f}{flag}"
        )
    if args.json:
        Path(args.json).write_text(
            json.dumps(verdict, sort_keys=True, indent=1) + "\n"
        )
    if verdict["failures"]:
        print(f"\n{len(verdict['failures'])} regression(s):", file=sys.stderr)
        for failure in verdict["failures"]:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
