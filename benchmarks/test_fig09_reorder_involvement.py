"""Bench: Fig. 9 - involvement delay under greedy/forward-looking orders."""

from repro.experiments.fig09_reorder_involvement import run


def test_fig9_reorder_involvement(run_once) -> None:
    result = run_once(run)
    summaries = result.data["summaries"]
    for family in ("gs", "qft"):
        original = summaries[(family, "original")][1]
        forward = summaries[(family, "forward_looking")][1]
        assert forward < 0.5 * original, family
    # qaoa resists reordering (dense gate dependencies).
    assert (
        summaries[("qaoa", "forward_looking")][1]
        > 0.6 * summaries[("qaoa", "original")][1]
    )
    # Forward-looking is never worse than greedy on mean live fraction.
    for family in ("gs", "qft", "qaoa"):
        assert (
            summaries[(family, "forward_looking")][1]
            <= summaries[(family, "greedy")][1] + 0.05
        )
