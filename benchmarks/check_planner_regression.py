"""CI gate: fail when the adaptive planner's selection quality regresses.

Reads a fresh ``BENCH_planner.json`` (produced by
``benchmarks/test_planner.py``) and enforces the recipe's two headline
claims:

* selection accuracy - the planner picks the measured-fastest feasible
  backend (within the benchmark's noise tolerance) on at least
  ``--min-accuracy`` of the circuits (default 0.8);
* geomean speedup - planner-routed runs beat always-dense complex128 by
  more than ``--min-speedup`` geomean (default 1.0).

Unlike the kernel gate this needs no committed baseline: both metrics are
dimensionless and host-portable, so the thresholds are absolute.

Usage::

    python benchmarks/check_planner_regression.py [RESULTS] \
        [--min-accuracy 0.8] [--min-speedup 1.0]

exits 0 when both thresholds hold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except OSError as error:
        sys.exit(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        sys.exit(f"{path}: not valid JSON ({error})")


def run_gate(
    results_path: Path,
    min_accuracy: float = 0.8,
    min_speedup: float = 1.0,
) -> dict:
    """Evaluate the gate; returns a structured verdict (no printing).

    Same shape as the kernel gate's verdict so
    ``check_bench_regression.py`` can aggregate both: ``gate``/``mode``/
    ``passed`` plus one entry per threshold under ``checks``.
    """
    current = load(Path(results_path))
    accuracy = current.get("accuracy")
    geomean = current.get("geomean_speedup_vs_dense")
    if accuracy is None or geomean is None:
        sys.exit(f"{results_path}: missing accuracy/geomean fields")
    checks = [
        {
            "case": "selection",
            "metric": "accuracy",
            "baseline": min_accuracy,
            "current": accuracy,
            "floor": min_accuracy,
            "ratio": accuracy / min_accuracy if min_accuracy else None,
            "passed": accuracy >= min_accuracy,
        },
        {
            "case": "selection",
            "metric": "geomean_speedup_vs_dense",
            "baseline": min_speedup,
            "current": geomean,
            "floor": min_speedup,
            "ratio": geomean / min_speedup if min_speedup else None,
            "passed": geomean > min_speedup,
        },
    ]
    failures = []
    if accuracy < min_accuracy:
        failures.append(
            f"selection accuracy {accuracy:.0%} below {min_accuracy:.0%}"
        )
    if geomean <= min_speedup:
        failures.append(
            f"geomean speedup {geomean:.2f}x not above {min_speedup:.2f}x"
        )
    wrong = [
        case["circuit"]
        for case in current.get("cases", [])
        if not case.get("correct")
    ]
    return {
        "gate": "planner",
        "mode": current.get("mode", "full"),
        "results": str(results_path),
        "checks": checks,
        "mispicks": wrong,
        "failures": failures,
        "passed": not failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results",
        nargs="?",
        default="BENCH_planner.json",
        help="fresh benchmark output (default: ./BENCH_planner.json)",
    )
    parser.add_argument(
        "--min-accuracy",
        type=float,
        default=0.8,
        help="minimum selection accuracy (default 0.8)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="geomean speedup vs always-dense must exceed this (default 1.0)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the structured verdict (gate, checks, pass/fail) here",
    )
    args = parser.parse_args(argv)

    verdict = run_gate(args.results, args.min_accuracy, args.min_speedup)
    accuracy, geomean = (c["current"] for c in verdict["checks"])
    wrong = verdict["mispicks"]
    print(f"planner gate ({verdict['mode']} mode): "
          f"accuracy {accuracy:.0%}, geomean {geomean:.2f}x vs dense"
          + (f", mispicks: {', '.join(wrong)}" if wrong else ""))
    if args.json:
        Path(args.json).write_text(
            json.dumps(verdict, sort_keys=True, indent=1) + "\n"
        )
    if verdict["failures"]:
        for failure in verdict["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: planner selection quality within thresholds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
