"""Bench: Fig. 6 - execution timelines of the stacked optimizations."""

from repro.experiments.fig06_timeline import run


def test_fig6_timeline(run_once) -> None:
    result = run_once(run)
    times = result.data["times"]
    # The Fig. 6 narrative: naive is worst, then each optimization removes
    # additional cycles.
    assert times["Naive"] > times["Baseline"]
    assert (
        times["Baseline"] > times["Overlap"] > times["Pruning"]
        > times["Reorder"] > times["Q-GPU"]
    )
    # The Gantt charts demonstrate the overlap: in the naive single-stream
    # schedule the H2D engine idles while D2H runs; in the double-buffered
    # one both directions are busy concurrently most of the time.
    assert "#" in result.data["gantt_overlap"]
