"""Benchmark harness configuration.

Each benchmark runs one paper table/figure end-to-end (workload generation,
parameter sweep, all execution versions, comparators) and prints the
reproduced table next to the paper's reported numbers.  Experiments are
deterministic, so a single round per benchmark suffices.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult


@pytest.fixture
def run_once(benchmark):
    """Run an experiment once under pytest-benchmark and print its table."""

    def runner(fn, *args, **kwargs) -> ExperimentResult:
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        print()
        print(result.render())
        return result

    return runner
