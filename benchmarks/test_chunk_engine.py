"""Measured chunk-engine benchmark: serial baseline vs the parallel engine.

Times the actual numpy implementations of a single-gate chunked apply -
the unit of work every functional simulation repeats per gate - and
compares three paths on the *same* state size in the *same* process:

* ``legacy``   - the gather/compute/scatter arithmetic the serial engine
  uses for non-diagonal cross-chunk gates (the pre-zero-copy baseline,
  replicated here verbatim so the comparison survives refactors),
* ``serial``   - ``ChunkedStateVector.apply`` with ``workers=1``,
* ``parallel`` - :class:`~repro.statevector.parallel.ParallelChunkEngine`
  with the benchmark worker count (zero-copy / fused kernels).

Results are printed and written to ``BENCH_kernels.json`` next to the
working directory; ``benchmarks/check_kernel_regression.py`` compares the
dimensionless speedup ratios against the committed baseline in
``benchmarks/baselines/`` (ratios, not absolute throughput, so the gate
is portable across hosts).

Set ``QGPU_BENCH_SMOKE=1`` for a fast CI-sized run (2^20 amplitudes, one
repeat); the full run uses 2^22 amplitudes and asserts the headline
result: the parallel engine at least doubles single-gate chunked-apply
throughput over the serial baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.circuits.gates import Gate
from repro.statevector.apply import apply_gate
from repro.statevector.chunks import ChunkedStateVector, chunk_pair_groups
from repro.statevector.parallel import ParallelChunkEngine

SMOKE = os.environ.get("QGPU_BENCH_SMOKE", "") not in ("", "0")

NUM_QUBITS = 20 if SMOKE else 22
CHUNK_BITS = 14 if SMOKE else 16
WORKERS = 4
# Best-of-N timing: N high enough that every path's minimum converges even
# on a noisy shared host (the gate compares ratios of these minima).
REPEATS = 3 if SMOKE else 11

RESULTS_PATH = Path("BENCH_kernels.json")

_results: dict[str, dict[str, float]] = {}

_CASES = ("cross_chunk_h", "diagonal_rz", "inside_h")


def _random_state(seed: int = 0) -> ChunkedStateVector:
    generator = np.random.default_rng(seed)
    amplitudes = generator.normal(size=1 << NUM_QUBITS) + 1j * generator.normal(
        size=1 << NUM_QUBITS
    )
    amplitudes = (amplitudes / np.linalg.norm(amplitudes)).astype(np.complex128)
    return ChunkedStateVector.from_dense(amplitudes, CHUNK_BITS)


def _legacy_apply(state: ChunkedStateVector, gate: Gate) -> None:
    """The pre-zero-copy serial arithmetic: gather, dense kernel, scatter."""
    groups = chunk_pair_groups(state.num_qubits, state.chunk_bits, gate.qubits)
    outside = [q for q in gate.qubits if q >= state.chunk_bits]
    if not outside:
        for (index,) in groups:
            apply_gate(state.chunks[index], gate)
        return
    mapping = {q: q for q in gate.qubits if q < state.chunk_bits}
    for rank, q in enumerate(sorted(outside)):
        mapping[q] = state.chunk_bits + rank
    remapped = gate.remapped(mapping)
    for members in groups:
        gathered = np.concatenate([state.chunks[m] for m in members])
        apply_gate(gathered, remapped)
        for position, member in enumerate(members):
            start = position << state.chunk_bits
            state.chunks[member][...] = gathered[start : start + state.chunk_size]


def _time_apply(apply_once, state: ChunkedStateVector) -> float:
    """Best-of-N seconds for one gate application (state mutates in place;
    a unitary applied repeatedly keeps the timing workload identical)."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        apply_once(state)
        best = min(best, time.perf_counter() - start)
    return best


def _record(case: str, legacy_s: float, serial_s: float, parallel_s: float) -> None:
    amps = float(1 << NUM_QUBITS)
    _results[case] = {
        "legacy_seconds": legacy_s,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "legacy_mamps_per_s": amps / legacy_s / 1e6,
        "serial_mamps_per_s": amps / serial_s / 1e6,
        "parallel_mamps_per_s": amps / parallel_s / 1e6,
        "parallel_speedup": legacy_s / parallel_s,
        "serial_speedup": legacy_s / serial_s,
    }
    if all(name in _results for name in _CASES):
        _emit()


def _emit() -> None:
    payload = {
        "mode": "smoke" if SMOKE else "full",
        "num_qubits": NUM_QUBITS,
        "chunk_bits": CHUNK_BITS,
        "workers": WORKERS,
        "amplitudes": 1 << NUM_QUBITS,
        "repeats": REPEATS,
        # The headline number: zero-copy diagonal apply vs the gather
        # baseline, the least host-sensitive of the speedups (no BLAS
        # shape effects, no thread scaling required).
        "headline_speedup": _results["diagonal_rz"]["parallel_speedup"],
        "results": _results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n  chunk-engine bench ({payload['mode']}, 2^{NUM_QUBITS} amplitudes)")
    for case in _CASES:
        row = _results[case]
        print(
            f"  {case:<16} legacy {row['legacy_mamps_per_s']:7.1f} "
            f"parallel {row['parallel_mamps_per_s']:7.1f} Mamp/s "
            f"(x{row['parallel_speedup']:.2f})"
        )
    print(f"  wrote {RESULTS_PATH}")


def _measure(gate: Gate) -> tuple[float, float, float]:
    legacy_s = _time_apply(lambda s: _legacy_apply(s, gate), _random_state())
    serial_s = _time_apply(lambda s: s.apply(gate), _random_state())
    with ParallelChunkEngine(WORKERS) as engine:
        state = _random_state()
        engine.apply_groups(  # one warm-up pass to start threads / allocate scratch
            state,
            gate,
            chunk_pair_groups(NUM_QUBITS, CHUNK_BITS, gate.qubits),
        )
        parallel_s = _time_apply(lambda s: s.apply(gate, engine), state)
    return legacy_s, serial_s, parallel_s


def test_chunk_engine_cross_chunk_single_qubit() -> None:
    """A non-diagonal gate pairing chunks (qubit above chunk_bits).

    The fused kernel eliminates the gather/scatter copies, so the floor
    here is what a single memory-bandwidth-bound core must clear; thread
    scaling on multicore hosts pushes the observed speedup well past 2x
    (each of the 4 workers streams its own contiguous slab).
    """
    gate = Gate("h", (NUM_QUBITS - 1,))
    legacy_s, serial_s, parallel_s = _measure(gate)
    _record("cross_chunk_h", legacy_s, serial_s, parallel_s)
    speedup = legacy_s / parallel_s
    floor = 1.1 if SMOKE else 1.25
    assert speedup >= floor, (
        f"parallel cross-chunk apply is only x{speedup:.2f} over the serial "
        f"baseline (floor x{floor})"
    )


def test_chunk_engine_diagonal_cross_chunk() -> None:
    """The headline case: zero-copy diagonal apply vs gather/scatter.

    Diagonal gates never mix amplitudes, so the zero-copy path multiplies
    each chunk in place - one read and one write per amplitude against
    the baseline's gather, dense apply, and scatter.  The speedup is the
    least host-sensitive of the three (no BLAS shape effects, no thread
    scaling needed), so this is where the recipe's >= 2x claim is gated.
    """
    gate = Gate("rz", (NUM_QUBITS - 1,), (0.3,))
    legacy_s, serial_s, parallel_s = _measure(gate)
    _record("diagonal_rz", legacy_s, serial_s, parallel_s)
    speedup = legacy_s / parallel_s
    floor = 1.5 if SMOKE else 2.0
    assert speedup >= floor, (
        f"zero-copy diagonal apply is only x{speedup:.2f} over the serial "
        f"baseline (floor x{floor})"
    )


def test_chunk_engine_inside_gate() -> None:
    """A gate fully inside the chunk: per-chunk dense kernel both ways."""
    gate = Gate("h", (CHUNK_BITS - 2,))
    legacy_s, serial_s, parallel_s = _measure(gate)
    _record("inside_h", legacy_s, serial_s, parallel_s)


def test_chunk_engine_paths_agree() -> None:
    """The three timed paths produce the same state (sanity, not speed)."""
    for name, qubit, params in (
        ("h", NUM_QUBITS - 1, ()),
        ("rz", NUM_QUBITS - 1, (0.3,)),
        ("h", CHUNK_BITS - 2, ()),
    ):
        gate = Gate(name, (qubit,), params)
        legacy = _random_state(3)
        _legacy_apply(legacy, gate)
        serial = _random_state(3).apply(gate)
        with ParallelChunkEngine(WORKERS) as engine:
            parallel = _random_state(3).apply(gate, engine)
        np.testing.assert_allclose(
            serial.to_dense(), legacy.to_dense(), atol=1e-12
        )
        np.testing.assert_allclose(
            parallel.to_dense(), legacy.to_dense(), atol=1e-12
        )


@pytest.fixture(scope="module", autouse=True)
def _warm_blas() -> None:
    # First BLAS call in a process pays one-off thread-pool setup; keep it
    # out of the timed regions.
    a = np.random.default_rng(1).normal(size=(2, 1 << 12)).astype(np.complex128)
    np.matmul(np.eye(2, dtype=np.complex128), a)
