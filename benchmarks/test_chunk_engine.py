"""Measured chunk-engine benchmark: serial baseline vs the parallel engine.

Times the actual numpy implementations of a single-gate chunked apply -
the unit of work every functional simulation repeats per gate - and
compares three paths on the *same* state size in the *same* process:

* ``legacy``   - the gather/compute/scatter arithmetic the serial engine
  uses for non-diagonal cross-chunk gates (the pre-zero-copy baseline,
  replicated here verbatim so the comparison survives refactors),
* ``serial``   - ``ChunkedStateVector.apply`` with ``workers=1``,
* ``parallel`` - :class:`~repro.statevector.parallel.ParallelChunkEngine`
  with the benchmark worker count (zero-copy / fused kernels).

Results are printed and written to ``BENCH_kernels.json`` next to the
working directory; ``benchmarks/check_kernel_regression.py`` compares the
dimensionless speedup ratios against the committed baseline in
``benchmarks/baselines/`` (ratios, not absolute throughput, so the gate
is portable across hosts).

The ``fused_*`` cases time whole gate *runs* through
:func:`~repro.statevector.fusion.fuse_slabs`: the legacy side applies the
gates one sweep each, the fused sides apply the slab the fusion pass
produces in one tiled pass.

Set ``QGPU_BENCH_SMOKE=1`` for a fast CI-sized run (2^20 amplitudes, one
repeat); the full run uses 2^22 amplitudes and asserts the headline
results: the parallel engine at least doubles single-gate chunked-apply
throughput over the serial baseline, the tiled in-place kernel beats the
legacy inside-chunk path by >= 1.5x, and the inline-serial floor keeps
parallel diagonal apply no slower than serial.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.circuits.gates import Gate
from repro.statevector.apply import apply_gate
from repro.statevector.chunks import ChunkedStateVector, chunk_pair_groups
from repro.statevector.fusion import fuse_slabs
from repro.statevector.parallel import ParallelChunkEngine

SMOKE = os.environ.get("QGPU_BENCH_SMOKE", "") not in ("", "0")

NUM_QUBITS = 20 if SMOKE else 22
CHUNK_BITS = 14 if SMOKE else 16
WORKERS = 4
# Best-of-N timing: N high enough that every path's minimum converges even
# on a noisy shared host (the gate compares ratios of these minima).
REPEATS = 3 if SMOKE else 11

RESULTS_PATH = Path("BENCH_kernels.json")

_results: dict[str, dict[str, float]] = {}

_CASES = ("cross_chunk_h", "diagonal_rz", "inside_h", "fused_diag", "fused_dense")


def _random_state(seed: int = 0) -> ChunkedStateVector:
    generator = np.random.default_rng(seed)
    amplitudes = generator.normal(size=1 << NUM_QUBITS) + 1j * generator.normal(
        size=1 << NUM_QUBITS
    )
    amplitudes = (amplitudes / np.linalg.norm(amplitudes)).astype(np.complex128)
    return ChunkedStateVector.from_dense(amplitudes, CHUNK_BITS)


def _legacy_apply(state: ChunkedStateVector, gate: Gate) -> None:
    """The pre-zero-copy serial arithmetic: gather, dense kernel, scatter."""
    groups = chunk_pair_groups(state.num_qubits, state.chunk_bits, gate.qubits)
    outside = [q for q in gate.qubits if q >= state.chunk_bits]
    if not outside:
        for (index,) in groups:
            apply_gate(state.chunks[index], gate)
        return
    mapping = {q: q for q in gate.qubits if q < state.chunk_bits}
    for rank, q in enumerate(sorted(outside)):
        mapping[q] = state.chunk_bits + rank
    remapped = gate.remapped(mapping)
    for members in groups:
        gathered = np.concatenate([state.chunks[m] for m in members])
        apply_gate(gathered, remapped)
        for position, member in enumerate(members):
            start = position << state.chunk_bits
            state.chunks[member][...] = gathered[start : start + state.chunk_size]


def _time_paths(timed: list) -> list[float]:
    """Best-of seconds per ``(apply_once, state)`` pair, grouped by path.

    Every path runs once untimed first, so allocator state (glibc's
    dynamic mmap threshold), engine scratch, and page placement are warm
    before any clock starts - without this, whichever path happens to run
    first pays the whole process's warm-up and the ratios are garbage.

    Each path is then timed as ``REPEATS`` *back-to-back* repeats.  That
    is the steady state a real circuit sees - consecutive sweeps over the
    same buffers - whereas round-robin interleaving evicts the fast
    path's cache/TLB warmth on every repeat and systematically understates
    exactly the kernels this bench exists to measure.  The path loop runs
    twice, the second time in reverse order, so slow monotonic drift
    (frequency scaling, noisy neighbours) cannot bias any one path's
    minimum.
    """
    for apply_once, state in timed:
        apply_once(state)
    best = [float("inf")] * len(timed)
    indices = list(range(len(timed)))
    for order in (indices, indices[::-1]):
        for index in order:
            apply_once, state = timed[index]
            for _ in range(REPEATS):
                start = time.perf_counter()
                apply_once(state)
                best[index] = min(best[index], time.perf_counter() - start)
    return best


def _record(case: str, legacy_s: float, serial_s: float, parallel_s: float) -> None:
    amps = float(1 << NUM_QUBITS)
    _results[case] = {
        "legacy_seconds": legacy_s,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "legacy_mamps_per_s": amps / legacy_s / 1e6,
        "serial_mamps_per_s": amps / serial_s / 1e6,
        "parallel_mamps_per_s": amps / parallel_s / 1e6,
        "parallel_speedup": legacy_s / parallel_s,
        "serial_speedup": legacy_s / serial_s,
    }
    if all(name in _results for name in _CASES):
        _emit()


def _emit() -> None:
    payload = {
        "mode": "smoke" if SMOKE else "full",
        "num_qubits": NUM_QUBITS,
        "chunk_bits": CHUNK_BITS,
        "workers": WORKERS,
        "amplitudes": 1 << NUM_QUBITS,
        "repeats": REPEATS,
        # The headline number: zero-copy diagonal apply vs the gather
        # baseline, the least host-sensitive of the speedups (no BLAS
        # shape effects, no thread scaling required).
        "headline_speedup": _results["diagonal_rz"]["parallel_speedup"],
        "results": _results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n  chunk-engine bench ({payload['mode']}, 2^{NUM_QUBITS} amplitudes)")
    for case in _CASES:
        row = _results[case]
        print(
            f"  {case:<16} legacy {row['legacy_mamps_per_s']:7.1f} "
            f"parallel {row['parallel_mamps_per_s']:7.1f} Mamp/s "
            f"(x{row['parallel_speedup']:.2f})"
        )
    print(f"  wrote {RESULTS_PATH}")


def _measure(gate: Gate) -> tuple[float, float, float]:
    with ParallelChunkEngine(WORKERS) as engine:
        state = _random_state()
        engine.apply_groups(  # one warm-up pass to start threads / allocate scratch
            state,
            gate,
            chunk_pair_groups(NUM_QUBITS, CHUNK_BITS, gate.qubits),
        )
        legacy_s, serial_s, parallel_s = _time_paths(
            [
                (lambda s: _legacy_apply(s, gate), _random_state()),
                (lambda s: s.apply(gate), _random_state()),
                (lambda s: s.apply(gate, engine), state),
            ]
        )
    return legacy_s, serial_s, parallel_s


def _measure_run(gates: list[Gate]) -> tuple[float, float, float]:
    """Like :func:`_measure` for a gate *run* routed through the fusion pass.

    Legacy applies every gate one gather sweep at a time; serial and
    parallel apply the ops :func:`fuse_slabs` produces (one tiled pass per
    slab).  All gates are unitary, so repeating the whole run keeps the
    timing workload identical.
    """
    ops = fuse_slabs(gates, chunk_bits=CHUNK_BITS)

    def legacy(state: ChunkedStateVector) -> None:
        for gate in gates:
            _legacy_apply(state, gate)

    def fused(state: ChunkedStateVector, engine=None) -> None:
        for op in ops:
            state.apply(op, engine)

    with ParallelChunkEngine(WORKERS) as engine:
        state = _random_state()
        fused(state, engine)  # warm-up: threads, scratch, memoized slab data
        legacy_s, serial_s, parallel_s = _time_paths(
            [
                (legacy, _random_state()),
                (fused, _random_state()),
                (lambda s: fused(s, engine), state),
            ]
        )
    return legacy_s, serial_s, parallel_s


def test_chunk_engine_cross_chunk_single_qubit() -> None:
    """A non-diagonal gate pairing chunks (qubit above chunk_bits).

    The fused kernel eliminates the gather/scatter copies, so the floor
    here is what a single memory-bandwidth-bound core must clear; thread
    scaling on multicore hosts pushes the observed speedup well past 2x
    (each of the 4 workers streams its own contiguous slab).
    """
    gate = Gate("h", (NUM_QUBITS - 1,))
    legacy_s, serial_s, parallel_s = _measure(gate)
    _record("cross_chunk_h", legacy_s, serial_s, parallel_s)
    speedup = legacy_s / parallel_s
    floor = 1.1 if SMOKE else 1.25
    assert speedup >= floor, (
        f"parallel cross-chunk apply is only x{speedup:.2f} over the serial "
        f"baseline (floor x{floor})"
    )


def test_chunk_engine_diagonal_cross_chunk() -> None:
    """The headline case: zero-copy diagonal apply vs gather/scatter.

    Diagonal gates never mix amplitudes, so the zero-copy path multiplies
    each chunk in place - one read and one write per amplitude against
    the baseline's gather, dense apply, and scatter.  The speedup is the
    least host-sensitive of the three (no BLAS shape effects, no thread
    scaling needed), so this is where the recipe's >= 2x claim is gated.

    One diagonal sweep at this size sits below the engine's inline-serial
    work floor, so the "parallel" path runs the identical serial code -
    the second assert pins that delegation (parallel must not pay pool
    overhead the work cannot amortise).
    """
    gate = Gate("rz", (NUM_QUBITS - 1,), (0.3,))
    legacy_s, serial_s, parallel_s = _measure(gate)
    _record("diagonal_rz", legacy_s, serial_s, parallel_s)
    speedup = legacy_s / parallel_s
    floor = 1.5 if SMOKE else 2.0
    assert speedup >= floor, (
        f"zero-copy diagonal apply is only x{speedup:.2f} over the serial "
        f"baseline (floor x{floor})"
    )
    if not SMOKE:
        # Below the inline-serial work floor the parallel engine delegates
        # to the identical serial kernels, so this compares the same code
        # path twice: 10% covers run-to-run noise while still catching the
        # ~2x regression of an actual fan-out on a small sweep.
        assert parallel_s <= serial_s / 0.90, (
            f"parallel diagonal apply ({parallel_s:.4f}s) is slower than "
            f"serial ({serial_s:.4f}s) beyond timing noise: the inline-"
            "serial work floor is not delegating small sweeps"
        )


def test_chunk_engine_inside_gate() -> None:
    """A gate fully inside the chunk: tiled in-place kernel vs per-chunk
    gather-free dense apply (the `inside_h` gap the fusion issue closes)."""
    gate = Gate("h", (CHUNK_BITS - 2,))
    legacy_s, serial_s, parallel_s = _measure(gate)
    _record("inside_h", legacy_s, serial_s, parallel_s)
    if not SMOKE:
        speedup = legacy_s / parallel_s
        assert speedup >= 1.5, (
            f"tiled in-place inside-chunk apply is only x{speedup:.2f} over "
            "the legacy per-chunk path (floor x1.5)"
        )


def test_chunk_engine_fused_diagonal_run() -> None:
    """Four consecutive diagonal gates fused into one multiplier sweep.

    Two qubits outside the chunk and two inside - the slab's combined
    diagonal replaces four full-state sweeps with one, on top of the
    zero-copy saving each sweep already had.
    """
    gates = [
        Gate("rz", (NUM_QUBITS - 1,), (0.3,)),
        Gate("rz", (NUM_QUBITS - 2,), (0.7,)),
        Gate("rz", (0,), (1.1,)),
        Gate("rz", (1,), (1.9,)),
    ]
    ops = fuse_slabs(gates, chunk_bits=CHUNK_BITS)
    assert len(ops) == 1 and ops[0].is_diagonal
    legacy_s, serial_s, parallel_s = _measure_run(gates)
    _record("fused_diag", legacy_s, serial_s, parallel_s)
    speedup = legacy_s / parallel_s
    floor = 2.0 if SMOKE else 3.0
    assert speedup >= floor, (
        f"fused diagonal run is only x{speedup:.2f} over gate-by-gate "
        f"legacy (floor x{floor})"
    )


def test_chunk_engine_fused_dense_run() -> None:
    """An h-rz-h chain on one inside qubit fused into a single dense pass.

    The slab contracts three sweeps into one 2x2 applied by the tiled
    in-place kernel - the inside-chunk traffic saving the issue targets.
    """
    gates = [
        Gate("h", (CHUNK_BITS - 2,)),
        Gate("rz", (CHUNK_BITS - 2,), (0.5,)),
        Gate("h", (CHUNK_BITS - 2,)),
    ]
    ops = fuse_slabs(gates, chunk_bits=CHUNK_BITS)
    assert len(ops) == 1 and ops[0].kind == "dense"
    legacy_s, serial_s, parallel_s = _measure_run(gates)
    _record("fused_dense", legacy_s, serial_s, parallel_s)
    speedup = legacy_s / parallel_s
    floor = 1.5 if SMOKE else 2.0
    assert speedup >= floor, (
        f"fused dense run is only x{speedup:.2f} over gate-by-gate legacy "
        f"(floor x{floor})"
    )


def test_chunk_engine_paths_agree() -> None:
    """The three timed paths produce the same state (sanity, not speed)."""
    for name, qubit, params in (
        ("h", NUM_QUBITS - 1, ()),
        ("rz", NUM_QUBITS - 1, (0.3,)),
        ("h", CHUNK_BITS - 2, ()),
    ):
        gate = Gate(name, (qubit,), params)
        legacy = _random_state(3)
        _legacy_apply(legacy, gate)
        serial = _random_state(3).apply(gate)
        with ParallelChunkEngine(WORKERS) as engine:
            parallel = _random_state(3).apply(gate, engine)
        np.testing.assert_allclose(
            serial.to_dense(), legacy.to_dense(), atol=1e-12
        )
        np.testing.assert_allclose(
            parallel.to_dense(), legacy.to_dense(), atol=1e-12
        )


def test_chunk_engine_fused_paths_agree() -> None:
    """Fused slab application matches gate-by-gate legacy (sanity)."""
    gates = [
        Gate("rz", (NUM_QUBITS - 1,), (0.3,)),
        Gate("rz", (0,), (1.1,)),
        Gate("h", (CHUNK_BITS - 2,)),
        Gate("rz", (CHUNK_BITS - 2,), (0.5,)),
        Gate("h", (CHUNK_BITS - 2,)),
    ]
    ops = fuse_slabs(gates, chunk_bits=CHUNK_BITS)
    assert len(ops) < len(gates)
    legacy = _random_state(3)
    for gate in gates:
        _legacy_apply(legacy, gate)
    serial = _random_state(3)
    for op in ops:
        serial.apply(op)
    with ParallelChunkEngine(WORKERS) as engine:
        parallel = _random_state(3)
        for op in ops:
            parallel.apply(op, engine)
    np.testing.assert_allclose(serial.to_dense(), legacy.to_dense(), atol=1e-12)
    np.testing.assert_allclose(parallel.to_dense(), legacy.to_dense(), atol=1e-12)


@pytest.fixture(scope="module", autouse=True)
def _warm_blas() -> None:
    # First BLAS call in a process pays one-off thread-pool setup; keep it
    # out of the timed regions.
    a = np.random.default_rng(1).normal(size=(2, 1 << 12)).astype(np.complex128)
    np.matmul(np.eye(2, dtype=np.complex128), a)
