"""Ablation: compression-ratio sensitivity (extension bench).

Sweeps the GFC ratio handed to the executor from 1.0 (incompressible) down
to 0.1, showing where compression stops paying: once the codec occupies the
GPU longer than the link saves, better ratios stop helping.
"""

from repro.analysis.tables import format_table
from repro.circuits.library import get_circuit
from repro.core.executor import TimedExecutor
from repro.core.versions import QGPU, REORDER
from repro.hardware.machine import Machine
from repro.hardware.specs import PAPER_MACHINE

RATIOS = (1.0, 0.8, 0.6, 0.4, 0.2, 0.1)
NUM_QUBITS = 32


def run_ablation() -> dict[float, float]:
    executor = TimedExecutor(Machine(PAPER_MACHINE))
    circuit = get_circuit("qaoa", NUM_QUBITS)
    results = {}
    for ratio in RATIOS:
        results[ratio] = executor.execute(
            circuit, QGPU, compression_ratio=ratio
        ).total_seconds
    results["no-compression"] = executor.execute(circuit, REORDER).total_seconds
    return results


def test_ablation_compression_ratio(benchmark) -> None:
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["ratio", "seconds"], [[str(k), v] for k, v in results.items()],
        title=f"[ablation] compression ratio, qaoa_{NUM_QUBITS}",
    ))
    # Better ratios are monotonically faster...
    ordered = [results[r] for r in RATIOS]
    assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:]))
    # ...but with diminishing returns: 0.2 -> 0.1 saves proportionally less
    # than 1.0 -> 0.8 relative to the bytes removed (codec+kernel floor).
    top_gain = (results[1.0] - results[0.8]) / 0.2
    tail_gain = (results[0.2] - results[0.1]) / 0.1
    assert tail_gain < top_gain
    # Ratio 1.0 costs codec time for nothing: slower than no compression.
    assert results[1.0] >= results["no-compression"]
