"""Extension bench: diagonal-aware pruning (beyond the paper).

A diagonal gate multiplies amplitudes by phases; it can never turn a zero
amplitude non-zero.  Algorithm 1 nevertheless marks its qubits involved,
inflating the live set permanently.  Tracking involvement only for
non-diagonal gates is strictly tighter and still sound (the functional
engine verifies bit-identical results in the test suite).

The effect is surgical: qft (controlled-phase ladders) collapses to nearly
free even in *original* gate order, while Hadamard-driven circuits are
untouched.
"""

from repro.analysis.tables import format_table
from repro.circuits.library import FAMILIES, get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import PRUNING, VersionConfig

DIAGONAL_AWARE = VersionConfig(
    "Pruning+diag", dynamic_allocation=True, overlap=True, pruning=True,
    diagonal_aware_pruning=True,
)
NUM_QUBITS = 32


def run_ablation() -> dict[str, tuple[float, float]]:
    results = {}
    for family in FAMILIES:
        circuit = get_circuit(family, NUM_QUBITS)
        paper = QGpuSimulator(version=PRUNING).estimate(circuit).total_seconds
        aware = QGpuSimulator(version=DIAGONAL_AWARE).estimate(circuit).total_seconds
        results[family] = (paper, aware)
    return results


def test_ext_diagonal_aware_pruning(benchmark) -> None:
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [family, paper, aware, paper / aware]
        for family, (paper, aware) in results.items()
    ]
    print()
    print(format_table(
        ["circuit", "algorithm1_s", "diag_aware_s", "gain"],
        rows, title=f"[extension] diagonal-aware pruning at {NUM_QUBITS}q",
    ))
    # Sound: never slower.
    for family, (paper, aware) in results.items():
        assert aware <= paper * 1.001, family
    # Surgical: huge on the cp-ladder circuit, neutral on H-driven ones.
    assert results["qft"][0] / results["qft"][1] > 10
    assert results["qaoa"][0] / results["qaoa"][1] < 1.05
    assert results["gs"][0] / results["gs"][1] < 1.05
