"""Extension bench: the three simulation paradigms of Section II-B.

Real wall-clock comparison of the Schroedinger (dense), stabilizer
(tableau) and tensor-network (MPS) engines on workloads that favour each:

* a Clifford circuit (gs) - polynomial for the tableau, exponential dense;
* a product-state-preserving circuit (qft from |0..0>) - bond-1 MPS;
* a scrambling circuit (rqc) - dense wins, MPS bonds blow up.

Unlike the modelled GPU benches, these numbers are genuinely measured in
this process.
"""

from __future__ import annotations

import time

from repro.analysis.tables import format_table
from repro.circuits.library import get_circuit
from repro.mps import simulate_mps
from repro.stabilizer import is_clifford_circuit, simulate_clifford
from repro.statevector.state import simulate


def run_taxonomy() -> dict[tuple[str, str], float]:
    cases = {
        "gs_16": get_circuit("gs", 16),
        "qft_14": get_circuit("qft", 14),
        "rqc_12": get_circuit("rqc", 12, depth=8),
    }
    results: dict[tuple[str, str], float] = {}
    for label, circuit in cases.items():
        start = time.perf_counter()
        simulate(circuit)
        results[(label, "dense")] = time.perf_counter() - start

        start = time.perf_counter()
        simulate_mps(circuit)
        results[(label, "mps")] = time.perf_counter() - start

        if is_clifford_circuit(circuit):
            start = time.perf_counter()
            simulate_clifford(circuit)
            results[(label, "stabilizer")] = time.perf_counter() - start
    return results


def test_taxonomy_engines(benchmark) -> None:
    results = benchmark.pedantic(run_taxonomy, rounds=1, iterations=1)
    rows = [
        [f"{label}/{engine}", seconds * 1000]
        for (label, engine), seconds in sorted(results.items())
    ]
    print()
    print(format_table(["engine", "milliseconds"], rows,
                       title="[extension] simulation paradigms (measured)"))
    # The tableau engine handles the Clifford circuit at polynomial cost.
    assert results[("gs_16", "stabilizer")] < results[("gs_16", "dense")]
    # MPS exploits the product structure of QFT|0...0>.
    assert ("qft_14", "mps") in results
    # Every engine completed every supported case.
    assert len(results) == 7
