"""Bench: Fig. 4 - the naive approach is dominated by data movement."""

from repro.experiments.fig04_naive_breakdown import run


def test_fig4_naive_breakdown(run_once) -> None:
    result = run_once(run)
    mean = result.data["average"]
    assert mean["transfer"] > 0.8
    assert mean["cpu"] == 0.0
