"""Ablation: cache-blocking qubit layout (Doi & Horii, QCE 2020).

Relabels qubits so the gate-busiest ones live inside the chunk, reducing
Case-2 (cross-chunk) updates in the static baseline.  This is the
cache-blocking lineage the paper's baseline builds on (reference [17]).
"""

from repro.analysis.tables import format_table
from repro.circuits.layout import (
    apply_layout,
    cache_blocking_layout,
    cache_blocking_swaps,
    cross_chunk_gate_count,
)
from repro.circuits.library import get_circuit
from repro.core.executor import DEFAULT_CHUNK_BITS, TimedExecutor
from repro.core.versions import BASELINE
from repro.hardware.machine import Machine
from repro.hardware.specs import PAPER_MACHINE

FAMILIES = ("qf", "bv", "hchain", "qft")
NUM_QUBITS = 33


def run_ablation() -> dict[str, tuple[int, int, float, float]]:
    executor = TimedExecutor(Machine(PAPER_MACHINE))
    results = {}
    for family in FAMILIES:
        circuit = get_circuit(family, NUM_QUBITS)
        mapping = cache_blocking_layout(circuit, DEFAULT_CHUNK_BITS)
        remapped = apply_layout(circuit, mapping)
        before = cross_chunk_gate_count(circuit, DEFAULT_CHUNK_BITS)
        after = cross_chunk_gate_count(remapped, DEFAULT_CHUNK_BITS)
        t_before = executor.execute(circuit, BASELINE).total_seconds
        t_after = executor.execute(remapped, BASELINE).total_seconds
        results[family] = (before, after, t_before, t_after)
    return results


def test_ablation_cache_blocking_layout(benchmark) -> None:
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [family, before, after, t_before, t_after]
        for family, (before, after, t_before, t_after) in results.items()
    ]
    print()
    print(format_table(
        ["circuit", "cross_chunk_before", "after", "baseline_s", "layout_s"],
        rows, title=f"[ablation] cache-blocking layout at {NUM_QUBITS}q",
    ))
    for family, (before, after, t_before, t_after) in results.items():
        assert after <= before, family
        # Fewer reactive exchanges can only help the static baseline.
        assert t_after <= t_before * 1.01, family


def run_swap_ablation() -> list[list]:
    from repro.core.executor import DEFAULT_CHUNK_BITS

    executor = TimedExecutor(Machine(PAPER_MACHINE))
    rows = []
    for family in ("hchain", "qft"):
        circuit = get_circuit(family, NUM_QUBITS)
        physical, _ = cache_blocking_swaps(circuit, DEFAULT_CHUNK_BITS)
        local_originals = sum(
            1 for g in physical
            if g.name != "swap" and all(q < DEFAULT_CHUNK_BITS for q in g.qubits)
        )
        swaps = physical.gate_counts().get("swap", 0)
        t_orig = executor.execute(circuit, BASELINE).total_seconds
        t_swapped = executor.execute(physical, BASELINE).total_seconds
        rows.append([family, len(circuit), swaps, t_orig, t_swapped, local_originals])
    return rows


def test_ablation_cache_blocking_swaps(benchmark) -> None:
    """Dynamic (swap-inserting) cache blocking: every original gate becomes
    chunk-local; only inserted SWAPs cross the boundary.  The honest
    finding: in the CPU-bound static baseline the extra SWAP exchanges cost
    more than the locality saves - cache blocking pays off only when
    cross-chunk updates are the bottleneck."""
    rows = benchmark.pedantic(run_swap_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["circuit", "orig_gates", "swaps_added", "baseline_s", "swapped_s",
         "local_originals"],
        rows, title=f"[ablation] swap-based cache blocking at {NUM_QUBITS}q",
    ))
    for family, orig_gates, _, _, _, local_originals in rows:
        assert local_originals == orig_gates, family
