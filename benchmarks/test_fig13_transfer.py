"""Bench: Fig. 13 - data-transfer time normalized to the Naive version."""

from repro.experiments.fig13_transfer import run


def test_fig13_transfer(run_once) -> None:
    result = run_once(run)
    table = result.data["normalized"]
    averages = result.data["averages"]

    # Overlap removes ~half the transfer time, uniformly across circuits
    # (paper: 44.56% on average, circuit-independent).
    for family, row in table.items():
        assert abs(row["Overlap"] - 0.5) < 0.06, family

    # Pruning/reorder savings are circuit-dependent.
    assert table["iqp"]["Pruning"] < 0.15
    assert table["qaoa"]["Pruning"] > 0.4
    assert table["gs"]["Reorder"] < 0.1

    # Compression helps the compressible circuits beyond reordering.
    for family in ("qaoa", "gs", "qft", "qf"):
        assert table[family]["Q-GPU"] < table[family]["Reorder"], family

    # Stepwise reduction on average.
    assert (
        1.0 > averages["Overlap"] > averages["Pruning"]
        > averages["Reorder"] > averages["Q-GPU"]
    )
