"""Bench: Table III - pruning and reordering on deep random circuits."""

from repro.experiments.tab3_deep_circuits import run


def test_tab3_deep_circuits(run_once) -> None:
    result = run_once(run)
    reductions = result.data["reductions"]
    # Paper: 41.47% on grqc_32 and 17.99%/17.39% on rqc_31/rqc_32.
    assert abs(reductions["grqc_32"] - 41.47) < 10
    assert abs(reductions["rqc_31"] - 17.99) < 10
    assert abs(reductions["rqc_32"] - 17.39) < 10
    # The Google deep circuit gains more than the plain deep rqcs.
    assert reductions["grqc_32"] > reductions["rqc_31"]
    assert reductions["grqc_32"] > reductions["rqc_32"]
