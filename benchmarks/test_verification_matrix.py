"""Verification matrix: every engine against the dense reference.

Runs each benchmark family through every applicable engine - chunked,
Q-GPU functional (pruned + reordered), sparse, MPS, stabilizer, density
matrix - and prints the worst amplitude/probability deviation from the
dense reference.  This is DESIGN.md's validation strategy rendered as a
single artifact: all entries must sit at numerical noise.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.circuits.library import FAMILIES, get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import QGPU
from repro.mps import simulate_mps
from repro.sparse import simulate_sparse
from repro.stabilizer import is_clifford_circuit, simulate_clifford
from repro.statevector.chunks import ChunkedStateVector
from repro.statevector.density import DensityMatrix
from repro.statevector.expectation import PauliString, apply_pauli
from repro.statevector.state import simulate

NUM_QUBITS = 8


def run_matrix() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for family in FAMILIES:
        circuit = get_circuit(family, NUM_QUBITS)
        dense = simulate(circuit).amplitudes
        row: dict[str, float] = {}

        chunked = ChunkedStateVector(NUM_QUBITS, 3).run(circuit).to_dense()
        row["chunked"] = float(np.abs(chunked - dense).max())

        qgpu = QGpuSimulator(version=QGPU, chunk_bits=3).run(circuit).amplitudes
        row["qgpu"] = float(np.abs(qgpu - dense).max())

        row["sparse"] = float(
            np.abs(simulate_sparse(circuit).to_dense() - dense).max()
        )
        row["mps"] = float(np.abs(simulate_mps(circuit).to_dense() - dense).max())

        density = DensityMatrix(NUM_QUBITS).run(circuit)
        row["density"] = float(
            np.abs(density.rho - np.outer(dense, dense.conj())).max()
        )

        if is_clifford_circuit(circuit):
            tableau = simulate_clifford(circuit)
            worst = 0.0
            for sign, labels in tableau.stabilizer_strings():
                string = PauliString(
                    tuple((q, c) for q, c in enumerate(labels) if c != "I")
                )
                worst = max(
                    worst,
                    float(np.abs(apply_pauli(dense, string) - sign * dense).max()),
                )
            row["stabilizer"] = worst
        results[family] = row
    return results


def test_verification_matrix(benchmark) -> None:
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    engines = ["chunked", "qgpu", "sparse", "mps", "density", "stabilizer"]
    rows = []
    for family, row in results.items():
        rows.append(
            [family] + [f"{row[e]:.1e}" if e in row else "n/a" for e in engines]
        )
    print()
    print(format_table(
        ["circuit"] + engines, rows,
        title=f"[verification] max deviation from dense at {NUM_QUBITS} qubits",
    ))
    for family, row in results.items():
        for engine, error in row.items():
            assert error < 1e-9, (family, engine, error)
    # The Clifford families were checked against the tableau.
    assert "stabilizer" in results["gs"]
    assert "stabilizer" in results["hlf"]
