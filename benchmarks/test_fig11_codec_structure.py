"""Bench: Fig. 11 - GFC pipeline structure (segments/micro-chunks/warps)."""

from repro.experiments.fig11_codec_structure import SEGMENT_COUNTS, run


def test_fig11_codec_structure(run_once) -> None:
    result = run_once(run)
    ratios = result.data["ratios"]
    # On a large live region (qaoa streams the full state here) warp
    # parallelism is nearly free ratio-wise.
    qaoa_series = [ratios[("qaoa", s)] for s in SEGMENT_COUNTS]
    assert max(qaoa_series) - min(qaoa_series) < 0.01
    # On a small live region, over-partitioning degrades the ratio: each
    # segment restarts its predictor, and a one-micro-chunk segment has no
    # intra-segment history at all.
    iqp_series = [ratios[("iqp", s)] for s in SEGMENT_COUNTS]
    assert iqp_series[-1] > iqp_series[0]
    # The compressibility contrast survives at every parallelism level.
    for segments in SEGMENT_COUNTS:
        assert ratios[("qaoa", segments)] < ratios[("iqp", segments)]
