"""Ablations: chunk size and interconnect bandwidth (extension benches).

* **Chunk size** - Aer's 2^21-amplitude chunks vs smaller/larger chunks:
  granularity changes batch counts and per-copy latency, but the streamed
  byte volume is identical, so the effect should be small - validating the
  paper's choice as non-critical.
* **Link bandwidth** - PCIe 3.0 vs PCIe 4.0 vs NVLink: the streaming
  versions are transfer-bound, so Q-GPU's runtime should scale nearly
  inversely with link bandwidth until the GPU kernels become the bound.
"""

from dataclasses import replace

from repro.analysis.tables import format_table
from repro.circuits.library import get_circuit
from repro.core.executor import TimedExecutor
from repro.core.versions import OVERLAP, QGPU
from repro.hardware.machine import Machine
from repro.hardware.specs import GB, LinkSpec, NVLINK2, PAPER_MACHINE, PCIE3_X16

PCIE4_X16 = LinkSpec("PCIe 4.0 x16", bandwidth_per_direction=24 * GB)
NUM_QUBITS = 32


def run_chunk_ablation() -> dict[int, float]:
    circuit = get_circuit("qft", NUM_QUBITS)
    results = {}
    for chunk_bits in (18, 21, 24):
        executor = TimedExecutor(Machine(PAPER_MACHINE), chunk_bits=chunk_bits)
        results[chunk_bits] = executor.execute(circuit, OVERLAP).total_seconds
    return results


def run_link_ablation() -> dict[str, float]:
    circuit = get_circuit("qft", NUM_QUBITS)
    results = {}
    for link in (PCIE3_X16, PCIE4_X16, NVLINK2):
        machine = Machine(replace(PAPER_MACHINE, link=link))
        results[link.name] = TimedExecutor(machine).execute(
            circuit, QGPU, compression_ratio=0.5
        ).total_seconds
    return results


def test_ablation_chunk_size(benchmark) -> None:
    results = benchmark.pedantic(run_chunk_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["chunk_bits", "seconds"], [[k, v] for k, v in results.items()],
        title=f"[ablation] chunk size, Overlap qft_{NUM_QUBITS}",
    ))
    values = list(results.values())
    # Same bytes stream regardless of granularity: within a few percent.
    assert max(values) / min(values) < 1.05


def test_ablation_link_bandwidth(benchmark) -> None:
    results = benchmark.pedantic(run_link_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["link", "seconds"], [[k, v] for k, v in results.items()],
        title=f"[ablation] interconnect, Q-GPU qft_{NUM_QUBITS}",
    ))
    pcie3 = results["PCIe 3.0 x16"]
    pcie4 = results["PCIe 4.0 x16"]
    nvlink = results["NVLink 2.0"]
    assert pcie4 < pcie3
    assert nvlink < pcie4
    # Transfer-bound regime: doubling bandwidth buys close to 2x.
    assert pcie3 / pcie4 > 1.5
