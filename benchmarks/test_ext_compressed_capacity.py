"""Extension bench: capacity gained by compressed host storage.

The paper's runtime already stores chunks compressed on the host (Section
IV-D); this bench quantifies the consequence it never evaluates - how many
*more qubits* each circuit family fits in the P100 server's 384 GiB, using
the per-family GFC ratios measured on real amplitudes.
"""

from repro.analysis.capacity import capacity_gain, max_qubits
from repro.analysis.tables import format_table
from repro.circuits.library import FAMILIES
from repro.compression.profile import family_ratio
from repro.hardware.specs import PAPER_MACHINE


def run_capacity() -> dict[str, object]:
    gains = {
        family: capacity_gain(family, PAPER_MACHINE, family_ratio(family))
        for family in FAMILIES
    }
    return gains


def test_ext_compressed_capacity(benchmark) -> None:
    gains = benchmark.pedantic(run_capacity, rounds=1, iterations=1)
    rows = [
        [g.family, g.ratio, g.qubits_uncompressed, g.qubits_compressed,
         f"+{g.extra_qubits}"]
        for g in gains.values()
    ]
    print()
    print(format_table(
        ["family", "gfc_ratio", "max_q_raw", "max_q_compressed", "gain"],
        rows, title="[extension] compressed host storage on the P100 server",
    ))
    # Raw capacity matches the paper: 34 qubits in 384 GiB.
    assert max_qubits(PAPER_MACHINE, 1.0) == 34
    # Strongly compressible families gain at least two qubits...
    assert gains["qft"].extra_qubits >= 2
    assert gains["gs"].extra_qubits >= 2
    # ...incompressible ones gain at most a little.
    assert gains["rqc"].extra_qubits <= 1
    assert gains["iqp"].extra_qubits <= 1
    # Compression never shrinks capacity.
    assert all(g.extra_qubits >= 0 for g in gains.values())
