"""Ablation: reordering strategy (original vs greedy vs forward-looking),
including the diagonal-commutation DAG relaxation (extension).

The paper compares greedy and forward-looking on involvement curves
(Fig. 9); this bench prices the end-to-end effect of each strategy, plus
our DAG-relaxation extension that lets mutually commuting diagonal gates
reorder freely.
"""

from repro.analysis.tables import format_table
from repro.circuits.library import get_circuit
from repro.core.executor import TimedExecutor
from repro.core.reorder import reorder
from repro.core.simulator import QGpuSimulator
from repro.core.versions import PRUNING, VersionConfig
from repro.hardware.machine import Machine
from repro.hardware.specs import PAPER_MACHINE

NUM_QUBITS = 32
FAMILIES = ("gs", "qft", "qaoa", "iqp")


def run_ablation() -> dict[tuple[str, str], float]:
    executor = TimedExecutor(Machine(PAPER_MACHINE))
    results: dict[tuple[str, str], float] = {}
    for family in FAMILIES:
        circuit = get_circuit(family, NUM_QUBITS)
        for strategy in ("original", "greedy", "forward_looking"):
            config = VersionConfig(
                f"Pruning+{strategy}", dynamic_allocation=True, overlap=True,
                pruning=True, reorder_strategy=strategy,
            )
            results[(family, strategy)] = executor.execute(
                circuit, config
            ).total_seconds
        # DAG relaxation: reorder with commuting diagonals, price as pruning.
        relaxed = reorder(circuit, "forward_looking", commute_diagonals=True)
        results[(family, "relaxed_dag")] = executor.execute(
            relaxed, PRUNING
        ).total_seconds
    return results


def test_ablation_reorder_strategy(benchmark) -> None:
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    strategies = ("original", "greedy", "forward_looking", "relaxed_dag")
    rows = [
        [family] + [results[(family, s)] for s in strategies]
        for family in FAMILIES
    ]
    print()
    print(format_table(["circuit"] + list(strategies), rows,
                       title=f"[ablation] reorder strategies at {NUM_QUBITS}q (s)"))
    for family in FAMILIES:
        original = results[(family, "original")]
        forward = results[(family, "forward_looking")]
        # Forward-looking never loses to the original order.
        assert forward <= original * 1.001, family
        # The relaxed DAG can only open more freedom.
        assert results[(family, "relaxed_dag")] <= forward * 1.05, family
    # gs and qft benefit enormously; qaoa barely (paper Fig. 9).
    for family in ("gs", "qft"):
        assert results[(family, "forward_looking")] < 0.3 * results[(family, "original")]
    assert results[("qaoa", "forward_looking")] > 0.5 * results[("qaoa", "original")]
