"""Bench: Fig. 15 - roofline analysis of qft and iqp on a V100."""

from repro.experiments.fig15_roofline import run


def test_fig15_roofline(run_once) -> None:
    result = run_once(run)
    points = result.data["points"]

    # QCS is memory-bound: every point sits under the bandwidth slope.
    assert all(point.memory_bound for point in points.values())
    assert all(point.arithmetic_intensity < 1.0 for point in points.values())

    for family in ("qft", "iqp"):
        resident = points[(family, 29, "Baseline")]
        collapsed = points[(family, 33, "Baseline")]
        naive = points[(family, 33, "Naive")]
        qgpu = points[(family, 33, "Q-GPU")]
        # Within GPU memory the baseline runs near the ceiling...
        assert resident.efficiency > 0.3
        # ...past it the baseline collapses, naive recovers some throughput,
        # and Q-GPU achieves the most (paper Section V-B).
        assert collapsed.achieved_flops < 0.05 * resident.achieved_flops
        assert naive.achieved_flops > collapsed.achieved_flops
        assert qgpu.achieved_flops > naive.achieved_flops
