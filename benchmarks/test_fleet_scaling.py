"""Fleet scaling sweep and multi-GPU communication-identity bench.

Two benchmarks backing the fleet observatory:

* ``test_scaling_sweep`` runs the ``fleet`` experiment (strong + weak
  sweeps over 2-64 devices on the V100 server; ``QGPU_BENCH_SMOKE=1``
  switches to the 2-8 device smoke grid) and writes every per-row metric
  to ``BENCH_fleet.json`` for the perf ledger,
* ``test_comm_matrix_identity`` runs the chunk-granular DES executor on
  four devices and asserts the trace-side communication matrix built by
  :func:`repro.obs.fleet.fleet_analysis` reproduces the executor's own
  transfer accounting *exactly* (byte counts are integers, so float64
  sums are exact), and that per-device busy time reconciles with the
  aggregate stage rollup.

Results go to ``BENCH_fleet.json``; ``check_bench_regression.py`` gates
the identity fields and the ledger tracks the sweep over time.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from repro.core.detailed import DetailedExecutor
from repro.core.versions import OVERLAP
from repro.experiments import run_experiment
from repro.experiments.common import cached_circuit
from repro.hardware.machine import Machine
from repro.hardware.specs import MULTI_V100_MACHINE
from repro.hardware.trace import to_chrome_trace
from repro.obs.analyze import stage_rollups
from repro.obs.export import spans_from_events
from repro.obs.fleet import fleet_analysis

SMOKE = os.environ.get("QGPU_BENCH_SMOKE", "") not in ("", "0")

# The identity check's DES knobs (chunk-count cap is 1024, same as the
# executor's own tests and the fig19 fleet telemetry).
IDENTITY_QUBITS = 20
IDENTITY_CHUNK_BITS = 14
IDENTITY_CAPACITY = 1 << 22
IDENTITY_DEVICES = 4

# Repo-root anchored like the other BENCH_* artifacts.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def _update_results(fields: dict) -> None:
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except (OSError, ValueError):
            payload = {}
    payload.update(fields)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_scaling_sweep() -> None:
    start = time.perf_counter()
    result = run_experiment("fleet")
    sweep_s = time.perf_counter() - start

    strong = result.data["strong"]
    weak = result.data["weak"]
    assert strong and weak
    for row in strong:
        assert row["seconds"] > 0
        assert row["speedup"] > 0
    for row in weak:
        assert row["seconds"] > 0
        assert row["weak_efficiency"] > 0
    # Strong scaling must help at the largest device count for every
    # family.  No linearity/efficiency<=1 gate: once aggregate GPU memory
    # holds the whole state the streaming term vanishes and the model
    # legitimately goes superlinear.
    max_d = max(row["devices"] for row in strong)
    for row in strong:
        if row["devices"] == max_d:
            assert row["speedup"] > 1.0, (
                f"{row['family']} shows no strong-scaling win at "
                f"{max_d} devices ({row['speedup']:.2f}x)"
            )

    payload = {
        "mode": result.data["mode"],
        "machine": result.data["machine"],
        "device_counts": result.data["device_counts"],
        "sweep_wall_seconds": sweep_s,
        "strong": strong,
        "weak": weak,
    }
    _update_results(payload)
    print(f"\n  fleet sweep ({payload['mode']}): "
          f"{len(strong)} strong + {len(weak)} weak rows in {sweep_s:.2f} s")
    for row in strong:
        if row["devices"] == max_d:
            print(f"  strong {row['family']:>10} x{max_d}: "
                  f"{row['speedup']:6.2f}x (eff {row['efficiency']:.2f})")
    print(f"  wrote {RESULTS_PATH}")


def test_comm_matrix_identity() -> None:
    executor = DetailedExecutor(
        Machine(MULTI_V100_MACHINE),
        chunk_bits=IDENTITY_CHUNK_BITS,
        capacity_bytes=IDENTITY_CAPACITY,
        devices=IDENTITY_DEVICES,
    )
    run = executor.execute(cached_circuit("qft", IDENTITY_QUBITS), OVERLAP)

    events = to_chrome_trace(run.timeline, time_scale=1.0)
    spans = spans_from_events(events)
    start = time.perf_counter()
    fa = fleet_analysis(spans)
    analysis_s = time.perf_counter() - start

    des_bytes = run.bytes_h2d + run.bytes_d2h
    # Exact identity, not approximate: integer byte counts sum without
    # rounding in float64, so any drift means dropped or double-counted
    # transfer spans.
    assert fa.total_bytes == des_bytes, (
        f"comm matrix total {fa.total_bytes} != DES transfers {des_bytes}"
    )
    trace_matrix = {
        (src, dst): value
        for src, row in fa.comm_matrix.items()
        for dst, value in row.items()
    }
    assert trace_matrix == dict(run.transfers)

    # Per-device busy must reconcile with the aggregate stage rollup:
    # summing each stage over devices reproduces the global totals.
    rollup = {stage: r.total for stage, r in stage_rollups(spans).items()}
    per_device = {}
    for stats in fa.devices:
        for stage, total in stats.stages.items():
            per_device[stage] = per_device.get(stage, 0.0) + total
    for stage, total in per_device.items():
        assert math.isclose(total, rollup.get(stage, 0.0), rel_tol=1e-9), (
            f"stage {stage}: device sum {total} != rollup {rollup.get(stage)}"
        )

    assert len(fa.devices) == IDENTITY_DEVICES
    assert fa.imbalance >= 1.0

    fields = {
        "identity_devices": IDENTITY_DEVICES,
        "identity_qubits": IDENTITY_QUBITS,
        "comm_bytes_total": fa.total_bytes,
        "des_transfer_bytes": des_bytes,
        "comm_identity_exact": fa.total_bytes == des_bytes,
        "load_imbalance": fa.imbalance,
        "fleet_span_count": fa.span_count,
        "fleet_analysis_seconds": analysis_s,
        "makespan_seconds": run.makespan,
    }
    _update_results(fields)
    print(f"\n  comm identity (qft_{IDENTITY_QUBITS}, "
          f"x{IDENTITY_DEVICES}): {des_bytes:.0f} bytes, "
          f"imbalance {fa.imbalance:.3f}, "
          f"analysis {analysis_s * 1e3:.1f} ms over {fa.span_count} spans")
    print(f"  wrote {RESULTS_PATH}")
