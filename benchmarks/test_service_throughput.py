"""Batch-service throughput bench: jobs/sec, cache hit-rate, self-healing.

Runs the same duplicate-heavy, mixed-family workload (the circuit-library
families of Table I) through the batch service once per scheduling policy
and records

* end-to-end throughput in jobs/sec (wall time, 4 workers),
* the cache hit rate the duplicate structure achieves,
* admission deferrals under a constrained memory budget,
* watchdog supervision overhead (enabled vs. disabled; gated < 3% on
  best-of-N minima, mirroring the observability overhead gate),
* crash-recovery time: journal replay + re-queue after a simulated
  mid-run crash.

Results are printed as a table and merged into ``BENCH_service.json``
next to the working directory for the CI artifact trail.  Set
``QGPU_BENCH_SMOKE=1`` for a CI-sized run.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

import pytest

from repro.analysis.capacity import host_footprint_bytes
from repro.reliability.faults import FaultPlan
from repro.service import BatchService, JobSpec, JobStore, SupervisionConfig
from repro.service.chaos import ChaosJournal, SimulatedCrash

POLICIES = ("fifo", "priority", "sjf")

SMOKE = os.environ.get("QGPU_BENCH_SMOKE", "") not in ("", "0")
REPEATS = 3 if SMOKE else 5
# The self-healing gate: supervised minimum over unsupervised minimum,
# plus an absolute allowance so scheduler jitter on a sub-second run
# cannot fail the ratio.
MAX_SUPERVISION_OVERHEAD = 0.03
JITTER_ALLOWANCE_S = 10e-3

# Mixed-family workload, duplicate-heavy on purpose: 20 jobs, 9 distinct.
WORKLOAD: list[tuple[str, int, int, int]] = [
    # (family, qubits, shots, copies)
    ("bv", 10, 100, 4),
    ("gs", 8, 100, 3),
    ("qft", 8, 0, 3),
    ("hlf", 8, 50, 2),
    ("iqp", 8, 50, 2),
    ("qaoa", 8, 0, 2),
    ("bv", 12, 100, 2),
    ("rqc", 8, 0, 1),
    ("qf", 8, 0, 1),
]

RESULTS_PATH = Path("BENCH_service.json")
_results: dict[str, dict] = {}


def run_workload(policy: str) -> BatchService:
    # Budget of ~3 concurrent 12-qubit jobs: admission control is active
    # but never starves the pool.
    service = BatchService(
        policy=policy,
        workers=4,
        memory_budget_bytes=3.5 * host_footprint_bytes(12),
        seed=7,
    )
    priority = 0
    for family, qubits, shots, copies in WORKLOAD:
        priority = (priority + 3) % 10  # spread priorities for the policy
        for _ in range(copies):
            service.submit(JobSpec(
                family=family, qubits=qubits, shots=shots, priority=priority,
            ))
    service.run_until_complete()
    return service


@pytest.mark.parametrize("policy", POLICIES)
def test_service_throughput(benchmark, policy: str) -> None:
    service = benchmark.pedantic(run_workload, args=(policy,),
                                 rounds=1, iterations=1)
    snap = service.snapshot()
    total = snap["counters"]["jobs_succeeded"]
    assert total == sum(copies for *_, copies in WORKLOAD)
    assert snap["cache"]["hits"] > 0  # the duplicate structure paid off

    elapsed = benchmark.stats["mean"]
    _results[policy] = {
        "jobs": total,
        "jobs_per_second": round(total / elapsed, 2),
        "elapsed_seconds": round(elapsed, 4),
        "cache_hit_rate": round(snap["cache"]["hit_rate"], 4),
        "cache_hits": snap["cache"]["hits"],
        "cache_misses": snap["cache"]["misses"],
        "admission_deferrals": snap["admission"]["deferrals"],
        "admission_peak_bytes": snap["admission"]["peak_bytes"],
    }
    print(f"\n  {policy}: {total} jobs in {elapsed:.2f}s "
          f"({_results[policy]['jobs_per_second']:.1f} jobs/s, "
          f"hit rate {_results[policy]['cache_hit_rate']:.0%})")

    if len(_results) == len(POLICIES):
        _emit_report()


def _emit_report() -> None:
    """Print the policy comparison and write BENCH_service.json."""
    header = f"  {'policy':<10} {'jobs/s':>8} {'hit rate':>9} {'deferrals':>10}"
    print("\n" + header)
    print("  " + "-" * (len(header) - 2))
    for policy in POLICIES:
        row = _results[policy]
        print(f"  {policy:<10} {row['jobs_per_second']:>8.1f} "
              f"{row['cache_hit_rate']:>8.0%} {row['admission_deferrals']:>10}")

    _update_results(
        {"workload_jobs": sum(c for *_, c in WORKLOAD),
         "workers": 4, "policies": _results})


def _update_results(fields: dict) -> None:
    """Merge fields into BENCH_service.json (tests run in any order)."""
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except (OSError, ValueError):
            payload = {}
    payload.update(fields)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- self-healing: supervision overhead and crash recovery -------------------

#: Distinct (no-duplicate) jobs so the supervision bench times real
#: executions, not cache hits.
HEAL_WORKLOAD: list[tuple[str, int]] = [
    ("bv", 9), ("gs", 8), ("qft", 8), ("hlf", 8),
    ("iqp", 8), ("qaoa", 8), ("rqc", 8), ("qf", 8),
]


def _run_heal_workload(supervision: SupervisionConfig) -> None:
    service = BatchService(workers=4, supervision=supervision, seed=7)
    for family, qubits in HEAL_WORKLOAD:
        service.submit(JobSpec(family=family, qubits=qubits))
    service.run_until_complete()


def _best_of(run) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_watchdog_supervision_overhead() -> None:
    """Supervision (watchdog thread + per-job watch/release) costs < 3%."""
    _run_heal_workload(SupervisionConfig(enabled=False))  # warm caches

    disabled = _best_of(
        lambda: _run_heal_workload(SupervisionConfig(enabled=False)))
    enabled = _best_of(
        lambda: _run_heal_workload(SupervisionConfig()))

    overhead = (enabled - disabled) / disabled
    print(f"\n  supervision: disabled {disabled * 1e3:.1f}ms, "
          f"enabled {enabled * 1e3:.1f}ms ({overhead:+.1%})")
    _update_results({"supervision_overhead": {
        "jobs": len(HEAL_WORKLOAD),
        "repeats": REPEATS,
        "disabled_seconds": round(disabled, 4),
        "enabled_seconds": round(enabled, 4),
        "overhead_fraction": round(overhead, 4),
        "gate": MAX_SUPERVISION_OVERHEAD,
    }})
    assert enabled <= disabled * (1 + MAX_SUPERVISION_OVERHEAD) + JITTER_ALLOWANCE_S, (
        f"supervision overhead {overhead:.1%} exceeds "
        f"{MAX_SUPERVISION_OVERHEAD:.0%} gate "
        f"(disabled {disabled:.4f}s, enabled {enabled:.4f}s)"
    )


def test_crash_recovery_time(tmp_path) -> None:
    """Time journal replay + re-queue after a simulated mid-run crash."""
    crashed = tmp_path / "crashed.jsonl"
    journal = ChaosJournal(crashed, FaultPlan(seed=7))
    service = BatchService(workers=1, journal=journal, seed=7)
    for family, qubits in HEAL_WORKLOAD:
        service.submit(JobSpec(family=family, qubits=qubits))
    # Die mid-drain: some jobs SUCCEEDED (cache-seedable), one RUNNING.
    journal.arm_kill(3 * len(HEAL_WORKLOAD) // 2)
    try:
        service.run_until_complete()
    except SimulatedCrash:
        pass
    else:  # pragma: no cover - schedule drift would invalidate the bench
        raise AssertionError("chaos kill never fired; recovery bench is void")

    recovered_jobs = 0

    def recover_once() -> None:
        nonlocal recovered_jobs
        # recover() appends re-queue transitions, so each repeat replays
        # a pristine copy of the crashed journal.
        path = tmp_path / "replay.jsonl"
        shutil.copyfile(crashed, path)
        fresh = BatchService(workers=1, journal=JobStore(path))
        recovered_jobs = len(fresh.recover())

    recover_once()  # warm
    best = _best_of(recover_once)
    events = len(list(JobStore(crashed).iter_events()))
    print(f"\n  recovery: {events} journal events, "
          f"{recovered_jobs} jobs re-queued in {best * 1e3:.2f}ms")
    assert recovered_jobs > 0
    _update_results({"crash_recovery": {
        "journal_events": events,
        "journal_bytes": crashed.stat().st_size,
        "jobs_recovered": recovered_jobs,
        "recover_seconds": round(best, 6),
        "repeats": REPEATS,
    }})
