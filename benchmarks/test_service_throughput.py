"""Batch-service throughput bench: jobs/sec and cache hit-rate per policy.

Runs the same duplicate-heavy, mixed-family workload (the circuit-library
families of Table I) through the batch service once per scheduling policy
and records

* end-to-end throughput in jobs/sec (wall time, 4 workers),
* the cache hit rate the duplicate structure achieves,
* admission deferrals under a constrained memory budget.

Results are printed as a table and written to ``BENCH_service.json`` next
to the working directory for the CI artifact trail.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.capacity import host_footprint_bytes
from repro.service import BatchService, JobSpec

POLICIES = ("fifo", "priority", "sjf")

# Mixed-family workload, duplicate-heavy on purpose: 20 jobs, 9 distinct.
WORKLOAD: list[tuple[str, int, int, int]] = [
    # (family, qubits, shots, copies)
    ("bv", 10, 100, 4),
    ("gs", 8, 100, 3),
    ("qft", 8, 0, 3),
    ("hlf", 8, 50, 2),
    ("iqp", 8, 50, 2),
    ("qaoa", 8, 0, 2),
    ("bv", 12, 100, 2),
    ("rqc", 8, 0, 1),
    ("qf", 8, 0, 1),
]

RESULTS_PATH = Path("BENCH_service.json")
_results: dict[str, dict] = {}


def run_workload(policy: str) -> BatchService:
    # Budget of ~3 concurrent 12-qubit jobs: admission control is active
    # but never starves the pool.
    service = BatchService(
        policy=policy,
        workers=4,
        memory_budget_bytes=3.5 * host_footprint_bytes(12),
        seed=7,
    )
    priority = 0
    for family, qubits, shots, copies in WORKLOAD:
        priority = (priority + 3) % 10  # spread priorities for the policy
        for _ in range(copies):
            service.submit(JobSpec(
                family=family, qubits=qubits, shots=shots, priority=priority,
            ))
    service.run_until_complete()
    return service


@pytest.mark.parametrize("policy", POLICIES)
def test_service_throughput(benchmark, policy: str) -> None:
    service = benchmark.pedantic(run_workload, args=(policy,),
                                 rounds=1, iterations=1)
    snap = service.snapshot()
    total = snap["counters"]["jobs_succeeded"]
    assert total == sum(copies for *_, copies in WORKLOAD)
    assert snap["cache"]["hits"] > 0  # the duplicate structure paid off

    elapsed = benchmark.stats["mean"]
    _results[policy] = {
        "jobs": total,
        "jobs_per_second": round(total / elapsed, 2),
        "elapsed_seconds": round(elapsed, 4),
        "cache_hit_rate": round(snap["cache"]["hit_rate"], 4),
        "cache_hits": snap["cache"]["hits"],
        "cache_misses": snap["cache"]["misses"],
        "admission_deferrals": snap["admission"]["deferrals"],
        "admission_peak_bytes": snap["admission"]["peak_bytes"],
    }
    print(f"\n  {policy}: {total} jobs in {elapsed:.2f}s "
          f"({_results[policy]['jobs_per_second']:.1f} jobs/s, "
          f"hit rate {_results[policy]['cache_hit_rate']:.0%})")

    if len(_results) == len(POLICIES):
        _emit_report()


def _emit_report() -> None:
    """Print the policy comparison and write BENCH_service.json."""
    header = f"  {'policy':<10} {'jobs/s':>8} {'hit rate':>9} {'deferrals':>10}"
    print("\n" + header)
    print("  " + "-" * (len(header) - 2))
    for policy in POLICIES:
        row = _results[policy]
        print(f"  {policy:<10} {row['jobs_per_second']:>8.1f} "
              f"{row['cache_hit_rate']:>8.0%} {row['admission_deferrals']:>10}")

    RESULTS_PATH.write_text(json.dumps(
        {"workload_jobs": sum(c for *_, c in WORKLOAD),
         "workers": 4, "policies": _results},
        indent=2, sort_keys=True) + "\n")
