"""Bench: Fig. 12 - the headline result.

Normalized execution time of all six versions plus CPU-OpenMP across the
nine benchmark circuits at 30/32/34 qubits on the P100 server.  The shape
claims checked here are the paper's Section V-A findings.
"""

from repro.experiments.fig12_overall import run


def test_fig12_overall(run_once) -> None:
    result = run_once(run)
    averages = result.data["averages_at_largest"]
    table = result.data["normalized"]

    # Stacked optimizations are monotone on average.
    assert averages["Naive"] > 1.0 > averages["Overlap"]
    assert averages["Overlap"] > averages["Pruning"] > averages["Reorder"]
    assert averages["Reorder"] > averages["Q-GPU"]

    # Calibrated anchors (paper: 0.76 / 0.52 / 0.42).
    assert abs(averages["Overlap"] - 0.76) < 0.06
    assert abs(averages["Pruning"] - 0.52) < 0.08
    assert abs(averages["CPU-OpenMP"] - 0.42) < 0.06

    # Q-GPU delivers a large average speedup over Baseline (paper: 3.55x;
    # our reorder pass is stronger, so the factor lands higher).
    assert 1.0 / averages["Q-GPU"] > 3.0

    # Per-circuit winners and losers (paper Section V-A):
    # gs/qft/iqp gain the most, hchain and qaoa the least.
    gains = {f: table[(f, 34)]["Q-GPU"] for f in
             ("hchain", "rqc", "qaoa", "gs", "hlf", "qft", "iqp", "qf", "bv")}
    weakest_two = sorted(gains, key=gains.get, reverse=True)[:2]
    assert set(weakest_two) == {"hchain", "qaoa"}
    for strong in ("gs", "qft", "iqp"):
        assert gains[strong] < 0.1

    # Q-GPU cannot beat CPU-OpenMP on hchain (paper Section V-A).
    assert table[("hchain", 34)]["Q-GPU"] > table[("hchain", 34)]["CPU-OpenMP"]
