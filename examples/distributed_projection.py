"""Project Q-GPU onto a cluster (extension beyond the paper).

The paper's related work reaches 45 qubits on 8,192 nodes (Haener &
Steiger, SC'17).  This example uses the distributed-scaling model to ask:
with Q-GPU's pruning and compression carried over, what cluster does each
target width need, and what does strong scaling look like?

Run with:  python examples/distributed_projection.py
"""

from __future__ import annotations

from repro.analysis.scaling import (
    ClusterSpec,
    estimate_distributed,
    max_cluster_qubits,
)
from repro.circuits.library import get_circuit
from repro.compression.profile import family_ratio
from repro.hardware.specs import V100_MACHINE


def capacity_ladder() -> None:
    print("1. Cluster size needed per target width (V100 nodes, 80 GiB each)")
    print(f"   {'nodes':>7} {'max qubits':>11}")
    for exponent in range(0, 15, 2):
        nodes = 1 << exponent
        cluster = ClusterSpec(V100_MACHINE, nodes)
        print(f"   {nodes:>7} {max_cluster_qubits(cluster):>11}")


def strong_scaling(family: str = "qft", width: int = 32) -> None:
    circuit = get_circuit(family, width)
    ratio = family_ratio(family)
    print(f"\n2. Strong scaling of {circuit.name} "
          f"(pruned, GFC ratio {ratio:.2f})")
    print(f"   {'nodes':>6} {'total':>10} {'exchange':>10} "
          f"{'boundary gates':>15} {'efficiency':>11}")
    base = None
    for nodes in (1, 2, 4, 8, 16, 32):
        estimate = estimate_distributed(
            circuit, ClusterSpec(V100_MACHINE, nodes),
            compression_ratio=ratio,
        )
        if base is None:
            base = estimate.total_seconds
        efficiency = base / (nodes * estimate.total_seconds)
        print(f"   {nodes:>6} {estimate.total_seconds:>9.1f}s "
              f"{estimate.exchange_seconds:>9.1f}s "
              f"{estimate.exchange_gates:>15} {efficiency:>10.1%}")


def forty_five_qubits() -> None:
    print("\n3. The SC'17 milestone: 45 qubits")
    for nodes in (2048, 4096, 8192):
        cluster = ClusterSpec(V100_MACHINE, nodes)
        widest = max_cluster_qubits(cluster)
        marker = "<-- holds 45 qubits" if widest >= 45 else ""
        print(f"   {nodes:>5} nodes: up to {widest} qubits {marker}")


def main() -> None:
    capacity_ladder()
    strong_scaling()
    forty_five_qubits()


if __name__ == "__main__":
    main()
