"""Multi-GPU scaling study (paper Section V-E, Figs. 18-19).

Shows the round-robin chunk-group assignment of Fig. 18 on the paper's
7-qubit walk-through, then sweeps GPU counts on the P4 and V100 servers to
see how Q-GPU's streaming scales with aggregate link bandwidth.

Run with:  python examples/multi_gpu_scaling.py
"""

from __future__ import annotations

from repro import BASELINE, QGPU, QGpuSimulator, get_circuit
from repro.circuits import Gate
from repro.core import assign_round_robin, per_gpu_amplitudes
from repro.hardware import MULTI_P4_MACHINE, MULTI_V100_MACHINE


def fig18_walkthrough() -> None:
    print("Fig. 18 walk-through: 7 qubits, chunk = 2^4 amplitudes, gate on "
          "q5, two GPUs")
    assignment = assign_round_robin(7, 4, Gate("h", (5,)), num_gpus=2)
    for gpu in range(2):
        groups = assignment.groups_of(gpu)
        print(f"  GPU {gpu}: groups {groups}")
    print(f"  per-GPU amplitudes: {per_gpu_amplitudes(assignment, 4)}\n")


def scaling_sweep() -> None:
    for label, machine, width in (
        ("4x P4 over PCIe", MULTI_P4_MACHINE, 32),
        ("4x V100 over NVLink", MULTI_V100_MACHINE, 33),
    ):
        circuit = get_circuit("qft", width)
        print(f"{label}, {circuit.name}:")
        print(f"  {'GPUs':>4} {'Baseline':>12} {'Q-GPU':>12} {'speedup':>9}")
        for count in (1, 2, 4):
            spec = machine.with_gpu_count(count)
            base = QGpuSimulator(machine=spec, version=BASELINE).estimate(circuit)
            ours = QGpuSimulator(machine=spec, version=QGPU).estimate(circuit)
            print(
                f"  {count:>4} {base.total_seconds:>11.1f}s "
                f"{ours.total_seconds:>11.1f}s "
                f"{base.total_seconds / ours.total_seconds:>8.2f}x"
            )
        print()


def main() -> None:
    fig18_walkthrough()
    scaling_sweep()
    print("paper Section V-E: Q-GPU achieves 2.97x (PCIe) and 2.98x (NVLink)")
    print("over the QISKit-Aer multi-GPU baseline; CPU<->GPU traffic, not")
    print("GPU<->GPU traffic, dominates - so the same recipe carries over.")


if __name__ == "__main__":
    main()
