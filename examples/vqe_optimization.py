"""Variational quantum eigensolver on the exact simulator.

Minimises the energy of a transverse-field Ising chain
``H = -J sum Z_i Z_{i+1} - h sum X_i`` with a hardware-efficient ansatz,
closing the loop the paper's hchain benchmark motivates: circuits like
these are what a simulator exists to iterate on.

Run with:  python examples/vqe_optimization.py
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.circuits.circuit import QuantumCircuit
from repro.statevector import Observable, simulate

NUM_QUBITS = 6
LAYERS = 2
COUPLING = 1.0
FIELD = 0.7


def ising_observable() -> Observable:
    terms: dict[str, float] = {}
    for q in range(NUM_QUBITS - 1):
        terms[f"Z{q} Z{q + 1}"] = -COUPLING
    for q in range(NUM_QUBITS):
        terms[f"X{q}"] = -FIELD
    return Observable.from_dict(terms)


def ansatz(parameters: np.ndarray) -> QuantumCircuit:
    """Hardware-efficient ansatz: ry/rz layers with CX ladders."""
    circuit = QuantumCircuit(NUM_QUBITS, name="vqe_ansatz")
    index = 0
    for _ in range(LAYERS):
        for q in range(NUM_QUBITS):
            circuit.ry(float(parameters[index]), q)
            index += 1
        for q in range(NUM_QUBITS - 1):
            circuit.cx(q, q + 1)
        for q in range(NUM_QUBITS):
            circuit.rz(float(parameters[index]), q)
            index += 1
    return circuit


def exact_ground_energy(observable: Observable) -> float:
    """Diagonalise H exactly for the reference (6 qubits: 64x64)."""
    from repro.statevector.expectation import apply_pauli

    dim = 1 << NUM_QUBITS
    hamiltonian = np.zeros((dim, dim), dtype=np.complex128)
    basis = np.eye(dim, dtype=np.complex128)
    for coeff, string in observable.terms:
        for k in range(dim):
            hamiltonian[:, k] += coeff * apply_pauli(basis[k], string)
    return float(np.linalg.eigvalsh(hamiltonian)[0])


def main() -> None:
    observable = ising_observable()
    reference = exact_ground_energy(observable)
    print(f"transverse-field Ising chain, {NUM_QUBITS} sites, "
          f"J={COUPLING}, h={FIELD}")
    print(f"exact ground energy: {reference:.6f}\n")

    rng = np.random.default_rng(7)
    initial = rng.uniform(-0.3, 0.3, size=2 * NUM_QUBITS * LAYERS)
    evaluations = 0

    def energy(parameters: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        state = simulate(ansatz(parameters))
        return observable.expectation(state.amplitudes)

    initial_energy = energy(initial)
    result = minimize(energy, initial, method="COBYLA",
                      options={"maxiter": 250, "rhobeg": 0.4})
    final_energy = float(result.fun)

    print(f"initial energy : {initial_energy:10.6f}")
    print(f"VQE energy     : {final_energy:10.6f} "
          f"({evaluations} circuit evaluations)")
    print(f"exact energy   : {reference:10.6f}")
    gap = final_energy - reference
    print(f"gap to exact   : {gap:10.6f} "
          f"({gap / abs(reference):.1%} relative)")
    assert final_energy < initial_energy - 0.5, "optimisation made no progress"


if __name__ == "__main__":
    main()
