"""Capacity planning: when does which engine win?

Sweeps circuit width on the paper's P100 server and reports, per width,
the modelled execution time of the GPU Baseline, CPU-OpenMP and Q-GPU -
reproducing the scalability story of Sections III-C and V-A:

* under ~30 qubits the state fits in GPU memory and the GPU crushes the CPU,
* past 30 qubits the static baseline collapses (CPU-bound hybrid),
* the CPU overtakes the baseline around 32 qubits,
* Q-GPU restores the GPU advantage all the way to the host-memory limit.

Run with:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import BASELINE, QGPU, QGpuSimulator, get_circuit
from repro.comparisons import estimate_cpu_openmp
from repro.errors import SimulationError
from repro.hardware import AMP_BYTES, MACHINES


def sweep(family: str = "qft", widths: range = range(26, 36)) -> None:
    print(f"family: {family}, machine: {MACHINES['p100'].name}")
    print(
        f"{'qubits':>6} {'state':>9} {'Baseline':>12} {'CPU-OpenMP':>12} "
        f"{'Q-GPU':>12} {'winner':>12}"
    )
    for width in widths:
        state_gib = (AMP_BYTES << width) / 2**30
        try:
            circuit = get_circuit(family, width)
            times = {
                "Baseline": QGpuSimulator(version=BASELINE).estimate(circuit).total_seconds,
                "CPU-OpenMP": estimate_cpu_openmp(circuit).total_seconds,
                "Q-GPU": QGpuSimulator(version=QGPU).estimate(circuit).total_seconds,
            }
        except SimulationError as error:
            print(f"{width:>6} {state_gib:>7.0f}GB  -- {error}")
            continue
        winner = min(times, key=times.get)
        print(
            f"{width:>6} {state_gib:>7.0f}GB "
            f"{times['Baseline']:>11.1f}s {times['CPU-OpenMP']:>11.1f}s "
            f"{times['Q-GPU']:>11.1f}s {winner:>12}"
        )


def crossover_summary(family: str = "qft") -> None:
    """Find the paper's two crossover points."""
    baseline_loses_to_cpu = None
    for width in range(28, 35):
        circuit = get_circuit(family, width)
        baseline = QGpuSimulator(version=BASELINE).estimate(circuit).total_seconds
        cpu = estimate_cpu_openmp(circuit).total_seconds
        if cpu < baseline and baseline_loses_to_cpu is None:
            baseline_loses_to_cpu = width
    print(
        f"\nGPU baseline falls behind the CPU at {baseline_loses_to_cpu} qubits "
        "(paper Section III-C: 32 qubits)"
    )


def main() -> None:
    sweep()
    crossover_summary()
    print("\nPer-machine host limits (largest width that fits):")
    for key, machine in MACHINES.items():
        widths = [
            w for w in range(28, 37)
            if (AMP_BYTES << w) * 1.05 <= machine.host_memory_bytes
        ]
        print(f"  {key:>10}: {max(widths) if widths else '<28'} qubits "
              f"({machine.host_memory_bytes / 2**30:.0f} GiB host)")


if __name__ == "__main__":
    main()
