"""The three simulation paradigms of the paper's Section II-B, side by side.

Runs the same circuits through the Schroedinger (dense), stabilizer
(Aaronson-Gottesman tableau) and tensor-network (MPS) engines, showing
where each wins - and cross-checking that they agree.

Run with:  python examples/simulator_taxonomy.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits.library import get_circuit
from repro.circuits.library.extensions import ghz
from repro.mps import simulate_mps
from repro.stabilizer import is_clifford_circuit, simulate_clifford
from repro.statevector import simulate
from repro.statevector.expectation import PauliString, apply_pauli


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def main() -> None:
    print("1. Schroedinger vs stabilizer on a Clifford circuit (gs_16)")
    circuit = get_circuit("gs", 16)
    assert is_clifford_circuit(circuit)
    dense, t_dense = timed(simulate, circuit)
    tableau, t_tab = timed(simulate_clifford, circuit)
    print(f"   dense: {t_dense * 1000:7.1f} ms   (2^16 amplitudes)")
    print(f"   tableau: {t_tab * 1000:5.1f} ms   (O(n^2) bits)")
    # Cross-check: the dense state is fixed by every tableau stabilizer.
    for sign, labels in tableau.stabilizer_strings()[:3]:
        string = PauliString(tuple(
            (q, label) for q, label in enumerate(labels) if label != "I"
        ))
        assert np.allclose(apply_pauli(dense.amplitudes, string),
                           sign * dense.amplitudes, atol=1e-10)
    print("   first stabilizers:",
          ", ".join(f"{s:+d}{l}" for s, l in tableau.stabilizer_strings()[:3]))

    print("\n2. MPS compression (Equation 9): GHZ_18")
    state, t_mps = timed(simulate_mps, ghz(18))
    stored = sum(t.size for t in state.tensors)
    print(f"   mps: {t_mps * 1000:7.1f} ms, stores {stored} complex numbers")
    print(f"   dense would store {1 << 18} amplitudes "
          f"({(1 << 18) // stored}x more)")
    print(f"   max bond dimension: {state.max_bond_dimension()}")

    print("\n3. Where dense wins: a scrambling random circuit (rqc_12)")
    circuit = get_circuit("rqc", 12, depth=8)
    _, t_dense = timed(simulate, circuit)
    mps_state, t_mps = timed(simulate_mps, circuit)
    print(f"   dense: {t_dense * 1000:7.1f} ms")
    print(f"   mps:   {t_mps * 1000:7.1f} ms "
          f"(bond grew to {mps_state.max_bond_dimension()})")
    agreement = np.allclose(
        mps_state.to_dense(), simulate(circuit).amplitudes, atol=1e-8
    )
    print(f"   engines agree: {agreement}")

    print("\n4. Truncated MPS as an approximate simulator")
    circuit = get_circuit("qaoa", 12)
    exact = simulate(circuit).amplitudes
    for bond in (1, 2, 4, 8):
        approx = simulate_mps(circuit, max_bond=bond)
        vector = approx.to_dense()
        vector /= np.linalg.norm(vector)
        fidelity = abs(np.vdot(vector, exact)) ** 2
        print(f"   max_bond={bond}: fidelity {fidelity:.4f}, "
              f"truncation error {approx.truncation_error:.2e}")


if __name__ == "__main__":
    main()
