"""Reproduce every table and figure of the paper's evaluation in one run.

Prints the reproduced tables for Figs. 2-4, 6-7, 9, 10, 12-17, 19 and
Tables II-III, each annotated with the paper's reported numbers.

Run with:  python examples/paper_figures.py               (all experiments)
           python examples/paper_figures.py fig12 tab2    (a subset)
           python examples/paper_figures.py --csv results (also dump CSVs)
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments import all_experiment_ids, run_experiment


def main(argv: list[str]) -> int:
    csv_dir: Path | None = None
    if "--csv" in argv:
        position = argv.index("--csv")
        if position + 1 >= len(argv):
            print("--csv needs a directory")
            return 1
        csv_dir = Path(argv[position + 1])
        argv = argv[:position] + argv[position + 2:]
        csv_dir.mkdir(parents=True, exist_ok=True)

    requested = argv or all_experiment_ids()
    unknown = [eid for eid in requested if eid not in all_experiment_ids()]
    if unknown:
        print(f"unknown experiment ids: {unknown}")
        print(f"known: {all_experiment_ids()}")
        return 1

    started = time.perf_counter()
    for experiment_id in requested:
        t0 = time.perf_counter()
        result = run_experiment(experiment_id)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"  ({elapsed:.1f}s)\n")
        if csv_dir is not None:
            (csv_dir / f"{experiment_id}.csv").write_text(result.to_csv())
    if csv_dir is not None:
        print(f"CSV tables written to {csv_dir}/")
    print(f"total: {time.perf_counter() - started:.1f}s "
          f"for {len(requested)} experiments")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
