"""Explore GFC compressibility of quantum states (paper Section IV-D).

Compresses real state vectors with the bit-exact GFC codec, contrasts the
compressible circuits (qaoa, gs, qft) with the incompressible ones (iqp,
rqc, hchain), and verifies losslessness on the fly.

Run with:  python examples/compression_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro import FAMILIES, get_circuit
from repro.compression import (
    compress,
    decompress,
    get_profile,
    residual_stats,
)
from repro.statevector import simulate


def roundtrip_check(amplitudes: np.ndarray) -> None:
    """Assert bit-exact losslessness of the codec on real data."""
    stream = compress(amplitudes, num_segments=8)
    recovered = decompress(stream).view(np.complex128)
    assert np.array_equal(
        amplitudes.view(np.uint64), recovered.view(np.uint64)
    ), "GFC must be lossless"


def main() -> None:
    num_qubits = 14
    print(f"per-family GFC profiles at {num_qubits} qubits "
          "(mean ratio over live regions along the circuit)\n")
    print(f"{'family':>8} {'mean ratio':>11} {'final':>7} {'verdict':>16}")
    rows = []
    for family in FAMILIES:
        profile = get_profile(family, num_qubits)
        rows.append((profile.mean_ratio, family, profile))
    for mean_ratio, family, profile in sorted(rows):
        verdict = "compressible" if mean_ratio < 0.75 else "incompressible"
        print(f"{family:>8} {mean_ratio:>11.3f} {profile.final_ratio:>7.3f} "
              f"{verdict:>16}")

    # Residual concentration drives the ratio (paper Fig. 10).
    print("\nresidual concentration of terminal states (|r| < 1e-3):")
    for family in ("qaoa", "iqp"):
        state = simulate(get_circuit(family, num_qubits))
        roundtrip_check(state.amplitudes)
        stats = residual_stats(state.amplitudes, tolerance=1e-3)
        print(f"  {family}: {stats.near_zero_fraction:.1%} near zero, "
              f"mean |r| = {stats.mean_abs:.2e}")

    # What a byte of PCIe traffic buys: the executor multiplies streamed
    # bytes by the family ratio, so ratio 0.2 means 5x transfer reduction.
    print("\ntransfer multiplier the timed executor applies:")
    for family in ("qaoa", "gs", "qft", "iqp", "hchain"):
        ratio = get_profile(family, num_qubits).mean_ratio
        print(f"  {family:>8}: x{min(1.0, ratio):.2f} "
              f"({1 / max(ratio, 1e-9):.1f}x fewer bytes)" )


if __name__ == "__main__":
    main()
