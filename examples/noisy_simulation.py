"""Noisy simulation with the density-matrix engine.

The paper simulates ideal circuits (measurement only at the end, Section
II-B); this extension example exercises the density-matrix substrate:
depolarizing noise sweeps, amplitude damping, and mid-circuit measurement
with classical feed-forward.

Run with:  python examples/noisy_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.library import get_circuit
from repro.statevector import (
    DensityMatrix,
    amplitude_damping,
    depolarizing,
    simulate,
)


def noise_sweep() -> None:
    print("1. GHZ fidelity under depolarizing noise (gs_6)")
    circuit = get_circuit("gs", 6)
    ideal = simulate(circuit)
    print(f"   {'p':>6} {'fidelity':>9} {'purity':>8}")
    for p in (0.0, 0.01, 0.05, 0.1, 0.2):
        dm = DensityMatrix(6).run(circuit, noise=depolarizing(p))
        print(f"   {p:>6.2f} {dm.fidelity_with_pure(ideal):>9.4f} "
              f"{dm.purity():>8.4f}")


def t1_decay() -> None:
    print("\n2. T1-style decay of an excited qubit")
    dm = DensityMatrix(1)
    dm.apply(Gate("x", (0,)))
    print(f"   {'step':>5} {'P(1)':>7}")
    for step in range(0, 25, 4):
        print(f"   {step:>5} {dm.probability_of_one(0):>7.4f}")
        for _ in range(4):
            dm.apply_channel(amplitude_damping(0.15), 0)


def feed_forward() -> None:
    print("\n3. Mid-circuit measurement with feed-forward (deterministic reset)")
    rng = np.random.default_rng(1)
    outcomes = []
    for _ in range(8):
        dm = DensityMatrix(2).run(QuantumCircuit(2).h(0).cx(0, 1))
        m0 = dm.measure(0, rng)
        if m0:  # classical correction
            dm.apply(Gate("x", (1,)))
        outcomes.append((m0, dm.measure(1, rng)))
    print(f"   (measured, corrected partner): {outcomes}")
    assert all(b == 0 for _, b in outcomes)
    print("   partner always ends in |0> after correction")


def main() -> None:
    noise_sweep()
    t1_decay()
    feed_forward()


if __name__ == "__main__":
    main()
