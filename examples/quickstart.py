"""Quickstart: build a circuit, simulate it exactly, and model its
execution on the paper's GPU server.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ALL_VERSIONS,
    QGPU,
    QGpuSimulator,
    QuantumCircuit,
    get_circuit,
    to_qasm,
)
from repro.statevector import most_probable, sample_counts


def main() -> None:
    # 1. Build a circuit with the fluent API.
    bell = QuantumCircuit(2, name="bell")
    bell.h(0).cx(0, 1)

    simulator = QGpuSimulator()  # P100 server, full Q-GPU optimizations
    result = simulator.run(bell)
    print("Bell state amplitudes:", result.amplitudes.round(3))
    print("1000 shots:", sample_counts(result.state.to_dense(), shots=1000, seed=1))

    # 2. Use a benchmark circuit from the paper's Table I.
    circuit = get_circuit("bv", 12, secret=0b10110011101)
    outcome = most_probable(QGpuSimulator().run(circuit).amplitudes)
    print(f"\nBernstein-Vazirani recovered secret: {outcome & (1 << 11) - 1:#013b}")

    # 3. Export to OpenQASM (the interchange format of Section V-C).
    print("\nOpenQASM header:", to_qasm(bell).splitlines()[0])

    # 4. Model a 34-qubit run (256 GiB of amplitudes) on the P100 server -
    #    far beyond what fits in GPU (or dense host) memory.
    large = get_circuit("qft", 34)
    print(f"\n{large.name}: {len(large)} gates, "
          f"{16 * 2**34 / 2**30:.0f} GiB state vector")
    print(f"{'version':<10} {'modelled time':>14} {'vs Baseline':>12}")
    baseline_seconds = None
    for version in ALL_VERSIONS:
        timing = QGpuSimulator(version=version).estimate(large)
        if baseline_seconds is None:
            baseline_seconds = timing.total_seconds
        print(
            f"{version.name:<10} {timing.total_seconds:>12.1f} s "
            f"{timing.total_seconds / baseline_seconds:>11.3f}x"
        )

    # 5. Pruning statistics from an exact run (paper Section IV-B).
    functional = QGpuSimulator(version=QGPU).run(get_circuit("iqp", 12))
    print(
        f"\niqp_12 exact run: {functional.pruned_fraction:.0%} of chunk "
        "updates pruned as provably zero"
    )


if __name__ == "__main__":
    main()
