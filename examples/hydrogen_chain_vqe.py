"""Quantum-chemistry scenario: Trotterised hydrogen-chain evolution.

The paper's ``hchain`` benchmark models a linear chain of hydrogen atoms
(Section III-A).  This example runs the chain end-to-end at a functionally
tractable width - preparing the Hartree-Fock reference, evolving it, and
measuring site occupations - then asks the performance model what the same
experiment costs at 34 qubits on the paper's servers, and why hchain is the
benchmark where Q-GPU gains the least.

Run with:  python examples/hydrogen_chain_vqe.py
"""

from __future__ import annotations

from repro import QGPU, QGpuSimulator, REORDER, get_circuit
from repro.comparisons import estimate_cpu_openmp
from repro.core import live_fraction_trace, reorder
from repro.hardware import PAPER_MACHINE, V100_MACHINE
from repro.statevector import expectation_z


def main() -> None:
    # -- exact simulation at 12 spin orbitals -----------------------------
    num_qubits = 12
    circuit = get_circuit("hchain", num_qubits)
    print(f"{circuit.name}: {len(circuit)} gates, depth {circuit.depth()}")

    result = QGpuSimulator(version=QGPU).run(circuit)
    amplitudes = result.amplitudes

    # Site occupations <n_i> = (1 - <Z_i>) / 2 under Jordan-Wigner.
    print("\nsite occupations after evolution:")
    total = 0.0
    for site in range(num_qubits):
        occupation = (1.0 - expectation_z(amplitudes, site)) / 2.0
        total += occupation
        bar = "#" * int(occupation * 40)
        print(f"  site {site:2d}: {occupation:.3f} {bar}")
    print(f"  total particles: {total:.3f} (prepared: {num_qubits // 2})")

    # -- why hchain resists the Q-GPU optimizations -----------------------
    trace = live_fraction_trace(circuit)
    reordered = reorder(circuit, "forward_looking")
    trace_reordered = live_fraction_trace(reordered)
    print(
        f"\nmean live-amplitude fraction: original "
        f"{sum(trace) / len(trace):.2f}, forward-looking reordered "
        f"{sum(trace_reordered) / len(trace_reordered):.2f}"
    )
    print("(long-range couplings force early involvement: little to prune)")

    # -- cost of the real experiment at 34 qubits --------------------------
    large = get_circuit("hchain", 34)
    print(f"\n{large.name}: {len(large)} gates, 256 GiB state vector")
    for label, machine in (("P100 server", PAPER_MACHINE),):
        qgpu = QGpuSimulator(machine=machine, version=QGPU).estimate(large)
        rord = QGpuSimulator(machine=machine, version=REORDER).estimate(large)
        cpu = estimate_cpu_openmp(large, machine=machine)
        print(f"  {label}:")
        print(f"    Q-GPU       {qgpu.total_seconds:>10.0f} s")
        print(f"    Reorder     {rord.total_seconds:>10.0f} s")
        print(f"    CPU-OpenMP  {cpu.total_seconds:>10.0f} s   <- wins on hchain "
              "(paper Section V-A)")

    # The V100 server cannot even hold this state in host memory.
    try:
        QGpuSimulator(machine=V100_MACHINE, version=QGPU).estimate(large)
    except Exception as error:
        print(f"\nV100 server: {error}")


if __name__ == "__main__":
    main()
