"""Checkpoint/resume for mid-circuit simulation state.

A checkpoint is the persisted form of an in-flight run: the full chunked
state (GFC-compressed through :mod:`repro.statevector.io`, so it is
bit-exact and CRC-guarded) plus the metadata needed to restart exactly
where the run stopped - the gate cursor, the chunk geometry, and the
involvement mask at the cursor (stored so resume can cross-check its
replayed tracker state against what the writer saw).

Container layout (checkpoint format v2; v1 was a bare QGSV state file
with no resume metadata)::

    magic "QGCK" | uint8 version | uint8 reserved | uint32 num_qubits
    uint32 chunk_bits | uint64 gate_cursor | uint64 involvement_mask
    uint16 circuit-name length | name bytes (UTF-8)
    uint16 version-name length | name bytes (UTF-8)
    uint32 CRC32 of everything above | embedded QGSV v2 state stream

Writes are atomic (temp file + ``os.replace``), so a crash during
checkpointing can never destroy the previous good checkpoint.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.errors import CheckpointError, ReproError
from repro.statevector.chunks import ChunkedStateVector
from repro.statevector.io import dump_state, load_state, read_exact

_MAGIC = b"QGCK"
_FIXED = struct.Struct("<4sBBIIQQ")
_NAME_LEN = struct.Struct("<H")
_CRC_FIELD = struct.Struct("<I")
#: Current checkpoint container version.
CHECKPOINT_VERSION = 2


@dataclass
class Checkpoint:
    """One resumable snapshot of an in-flight functional run.

    Attributes:
        state: Chunked state at the cursor, bit-exact.
        gate_cursor: Number of (reordered) gates already applied.
        involvement_mask: Involvement bitmask at the cursor.
        circuit_name: Name of the circuit being executed.
        version_name: Execution version name.
    """

    state: ChunkedStateVector
    gate_cursor: int
    involvement_mask: int
    circuit_name: str
    version_name: str

    @property
    def num_qubits(self) -> int:
        return self.state.num_qubits

    @property
    def chunk_bits(self) -> int:
        return self.state.chunk_bits


def _encode_metadata(checkpoint: Checkpoint) -> bytes:
    circuit = checkpoint.circuit_name.encode("utf-8")
    version = checkpoint.version_name.encode("utf-8")
    if max(len(circuit), len(version)) > 0xFFFF:
        raise CheckpointError("checkpoint name exceeds 65535 bytes")
    if checkpoint.involvement_mask >> 64:
        raise CheckpointError("involvement mask exceeds 64 bits")
    blob = _FIXED.pack(
        _MAGIC,
        CHECKPOINT_VERSION,
        0,
        checkpoint.num_qubits,
        checkpoint.chunk_bits,
        checkpoint.gate_cursor,
        checkpoint.involvement_mask,
    )
    blob += _NAME_LEN.pack(len(circuit)) + circuit
    blob += _NAME_LEN.pack(len(version)) + version
    return blob


def save_checkpoint(
    destination: str | Path,
    state: ChunkedStateVector,
    gate_cursor: int,
    involvement_mask: int = 0,
    circuit_name: str = "",
    version_name: str = "",
) -> int:
    """Atomically write a checkpoint file; returns bytes written."""
    checkpoint = Checkpoint(
        state=state,
        gate_cursor=gate_cursor,
        involvement_mask=involvement_mask,
        circuit_name=circuit_name,
        version_name=version_name,
    )
    metadata = _encode_metadata(checkpoint)
    path = Path(destination)
    temp = path.with_name(path.name + ".tmp")
    try:
        with open(temp, "wb") as handle:
            handle.write(metadata)
            handle.write(_CRC_FIELD.pack(zlib.crc32(metadata)))
            state_bytes = dump_state(state.to_dense(), handle)
        os.replace(temp, path)
    except OSError as error:
        temp.unlink(missing_ok=True)
        raise CheckpointError(f"cannot write checkpoint {path}: {error}") from error
    return len(metadata) + _CRC_FIELD.size + state_bytes


def _load_from(handle: BinaryIO, where: str) -> Checkpoint:
    fixed = read_exact(handle, _FIXED.size)
    if len(fixed) != _FIXED.size:
        raise CheckpointError(f"{where}: too short for checkpoint header")
    magic, version, _, num_qubits, chunk_bits, cursor, mask = _FIXED.unpack(fixed)
    if magic != _MAGIC:
        raise CheckpointError(f"{where}: not a checkpoint file (magic {magic!r})")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(f"{where}: unsupported checkpoint version {version}")
    metadata = bytearray(fixed)
    names: list[str] = []
    for _ in range(2):
        raw_len = read_exact(handle, _NAME_LEN.size)
        if len(raw_len) != _NAME_LEN.size:
            raise CheckpointError(f"{where}: truncated checkpoint metadata")
        (length,) = _NAME_LEN.unpack(raw_len)
        raw = read_exact(handle, length)
        if len(raw) != length:
            raise CheckpointError(f"{where}: truncated checkpoint metadata")
        metadata += raw_len + raw
        names.append(raw.decode("utf-8"))
    crc_raw = read_exact(handle, _CRC_FIELD.size)
    if len(crc_raw) != _CRC_FIELD.size:
        raise CheckpointError(f"{where}: truncated checkpoint metadata")
    (expected_crc,) = _CRC_FIELD.unpack(crc_raw)
    if zlib.crc32(bytes(metadata)) != expected_crc:
        raise CheckpointError(f"{where}: checkpoint metadata CRC32 mismatch")

    try:
        dense = load_state(handle)
    except ReproError as error:
        raise CheckpointError(f"{where}: bad checkpoint state: {error}") from error
    if dense.num_qubits != num_qubits:
        raise CheckpointError(
            f"{where}: state width {dense.num_qubits} != header width {num_qubits}"
        )
    state = ChunkedStateVector.from_dense(dense.amplitudes, chunk_bits)
    return Checkpoint(
        state=state,
        gate_cursor=cursor,
        involvement_mask=mask,
        circuit_name=names[0],
        version_name=names[1],
    )


def load_checkpoint(source: str | Path | BinaryIO) -> Checkpoint:
    """Read and verify a checkpoint written by :func:`save_checkpoint`.

    Raises:
        CheckpointError: Missing, truncated, corrupted, or wrong-format file.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        try:
            with open(path, "rb") as handle:
                return _load_from(handle, str(path))
        except OSError as error:
            raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    return _load_from(source, "<stream>")
