"""Integrity guards: per-chunk CRC32, norm conservation, guarded transfers.

Q-GPU streams every live chunk across the PCIe link on every gate, so a
single silently corrupted copy poisons the final state.  The guards here
mirror what a production out-of-core runtime does:

* :func:`chunk_crc32` / :func:`verify_chunk` - checksum a chunk's raw
  bytes at "send" and verify at "receive";
* :func:`check_norm` - assert the global invariant ||psi||_2 ~= 1 that
  every unitary circuit preserves (a cheap end-to-end corruption tripwire
  that works even when per-transfer CRC is off);
* :class:`ChunkTransferGuard` - the send/link/receive simulation the
  functional engine routes chunk buffers through, applying a
  :class:`~repro.reliability.faults.FaultPlan` on the link and a
  :class:`~repro.reliability.policy.RecoveryPolicy` on detection.
"""

from __future__ import annotations

import zlib
from contextlib import nullcontext

import numpy as np

from repro.errors import FaultInjectionError, IntegrityError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.reliability.faults import FaultEvent, FaultKind, FaultPlan
from repro.reliability.policy import DEFAULT_POLICY, RecoveryPolicy, ReliabilityReport


def chunk_crc32(array: np.ndarray) -> int:
    """CRC32 of a chunk's raw little-endian bytes."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def verify_chunk(array: np.ndarray, expected_crc: int, label: str = "chunk") -> None:
    """Raise :class:`IntegrityError` unless ``array`` matches its checksum."""
    actual = chunk_crc32(array)
    if actual != expected_crc:
        raise IntegrityError(
            f"{label}: CRC32 mismatch (expected {expected_crc:#010x}, "
            f"got {actual:#010x})"
        )


def state_norm_squared(chunks_or_amplitudes) -> float:
    """||psi||^2 of a dense vector or an iterable of chunk arrays."""
    if isinstance(chunks_or_amplitudes, np.ndarray):
        return float(np.sum(np.abs(chunks_or_amplitudes) ** 2))
    return float(
        sum(np.sum(np.abs(chunk) ** 2) for chunk in chunks_or_amplitudes)
    )


def check_norm(
    chunks_or_amplitudes, tolerance: float = 1e-6, where: str = "state"
) -> float:
    """Verify norm conservation; returns ||psi||^2 on success.

    Raises:
        IntegrityError: When |1 - ||psi||^2| exceeds ``tolerance``.
    """
    norm_sq = state_norm_squared(chunks_or_amplitudes)
    if abs(1.0 - norm_sq) > tolerance:
        raise IntegrityError(
            f"{where}: norm conservation violated (||psi||^2 = {norm_sq:.9f}, "
            f"tolerance {tolerance:g})"
        )
    return norm_sq


def _corrupt(buffer: np.ndarray, event: FaultEvent) -> np.ndarray | None:
    """Apply one link fault to a received buffer (in place); None = dropped."""
    if event.kind is FaultKind.DROP:
        return None
    raw = buffer.view(np.uint8)
    if event.kind is FaultKind.BIT_FLIP:
        bit = int(event.detail) % (raw.size * 8)
        raw[bit // 8] ^= np.uint8(1 << (bit % 8))
    elif event.kind is FaultKind.TRUNCATION:
        raw[raw.size // 2 :] = 0
    return buffer


class ChunkTransferGuard:
    """Simulated send -> link -> receive path for chunk buffers.

    Every :meth:`transfer` models one one-way chunk copy: checksum at
    send, fault injection on the link, checksum verification at receive,
    and bounded retry from the pristine source.  On success the returned
    buffer is bit-identical to the input, so recovered faults can never
    change simulation results.

    Args:
        plan: Fault plan applied on the link (None = fault-free).
        policy: Detection/recovery policy.
        compression: Whether the wire is compressed (enables codec-decode
            faults, which count toward ``policy.codec_fault_limit``).
        report: Shared report to accumulate into (a fresh one by default).
        tracer: Optional :class:`~repro.obs.Tracer`; transfers, raw bytes
            on the wire, retries, and faults by kind land in its counters,
            and each retransmission becomes a ``retry``-stage span.
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        policy: RecoveryPolicy = DEFAULT_POLICY,
        compression: bool = False,
        report: ReliabilityReport | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.plan = plan if plan is not None and plan.active else None
        self.policy = policy
        self.compression = compression
        self.report = report if report is not None else ReliabilityReport()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._counters = self.tracer.counters if self.tracer is not NULL_TRACER else None
        self._gate_index = 0
        self._transfer_in_gate = 0
        self._codec_faults = 0

    @property
    def compression_enabled(self) -> bool:
        """False once codec degradation disabled compression."""
        return (
            self.compression
            and self.report.compression_disabled_at_gate is None
        )

    def begin_gate(self, gate_index: int) -> None:
        """Anchor fault positions to the gate, so resume replays identically."""
        self._gate_index = gate_index
        self._transfer_in_gate = 0

    def _fault_for(self, attempt: int, transfer_index: int) -> FaultEvent | None:
        if self.plan is None:
            return None
        if self.compression_enabled:
            codec = self.plan.codec_fault(self._gate_index, transfer_index, attempt)
            if codec is not None:
                return codec
        return self.plan.transfer_fault(self._gate_index, transfer_index, attempt)

    def _note_codec_fault(self) -> None:
        self._codec_faults += 1
        if (
            self.report.compression_disabled_at_gate is None
            and self._codec_faults >= self.policy.codec_fault_limit
        ):
            # Graceful degradation: stop compressing, stop failing to decode.
            self.report.compression_disabled_at_gate = self._gate_index

    def transfer(self, source: np.ndarray, label: str = "") -> np.ndarray:
        """Deliver ``source`` across the guarded link; returns the copy.

        Raises:
            IntegrityError: Detected corruption under ``on_fault="raise"``.
            FaultInjectionError: Retries exhausted without a clean copy.
        """
        transfer_index = self._transfer_in_gate
        self._transfer_in_gate += 1
        self.report.transfers += 1
        counters = self._counters
        if counters is not None:
            counters.count("reliability.transfers")
        where = label or f"gate {self._gate_index} transfer {transfer_index}"

        sent_crc = chunk_crc32(source) if self.policy.verify_crc else None
        last_kind = "fault"
        for attempt in range(self.policy.max_transfer_attempts):
            if attempt:
                self.report.retries += 1
                if counters is not None:
                    counters.count("reliability.retries")
            retry_span = (
                self.tracer.span("retransmit", stage="retry", attempt=attempt)
                if attempt and self.tracer.enabled
                else nullcontext()
            )
            with retry_span:
                if counters is not None:
                    counters.add("bytes.moved_raw", source.nbytes)
                received: np.ndarray | None = source.copy()
                event = self._fault_for(attempt, transfer_index)
                if event is not None:
                    self.report.record_fault(event.kind.value)
                    last_kind = event.kind.value
                    if counters is not None:
                        counters.count(f"faults.{event.kind.value}")
                    if event.kind is FaultKind.DECODE:
                        self._note_codec_fault()
                        received = None  # undecodable payload delivers nothing
                    else:
                        received = _corrupt(received, event)

                if received is None:
                    detected = True  # missing/undecodable chunks are always seen
                elif sent_crc is not None:
                    detected = chunk_crc32(received) != sent_crc
                else:
                    detected = False  # CRC off: corruption sails through

                if not detected:
                    return received  # type: ignore[return-value]
                if self.policy.on_fault == "raise":
                    raise IntegrityError(
                        f"{where}: {last_kind} detected (CRC32 mismatch) and "
                        "policy forbids retry"
                    )
        raise FaultInjectionError(
            f"{where}: still corrupted ({last_kind}) after "
            f"{self.policy.max_transfer_attempts} attempts"
        )
