"""Cooperative cancellation for long-running simulations.

A :class:`CancellationToken` is the one object threaded from the batch
service down into :meth:`~repro.core.QGpuSimulator.run`'s gate loop.  The
worker *polls* it (cancellation is cooperative - nothing is killed
mid-kernel, so state is never torn) and *touches* it once per gate, which
doubles as the worker's heartbeat: the watchdog supervisor reads
``last_beat`` to tell a slow worker from a hung one.

Cancellation is one-shot and racy-by-design: the first ``cancel()`` call
wins and records who asked (``kind``) and why (``reason``); later calls
are no-ops that return ``False``.  That makes the user-cancel vs.
watchdog-reap race benign - exactly one outcome is ever observed.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import JobCancelled

#: Token kinds with CANCELLED (rather than FAILED) semantics downstream.
USER_KINDS = ("user", "shutdown")


class CancellationToken:
    """Cooperative cancellation flag plus worker heartbeat.

    Args:
        on_beat: Optional callback invoked on every :meth:`touch` (the
            service wires this to its metrics registry so heartbeats are
            observable).
    """

    def __init__(self, on_beat: Callable[[], None] | None = None) -> None:
        self._cancelled = threading.Event()
        self._lock = threading.Lock()
        self._on_beat = on_beat
        self.reason: str | None = None
        self.kind: str | None = None
        self.last_beat: float = time.monotonic()

    def touch(self) -> None:
        """Record a heartbeat: the worker holding this token is alive."""
        self.last_beat = time.monotonic()
        if self._on_beat is not None:
            self._on_beat()

    def cancel(self, reason: str, kind: str = "user") -> bool:
        """Request cancellation; returns True only for the winning call."""
        with self._lock:
            if self._cancelled.is_set():
                return False
            self.reason = reason
            self.kind = kind
            self._cancelled.set()
            return True

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def raise_if_cancelled(self) -> None:
        """Raise :class:`~repro.errors.JobCancelled` once cancelled.

        Raises:
            JobCancelled: Carrying the winning ``reason`` and ``kind``.
        """
        if self._cancelled.is_set():
            raise JobCancelled(
                self.reason or "cancelled", kind=self.kind or "user"
            )

    def poll(self) -> None:
        """One gate-loop check: heartbeat, then honor any cancellation."""
        self.touch()
        self.raise_if_cancelled()
