"""Seeded, deterministic fault plans for the reliability layer.

A :class:`FaultPlan` decides - purely as a function of its seed and the
*position* of an operation (gate index, transfer ordinal within the gate,
retry attempt) - whether that operation is hit by a fault and which kind.
Because every decision is a stateless hash of ``(seed, position)``, the
same plan produces the identical fault sequence no matter how many times
it is queried, in what order, or whether a run was interrupted and
resumed mid-circuit.  That property is what makes fault-injection tests
reproducible and checkpoint/resume verifiable bit-for-bit.

Fault taxonomy (see ``docs/reliability.md``):

* ``BIT_FLIP`` - a transferred chunk arrives with one bit flipped;
* ``TRUNCATION`` - a transfer delivers only a prefix, the tail reads zero;
* ``DROP`` - the transfer never arrives at all;
* ``DECODE`` - the GFC codec fails to decode a compressed chunk;
* ``LINK_DEGRADE`` - the PCIe link transiently loses bandwidth (timed
  model only - it delays but never corrupts);
* ``OOM`` - a host/device allocation fails.

Service-layer kinds (injected by the batch service's chaos harness, not
by the transfer guard):

* ``WORKER_CRASH`` - a worker thread dies mid-job with an unexpected
  error;
* ``WORKER_STALL`` - a worker hangs (stops heartbeating) until the
  watchdog reaps it;
* ``JOURNAL_TORN_WRITE`` - a journal append is truncated mid-line, as a
  process crash between ``write`` and ``flush`` would leave it;
* ``CACHE_CORRUPT`` - a result-cache entry is corrupted at rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import FaultInjectionError

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


class FaultKind(str, Enum):
    """The kinds of fault a plan can inject."""

    BIT_FLIP = "bit_flip"
    TRUNCATION = "truncation"
    DROP = "drop"
    DECODE = "decode"
    LINK_DEGRADE = "link_degrade"
    OOM = "oom"
    WORKER_CRASH = "worker_crash"
    WORKER_STALL = "worker_stall"
    JOURNAL_TORN_WRITE = "journal_torn_write"
    CACHE_CORRUPT = "cache_corrupt"


#: Conditional kind split for a transfer fault: mostly silent corruption
#: (the dangerous case CRC exists for), some truncations and full drops.
_TRANSFER_KIND_WEIGHTS = (
    (FaultKind.BIT_FLIP, 0.6),
    (FaultKind.TRUNCATION, 0.2),
    (FaultKind.DROP, 0.2),
)


@dataclass(frozen=True)
class FaultEvent:
    """One concrete injected (or forced) fault.

    Attributes:
        kind: What went wrong.
        gate_index: Gate (op) during which the fault fires.
        transfer_index: Transfer ordinal within the gate (0 for per-gate
            faults such as link degradation).
        attempt: Which delivery attempt is hit (0 = first try).
        detail: Kind-specific payload - bit position for flips, slowdown
            factor for link degradation.
    """

    kind: FaultKind
    gate_index: int
    transfer_index: int = 0
    attempt: int = 0
    detail: float = 0.0


def _fnv(*parts: int) -> int:
    """Stateless 64-bit FNV-1a hash of a tuple of non-negative ints."""
    h = _FNV_OFFSET
    for part in parts:
        for byte in int(part).to_bytes(8, "little"):
            h ^= byte
            h = (h * _FNV_PRIME) & _MASK64
    return h


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Rates are per-opportunity probabilities: ``transfer_rate`` applies to
    every (gate, transfer, attempt) triple, ``codec_rate`` to every
    compressed transfer receive, ``degrade_rate`` to every gate.
    ``oom_failures`` fails the first that many allocation attempts
    outright (deterministic, for exercising degradation paths).

    Attributes:
        seed: Root of every hash decision.
        transfer_rate: P(bit-flip/truncation/drop) per transfer attempt.
        codec_rate: P(GFC decode failure) per compressed receive.
        degrade_rate: P(transient link degradation) per gate.
        oom_failures: Number of leading allocation attempts that fail.
        worker_crash_rate: P(worker dies mid-job) per (job, attempt).
        worker_stall_rate: P(worker hangs mid-job) per (job, attempt).
        journal_torn_rate: P(journal append torn) per append ordinal.
        cache_corrupt_rate: P(cache entry corrupted) per cache put.
        forced: Extra faults injected unconditionally at their positions.
    """

    seed: int = 0
    transfer_rate: float = 0.0
    codec_rate: float = 0.0
    degrade_rate: float = 0.0
    oom_failures: int = 0
    worker_crash_rate: float = 0.0
    worker_stall_rate: float = 0.0
    journal_torn_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    forced: tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        for name in (
            "transfer_rate",
            "codec_rate",
            "degrade_rate",
            "worker_crash_rate",
            "worker_stall_rate",
            "journal_torn_rate",
            "cache_corrupt_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(f"{name} must be in [0, 1], got {rate}")
        if self.oom_failures < 0:
            raise FaultInjectionError(
                f"oom_failures must be >= 0, got {self.oom_failures}"
            )

    # -- hashing ----------------------------------------------------------

    def _uniform(self, *parts: int) -> float:
        """Deterministic uniform draw in [0, 1) for one decision point."""
        return _fnv(self.seed, *parts) / 2.0**64

    # -- queries ----------------------------------------------------------

    def transfer_fault(
        self, gate_index: int, transfer_index: int, attempt: int
    ) -> FaultEvent | None:
        """The fault (if any) hitting one chunk-transfer attempt."""
        for event in self.forced:
            if (
                event.kind in (FaultKind.BIT_FLIP, FaultKind.TRUNCATION, FaultKind.DROP)
                and event.gate_index == gate_index
                and event.transfer_index == transfer_index
                and event.attempt == attempt
            ):
                return event
        if self._uniform(1, gate_index, transfer_index, attempt) >= self.transfer_rate:
            return None
        pick = self._uniform(2, gate_index, transfer_index, attempt)
        cumulative = 0.0
        kind = _TRANSFER_KIND_WEIGHTS[-1][0]
        for candidate, weight in _TRANSFER_KIND_WEIGHTS:
            cumulative += weight
            if pick < cumulative:
                kind = candidate
                break
        detail = float(_fnv(self.seed, 3, gate_index, transfer_index, attempt) % 64)
        return FaultEvent(kind, gate_index, transfer_index, attempt, detail)

    def codec_fault(
        self, gate_index: int, transfer_index: int, attempt: int
    ) -> FaultEvent | None:
        """The decode failure (if any) hitting one compressed receive."""
        for event in self.forced:
            if (
                event.kind is FaultKind.DECODE
                and event.gate_index == gate_index
                and event.transfer_index == transfer_index
                and event.attempt == attempt
            ):
                return event
        if self._uniform(4, gate_index, transfer_index, attempt) >= self.codec_rate:
            return None
        return FaultEvent(FaultKind.DECODE, gate_index, transfer_index, attempt)

    def link_degradation(self, gate_index: int) -> float:
        """Link slowdown factor for one gate (1.0 = healthy link)."""
        for event in self.forced:
            if event.kind is FaultKind.LINK_DEGRADE and event.gate_index == gate_index:
                return max(1.0, event.detail)
        if self._uniform(5, gate_index) >= self.degrade_rate:
            return 1.0
        # Transient contention: 2x-8x slower, hash-derived so it replays.
        return 2.0 * (1.0 + 3.0 * self._uniform(6, gate_index))

    def oom_fault(self, alloc_index: int) -> bool:
        """True when allocation attempt ``alloc_index`` fails."""
        if any(
            e.kind is FaultKind.OOM and e.gate_index == alloc_index for e in self.forced
        ):
            return True
        return alloc_index < self.oom_failures

    # -- service-layer queries (chaos harness) -----------------------------

    def _forced_at(self, kind: FaultKind, gate_index: int, attempt: int = 0) -> bool:
        return any(
            e.kind is kind and e.gate_index == gate_index and e.attempt == attempt
            for e in self.forced
        )

    def worker_crash(self, job_seq: int, attempt: int) -> bool:
        """True when this (job, attempt) execution dies mid-run."""
        if self._forced_at(FaultKind.WORKER_CRASH, job_seq, attempt):
            return True
        return self._uniform(7, job_seq, attempt) < self.worker_crash_rate

    def worker_stall(self, job_seq: int, attempt: int) -> bool:
        """True when this (job, attempt) execution hangs until reaped."""
        if self._forced_at(FaultKind.WORKER_STALL, job_seq, attempt):
            return True
        return self._uniform(8, job_seq, attempt) < self.worker_stall_rate

    def journal_torn_write(self, append_ordinal: int) -> bool:
        """True when journal append ``append_ordinal`` is torn mid-line."""
        if self._forced_at(FaultKind.JOURNAL_TORN_WRITE, append_ordinal):
            return True
        return self._uniform(9, append_ordinal) < self.journal_torn_rate

    def cache_corrupt(self, put_index: int) -> bool:
        """True when the ``put_index``-th cache store is corrupted at rest."""
        if self._forced_at(FaultKind.CACHE_CORRUPT, put_index):
            return True
        return self._uniform(10, put_index) < self.cache_corrupt_rate

    @property
    def active(self) -> bool:
        """True when this plan can ever inject anything."""
        return bool(
            self.transfer_rate
            or self.codec_rate
            or self.degrade_rate
            or self.oom_failures
            or self.worker_crash_rate
            or self.worker_stall_rate
            or self.journal_torn_rate
            or self.cache_corrupt_rate
            or self.forced
        )

    @property
    def service_active(self) -> bool:
        """True when this plan injects faults at the service layer."""
        service_kinds = (
            FaultKind.WORKER_CRASH,
            FaultKind.WORKER_STALL,
            FaultKind.JOURNAL_TORN_WRITE,
            FaultKind.CACHE_CORRUPT,
        )
        return bool(
            self.worker_crash_rate
            or self.worker_stall_rate
            or self.journal_torn_rate
            or self.cache_corrupt_rate
            or any(e.kind in service_kinds for e in self.forced)
        )

    # -- spec parsing ------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value`` spec, e.g. ``seed=7,transfer=0.05,oom=1``.

        Keys: ``seed`` (int), ``transfer`` / ``codec`` / ``degrade``
        (float rates), ``oom`` (int, leading allocation failures), and
        the service-layer rates ``crash`` / ``stall`` / ``torn`` /
        ``cachecorrupt`` (floats).
        """
        kwargs: dict[str, float | int] = {}
        names = {
            "seed": ("seed", int),
            "transfer": ("transfer_rate", float),
            "codec": ("codec_rate", float),
            "degrade": ("degrade_rate", float),
            "oom": ("oom_failures", int),
            "crash": ("worker_crash_rate", float),
            "stall": ("worker_stall_rate", float),
            "torn": ("journal_torn_rate", float),
            "cachecorrupt": ("cache_corrupt_rate", float),
        }
        for clause in filter(None, (c.strip() for c in spec.split(","))):
            key, _, value = clause.partition("=")
            if key not in names or not value:
                raise FaultInjectionError(
                    f"bad fault-plan clause {clause!r}; keys: {sorted(names)}"
                )
            attr, cast = names[key]
            try:
                kwargs[attr] = cast(value)
            except ValueError as error:
                raise FaultInjectionError(
                    f"bad fault-plan value in {clause!r}: {error}"
                ) from error
        return cls(**kwargs)

    def to_spec(self) -> str:
        """Inverse of :meth:`from_spec` (forced events are not spellable).

        Service-layer keys are emitted only when nonzero so specs written
        by older builds of this library parse identically.
        """
        spec = (
            f"seed={self.seed},transfer={self.transfer_rate},"
            f"codec={self.codec_rate},degrade={self.degrade_rate},"
            f"oom={self.oom_failures}"
        )
        extras = (
            ("crash", self.worker_crash_rate),
            ("stall", self.worker_stall_rate),
            ("torn", self.journal_torn_rate),
            ("cachecorrupt", self.cache_corrupt_rate),
        )
        for key, rate in extras:
            if rate:
                spec += f",{key}={rate}"
        return spec

    def describe(self) -> str:
        parts = [f"seed {self.seed}"]
        if self.transfer_rate:
            parts.append(f"transfer faults {self.transfer_rate:.1%}")
        if self.codec_rate:
            parts.append(f"codec faults {self.codec_rate:.1%}")
        if self.degrade_rate:
            parts.append(f"link degradation {self.degrade_rate:.1%}")
        if self.oom_failures:
            parts.append(f"{self.oom_failures} OOM alloc failure(s)")
        if self.worker_crash_rate:
            parts.append(f"worker crashes {self.worker_crash_rate:.1%}")
        if self.worker_stall_rate:
            parts.append(f"worker stalls {self.worker_stall_rate:.1%}")
        if self.journal_torn_rate:
            parts.append(f"torn journal writes {self.journal_torn_rate:.1%}")
        if self.cache_corrupt_rate:
            parts.append(f"cache corruption {self.cache_corrupt_rate:.1%}")
        if self.forced:
            parts.append(f"{len(self.forced)} forced event(s)")
        return ", ".join(parts) if len(parts) > 1 else f"seed {self.seed} (no faults)"
