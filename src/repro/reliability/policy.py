"""Recovery policies and the per-run reliability report.

A :class:`RecoveryPolicy` says what the engine does when a guard detects
a fault: how many delivery attempts a transfer gets, how retry backoff
grows, whether detection raises immediately, when the norm invariant is
checked, and which graceful degradations are allowed (disable
compression after repeated codec faults, halve the chunk size after
OOM).  A :class:`ReliabilityReport` accumulates what actually happened
so callers - and the CLI - can see the overhead reliability cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultInjectionError


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs governing fault detection and recovery.

    Attributes:
        max_transfer_attempts: Delivery attempts per chunk transfer
            (1 = no retry; detection raises).
        backoff_base: Seconds charged for the first retry wait in the
            timed model.
        backoff_factor: Multiplier applied per further retry (exponential
            backoff).
        on_fault: ``"retry"`` recovers within the attempt budget;
            ``"raise"`` turns the first detected fault into a typed error.
        verify_crc: Compute/verify per-chunk CRC32 at send/receive.  With
            this off, corruption lands in the state (the norm guard is
            then the only line of defence).
        norm_check_every: Check norm conservation every N gate layers
            (0 disables the check).
        norm_tolerance: Allowed |1 - ||psi||^2| drift.
        codec_fault_limit: After this many GFC decode faults, disable
            compression for the rest of the run (graceful degradation).
        halve_chunk_on_oom: Retry a failed allocation with half the chunk
            size instead of aborting.
        max_alloc_attempts: Allocation attempts before giving up.
    """

    max_transfer_attempts: int = 4
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    on_fault: str = "retry"
    verify_crc: bool = True
    norm_check_every: int = 0
    norm_tolerance: float = 1e-6
    codec_fault_limit: int = 3
    halve_chunk_on_oom: bool = True
    max_alloc_attempts: int = 4

    def __post_init__(self) -> None:
        if self.max_transfer_attempts < 1:
            raise FaultInjectionError(
                f"max_transfer_attempts must be >= 1, got {self.max_transfer_attempts}"
            )
        if self.on_fault not in ("retry", "raise"):
            raise FaultInjectionError(
                f"on_fault must be 'retry' or 'raise', got {self.on_fault!r}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise FaultInjectionError("backoff must be non-negative and non-shrinking")

    def backoff_seconds(self, retry_number: int) -> float:
        """Wait charged before retry ``retry_number`` (1-based)."""
        return self.backoff_base * self.backoff_factor ** (retry_number - 1)


#: Default: detect and recover.
DEFAULT_POLICY = RecoveryPolicy()
#: Fail fast: any detected fault raises immediately.
STRICT_POLICY = RecoveryPolicy(max_transfer_attempts=1, on_fault="raise")


@dataclass
class ReliabilityReport:
    """What the reliability layer observed and did during one run.

    Attributes:
        transfers: Guarded chunk transfers performed.
        faults: Injected-fault counts keyed by kind name.
        retries: Extra delivery attempts spent recovering.
        checkpoints_written: Checkpoint files written.
        resumed_from_gate: Gate cursor the run resumed at (None = fresh).
        compression_disabled_at_gate: Gate index where codec degradation
            kicked in (None = never).
        degraded_chunk_bits: Final chunk size after OOM degradation
            (None = never degraded).
    """

    transfers: int = 0
    faults: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    checkpoints_written: int = 0
    resumed_from_gate: int | None = None
    compression_disabled_at_gate: int | None = None
    degraded_chunk_bits: int | None = None

    def record_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    def summary(self) -> str:
        """One human-readable paragraph for CLI output."""
        lines = [
            f"transfers guarded     : {self.transfers}",
            f"faults injected       : {self.total_faults}"
            + (f"  ({', '.join(f'{k}={v}' for k, v in sorted(self.faults.items()))})"
               if self.faults else ""),
            f"retries spent         : {self.retries}",
            f"checkpoints written   : {self.checkpoints_written}",
        ]
        if self.resumed_from_gate is not None:
            lines.append(f"resumed from gate     : {self.resumed_from_gate}")
        if self.compression_disabled_at_gate is not None:
            lines.append(
                f"compression disabled  : at gate {self.compression_disabled_at_gate}"
            )
        if self.degraded_chunk_bits is not None:
            lines.append(
                f"chunk size degraded   : to 2^{self.degraded_chunk_bits} amplitudes"
            )
        return "\n".join(lines)
