"""Reliability layer: fault injection, integrity guards, checkpoint/resume.

Out-of-core simulation is a distributed-systems problem: every amplitude
crosses the PCIe link many times, and multi-hour runs must survive
transient faults.  This package provides the substrate:

* :mod:`repro.reliability.cancellation` - cooperative cancellation
  tokens doubling as worker heartbeats;
* :mod:`repro.reliability.faults` - seeded, deterministic fault plans;
* :mod:`repro.reliability.integrity` - CRC32 transfer guards and the
  norm-conservation invariant;
* :mod:`repro.reliability.checkpoint` - atomic, CRC-guarded mid-circuit
  checkpoints with bit-exact resume;
* :mod:`repro.reliability.policy` - retry/backoff/degradation policies
  and the per-run reliability report.

See ``docs/reliability.md`` for the fault taxonomy and worked examples.
"""

from repro.reliability.cancellation import USER_KINDS, CancellationToken
from repro.reliability.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.reliability.faults import FaultEvent, FaultKind, FaultPlan
from repro.reliability.integrity import (
    ChunkTransferGuard,
    check_norm,
    chunk_crc32,
    state_norm_squared,
    verify_chunk,
)
from repro.reliability.policy import (
    DEFAULT_POLICY,
    STRICT_POLICY,
    RecoveryPolicy,
    ReliabilityReport,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CancellationToken",
    "Checkpoint",
    "ChunkTransferGuard",
    "DEFAULT_POLICY",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "RecoveryPolicy",
    "ReliabilityReport",
    "STRICT_POLICY",
    "USER_KINDS",
    "check_norm",
    "chunk_crc32",
    "load_checkpoint",
    "save_checkpoint",
    "state_norm_squared",
    "verify_chunk",
]
