"""Adaptive precision: the complex64 fast path and its norm guard.

The dense chunked engine can run in complex64 - half the memory traffic,
which is most of the runtime for the bandwidth-bound kernels - but
single-precision rounding accumulates with circuit depth.  The guard is
the same invariant the reliability layer already checks: a unitary
circuit conserves the 2-norm, so after a single-precision run the
deviation ``|1 - sum |amp|^2|`` (accumulated in float64) bounds how much
rounding the run picked up.  If it exceeds the documented bound the
simulator deterministically re-runs in complex128 - same circuit, same
seed, no partial reuse - and counts ``planner.fallbacks``.

The norm deviation is a *proxy* bound, not a rigorous amplitude-wise
error bound: a norm-preserving rotation of the error is invisible to it.
Empirically (see ``docs/planner.md``) deviation and max amplitude error
track each other within ~two orders of magnitude on the paper's
families, which is why the default bound is set three orders below
nothing-to-worry-about rather than at the edge.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError

#: Norm-deviation ceiling for accepting a complex64 run.  complex64 has
#: ~7.2 significant digits; thousands of accumulated gate applications
#: typically land the deviation around 1e-6..1e-5, so 1e-4 flags only
#: genuinely degraded runs while never triggering on healthy ones.
DEFAULT_NORM_BOUND = 1e-4

#: Precision name -> numpy complex dtype.
PRECISION_DTYPES: dict[str, type] = {
    "single": np.complex64,
    "double": np.complex128,
}


def resolve_dtype(precision: str) -> type:
    """Map a resolved precision name to its numpy dtype.

    Raises:
        AnalysisError: On anything but ``"single"`` / ``"double"``
            (``"auto"`` must be resolved by the planner first).
    """
    try:
        return PRECISION_DTYPES[precision]
    except KeyError:
        raise AnalysisError(
            f"unknown precision {precision!r} "
            f"(choose from {sorted(PRECISION_DTYPES)})"
        ) from None


def precision_of(dtype: object) -> str:
    """Inverse of :func:`resolve_dtype` for the two supported dtypes."""
    kind = np.dtype(dtype)
    if kind == np.complex64:
        return "single"
    if kind == np.complex128:
        return "double"
    raise AnalysisError(f"unsupported state dtype {kind}")


def norm_deviation(amplitudes: np.ndarray) -> float:
    """``|1 - sum |amp|^2|`` with the accumulation done in float64.

    Accumulating in the state's own precision would hide exactly the
    rounding this guard exists to surface, so real and imaginary parts
    are widened before squaring regardless of input dtype.
    """
    real = amplitudes.real.astype(np.float64, copy=False)
    imag = amplitudes.imag.astype(np.float64, copy=False)
    total = float(np.sum(real * real) + np.sum(imag * imag))
    return abs(1.0 - total)
