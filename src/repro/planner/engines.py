"""Uniform execution wrapper for the non-dense backends.

The dense chunked engine stays where it always was (inside
:class:`~repro.core.simulator.QGpuSimulator`); this module gives the
planner's other three choices - tableau, hash-map, MPS - one result
surface so the simulator, the batch service, and the CLI can treat a
routed run uniformly: deterministic sampling with a seed, a stable
content digest for result caching, and a dense view where the
representation supports one.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import AnalysisError, SimulationError
from repro.mps.state import MpsState, simulate_mps
from repro.sparse.state import SparseState, simulate_sparse
from repro.stabilizer import StabilizerState, simulate_clifford

#: Widest register the wrappers will densify (matches the engines' own
#: ``to_dense`` guards).
DENSE_VIEW_LIMIT = 24


@dataclass
class BackendExecution:
    """A finished run on one of the non-dense backends.

    Attributes:
        backend: ``"stabilizer"``, ``"sparse"`` or ``"mps"``.
        num_qubits: Register width.
        state: The engine's native final state.
        truncation_error: Accumulated MPS truncation error (0.0 for the
            exact backends).
    """

    backend: str
    num_qubits: int
    state: Any = field(repr=False)
    truncation_error: float = 0.0

    def to_dense(self) -> np.ndarray:
        """The full ``2^n`` complex128 vector, where representable.

        Raises:
            SimulationError: For the stabilizer backend (a tableau has no
                amplitude view) or a register too wide to densify.
        """
        if self.backend == "stabilizer":
            raise SimulationError(
                "stabilizer tableau stores generators, not amplitudes; "
                "sample counts or Z expectations instead"
            )
        return self.state.to_dense()

    def sample_counts(self, shots: int, seed: int = 0) -> dict[int, int]:
        """Seed-deterministic measurement counts (basis index -> count)."""
        if shots <= 0:
            raise SimulationError(f"shots must be positive, got {shots}")
        rng = np.random.default_rng(seed)
        if self.backend == "stabilizer":
            counts: dict[int, int] = {}
            for _ in range(shots):
                outcome = self.state.copy().measure_all(rng)
                counts[outcome] = counts.get(outcome, 0) + 1
            return counts
        if self.backend == "sparse":
            indices = sorted(self.state.amplitudes)
            probs = np.array(
                [abs(self.state.amplitudes[i]) ** 2 for i in indices]
            )
            total = probs.sum()
            if not np.isclose(total, 1.0, atol=1e-6):
                raise SimulationError(
                    f"state is not normalised (sum p = {total:.6f})"
                )
            drawn = rng.choice(len(indices), size=shots, p=probs / total)
            values, tallies = np.unique(drawn, return_counts=True)
            return {
                int(indices[v]): int(c) for v, c in zip(values, tallies)
            }
        return self.state.sample(shots, rng)

    def digest(self) -> str:
        """Stable sha256 over the native final state.

        Plays the role the dense path's ``sha256(amplitudes)`` plays in
        job results: two runs of the same circuit on the same backend
        produce the same digest.
        """
        h = hashlib.sha256()
        h.update(self.backend.encode())
        h.update(struct.pack("<q", self.num_qubits))
        if self.backend == "stabilizer":
            h.update(np.ascontiguousarray(self.state.x).tobytes())
            h.update(np.ascontiguousarray(self.state.z).tobytes())
            h.update(np.ascontiguousarray(self.state.r).tobytes())
        elif self.backend == "sparse":
            for index in sorted(self.state.amplitudes):
                h.update(struct.pack("<q", index))
                h.update(np.complex128(self.state.amplitudes[index]).tobytes())
        else:
            for tensor in self.state.tensors:
                h.update(struct.pack("<qqq", *tensor.shape))
                h.update(np.ascontiguousarray(tensor).tobytes())
        return h.hexdigest()

    def expectation_z(self, qubit: int) -> float:
        """Pauli-Z expectation on ``qubit`` via the native representation."""
        if self.backend == "stabilizer":
            return self.state.expectation_z(qubit)
        if self.backend == "mps":
            return self.state.expectation_pauli({qubit: "Z"})
        total = 0.0
        for index, amplitude in self.state.amplitudes.items():
            sign = -1.0 if index >> qubit & 1 else 1.0
            total += sign * abs(amplitude) ** 2
        return total


def run_backend(
    circuit: QuantumCircuit,
    backend: str,
    *,
    max_bond: int | None = 64,
    cutoff: float = 1e-12,
) -> BackendExecution:
    """Execute ``circuit`` on one non-dense backend.

    Raises:
        AnalysisError: For the dense backend (owned by
            :class:`~repro.core.simulator.QGpuSimulator`) or an unknown
            name.
        SimulationError: From the engine itself (e.g. non-Clifford gates
            routed to the tableau).
    """
    if backend == "stabilizer":
        state: StabilizerState = simulate_clifford(circuit)
        return BackendExecution("stabilizer", circuit.num_qubits, state)
    if backend == "sparse":
        sparse: SparseState = simulate_sparse(circuit)
        return BackendExecution("sparse", circuit.num_qubits, sparse)
    if backend == "mps":
        mps: MpsState = simulate_mps(circuit, max_bond=max_bond, cutoff=cutoff)
        return BackendExecution(
            "mps", circuit.num_qubits, mps,
            truncation_error=mps.truncation_error,
        )
    if backend == "statevector":
        raise AnalysisError(
            "the dense chunked engine runs through QGpuSimulator, "
            "not run_backend"
        )
    raise AnalysisError(f"unknown backend {backend!r}")
