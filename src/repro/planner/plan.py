"""Backend/precision selection: ``plan(circuit, config) -> BackendPlan``.

The planner glues the static features (:mod:`repro.planner.features`) to
the per-backend prices (:mod:`repro.planner.costs`) and picks the
cheapest *feasible, exact* backend, falling back to an approximate MPS
run only when nothing exact fits the machine.  Selection is fully
deterministic: same circuit + same :class:`PlannerConfig` always yields
the same :class:`BackendPlan`, including byte-identical rationale text -
the batch service journals plans and replays must agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.errors import AnalysisError
from repro.hardware.specs import MachineSpec, PAPER_MACHINE
from repro.planner.costs import (
    BACKENDS,
    BackendCost,
    all_backend_costs,
    backend_cost,
)
from repro.planner.features import CircuitFeatures, analyze_circuit
from repro.statevector.parallel import AUTO_PARALLEL_THRESHOLD, MAX_AUTO_WORKERS

#: Valid values for the backend knob ("auto" resolves via the planner).
BACKEND_CHOICES: tuple[str, ...] = ("auto",) + BACKENDS

#: Valid values for the precision knob.
PRECISION_CHOICES: tuple[str, ...] = ("auto", "single", "double")

#: ``precision="auto"`` picks the complex64 fast path for dense runs up
#: to this many gates; beyond it rounding accumulation makes the
#: norm-guard fallback likely enough that double is the better bet.
SINGLE_PRECISION_GATE_LIMIT = 4096


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs for :func:`plan`.

    Attributes:
        machine: Hardware model used for feasibility and memory limits.
        backend: ``"auto"`` or a forced backend name.
        precision: ``"auto"``, ``"single"`` or ``"double"``.  ``single``
            is the dense engine's complex64 fast path; requesting it
            restricts auto-selection to the statevector backend.
        max_bond: MPS bond cap the plan prices (and an MPS run uses).
        allow_approximate: Let auto-selection pick an approximate
            (bond-truncating) MPS run even when exact backends are
            feasible, if it prices cheaper.
        backends: Candidate pool, in deterministic tie-break order.
        single_gate_limit: Gate-count ceiling for the ``auto`` -> single
            precision decision.
    """

    machine: MachineSpec = PAPER_MACHINE
    backend: str = "auto"
    precision: str = "auto"
    max_bond: int = 64
    allow_approximate: bool = False
    backends: tuple[str, ...] = BACKENDS
    single_gate_limit: int = SINGLE_PRECISION_GATE_LIMIT


DEFAULT_CONFIG = PlannerConfig()


@dataclass(frozen=True)
class BackendPlan:
    """The planner's decision for one circuit on one machine.

    Attributes:
        circuit_name: Name of the planned circuit.
        machine_name: Name of the machine the plan priced against.
        num_qubits: Register width.
        backend: Chosen backend (one of :data:`~repro.planner.costs.BACKENDS`).
        precision: Resolved numeric precision (``single`` / ``double``).
        workers: Recommended dense worker count (1 for non-dense
            backends and for states below the parallel threshold).
        estimated_seconds: Modelled cost of the chosen backend at the
            resolved precision.
        estimated_bytes: Modelled peak resident bytes of the chosen
            backend.
        approximate: The chosen run may truncate (MPS over its cap).
        rationale: Stable human-readable justification.
        costs: Every candidate's price, in candidate order.
        features: The static features the decision was made from.
    """

    circuit_name: str
    machine_name: str
    num_qubits: int
    backend: str
    precision: str
    workers: int
    estimated_seconds: float
    estimated_bytes: float
    approximate: bool
    rationale: str
    costs: tuple[BackendCost, ...] = field(repr=False)
    features: CircuitFeatures = field(repr=False)

    def cost_for(self, backend: str) -> BackendCost:
        """Return the priced entry for ``backend``.

        Raises:
            AnalysisError: If the backend was not in the candidate pool.
        """
        for cost in self.costs:
            if cost.backend == backend:
                return cost
        raise AnalysisError(f"backend {backend!r} was not priced in this plan")

    def render(self) -> str:
        """Multi-line human-readable report (deterministic text)."""
        f = self.features
        lines = [
            f"plan for {self.circuit_name} on {self.machine_name}:",
            f"  qubits {self.num_qubits}  gates {f.num_gates}  "
            f"depth {f.depth}  clifford {f.clifford_fraction:.0%}  "
            f"support bound {f.support_bound_final}  "
            f"probe peak {f.probe_support_peak}"
            f"{'' if f.probe_completed else ' (aborted)'}  "
            f"bond proxy {f.bond_estimate}",
            f"  {'backend':<12} {'feasible':<9} {'est seconds':>12} "
            f"{'est memory':>12}  note",
        ]
        for cost in self.costs:
            seconds = "-" if not cost.feasible else f"{cost.seconds:.6g}"
            note = cost.reason
            if cost.approximate and cost.feasible:
                note = f"approximate: {note}" if note else "approximate"
            lines.append(
                f"  {cost.backend:<12} {'yes' if cost.feasible else 'no':<9} "
                f"{seconds:>12} {_format_bytes(cost.memory_bytes):>12}  {note}"
            )
        lines.append(
            f"  -> chosen: {self.backend}, precision {self.precision}, "
            f"workers {self.workers}"
        )
        lines.append(f"  rationale: {self.rationale}")
        return "\n".join(lines)


def _format_bytes(value: float) -> str:
    if value >= 1 << 30:
        return f"{value / (1 << 30):.1f}GiB"
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f}MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f}KiB"
    return f"{int(value)}B"


def _resolve_precision(backend: str, config: PlannerConfig, num_gates: int) -> str:
    if config.precision == "double":
        return "double"
    if config.precision == "single":
        return "single"
    # "auto": the complex64 fast path only exists on the dense engine and
    # pays off while accumulated rounding stays inside the norm guard.
    if backend == "statevector" and num_gates <= config.single_gate_limit:
        return "single"
    return "double"


def _selection_rationale(
    chosen: BackendCost,
    pool: list[BackendCost],
    features: CircuitFeatures,
    forced: bool,
) -> str:
    if forced:
        return f"backend {chosen.backend} forced by config"
    structure = ""
    if chosen.backend == "stabilizer":
        structure = (
            f"all {features.num_gates} gates are Clifford, so tableau "
            f"simulation is polynomial in n; "
        )
    elif chosen.backend == "sparse":
        structure = (
            f"support probe completed with peak support "
            f"{features.probe_support_peak} of "
            f"{1 << features.num_qubits} amplitudes; "
        )
    elif chosen.backend == "mps":
        structure = (
            f"entanglement proxy stays at bond {features.bond_estimate} "
            f"under cap {features.bond_cap}; "
        )
    others = [c for c in pool if c.backend != chosen.backend]
    if others:
        runner = min(others, key=lambda c: c.seconds)
        comparison = (
            f"cheapest of {len(pool)} feasible backends "
            f"(est {chosen.seconds:.3g}s vs {runner.backend} "
            f"{runner.seconds:.3g}s)"
        )
    else:
        comparison = "the only feasible backend"
    return f"{structure}{comparison}"


def plan(
    circuit: QuantumCircuit, config: PlannerConfig = DEFAULT_CONFIG
) -> BackendPlan:
    """Choose a backend and precision for ``circuit`` under ``config``.

    Deterministic: same circuit + config produce an equal plan with
    byte-identical rationale.

    Raises:
        AnalysisError: On invalid knobs, a forced backend that cannot run
            the circuit, or a circuit no candidate backend can execute.
    """
    if config.backend not in BACKEND_CHOICES:
        raise AnalysisError(
            f"unknown backend {config.backend!r} "
            f"(choose from {sorted(BACKEND_CHOICES)})"
        )
    if config.precision not in PRECISION_CHOICES:
        raise AnalysisError(
            f"unknown precision {config.precision!r} "
            f"(choose from {sorted(PRECISION_CHOICES)})"
        )
    features = analyze_circuit(circuit, bond_cap=config.max_bond)
    costs = all_backend_costs(
        features, config.machine, "double", config.backends
    )

    forced = config.backend != "auto"
    if forced:
        chosen = next((c for c in costs if c.backend == config.backend), None)
        if chosen is None:
            chosen = backend_cost(
                features, config.backend, config.machine, "double"
            )
            costs = costs + (chosen,)
        if not chosen.feasible:
            raise AnalysisError(
                f"backend {config.backend!r} cannot run "
                f"{circuit.name}: {chosen.reason}"
            )
        pool = [chosen]
    else:
        candidates = [c for c in costs if c.feasible]
        if config.precision == "single":
            # The complex64 fast path is dense-only; an explicit single
            # request is a constraint on the backend choice.
            candidates = [c for c in candidates if c.backend == "statevector"]
        pool = [c for c in candidates if not c.approximate]
        if config.allow_approximate:
            pool = candidates
        if not pool:
            # Nothing exact fits; an approximate MPS run beats no answer.
            pool = candidates
        if not pool:
            reasons = "; ".join(
                f"{c.backend}: {c.reason}" for c in costs if not c.feasible
            )
            raise AnalysisError(
                f"no backend can execute {circuit.name} on "
                f"{config.machine.name} ({reasons})"
            )
        chosen = min(pool, key=lambda c: c.seconds)

    precision = _resolve_precision(chosen.backend, config, features.num_gates)
    if precision == "single" and chosen.backend != "statevector":
        raise AnalysisError(
            "single precision is the dense engine's complex64 fast path; "
            f"backend {chosen.backend!r} runs double only"
        )
    if precision == "single":
        chosen = backend_cost(
            features, "statevector", config.machine, "single"
        )

    workers = 1
    if (
        chosen.backend == "statevector"
        and (1 << features.num_qubits) >= AUTO_PARALLEL_THRESHOLD
    ):
        workers = MAX_AUTO_WORKERS

    rationale = _selection_rationale(chosen, pool, features, forced)
    if precision == "single":
        rationale += "; complex64 fast path, norm-guarded"
    if chosen.approximate:
        rationale += f"; approximate ({chosen.reason})"

    return BackendPlan(
        circuit_name=circuit.name,
        machine_name=config.machine.name,
        num_qubits=features.num_qubits,
        backend=chosen.backend,
        precision=precision,
        workers=workers,
        estimated_seconds=chosen.seconds,
        estimated_bytes=chosen.memory_bytes,
        approximate=chosen.approximate,
        rationale=rationale,
        costs=costs,
        features=features,
    )
