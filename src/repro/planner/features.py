"""Static circuit analysis: the cheap features the backend planner prices.

Everything here is computed from the circuit *description* alone - no
amplitudes are ever materialised beyond the bounded sparse probe - so
analysis cost is polynomial in gate count and the resulting
:class:`CircuitFeatures` are deterministic: the same circuit always yields
the same features, which is what makes planning reproducible.

Feature groups (see ``docs/planner.md`` for the full definitions):

* **Size/shape**: qubit count, gate count, depth, diagonal fraction.
* **Clifford structure**: exact membership via
  :func:`repro.stabilizer.is_clifford_circuit` plus the Clifford gate
  fraction (how far from the tableau engine a mixed circuit is).
* **Support**: the *structural* bound from the paper's involvement
  analysis (Algorithm 1's ``2^involved`` window) and a *bounded sparse
  probe* - the circuit prefix is run on the hash-map engine until either
  it completes or the support exceeds a ceiling, giving the exact
  support trace for support-sparse workloads (W states, GHZ ladders)
  that the structural bound cannot see through amplitude cancellation.
* **Entanglement**: a per-cut bond-growth proxy for the MPS engine (every
  multi-qubit gate can at most double the Schmidt rank across each cut it
  spans) and two-qubit-gate locality, which prices the swap routing
  non-adjacent gates need on the chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.core.involvement import InvolvementTracker
from repro.errors import AnalysisError
from repro.sparse.state import SparseState
from repro.stabilizer import CLIFFORD_GATES, is_clifford_circuit

#: Support ceiling for the bounded sparse probe: the probe aborts the
#: moment the exact support exceeds this many basis states, so its cost
#: is O(gates * ceiling) dictionary operations whatever the circuit.
PROBE_SUPPORT_CEILING = 4096

#: Gate ceiling for the bounded sparse probe (very deep circuits fall
#: back to the structural bound beyond this prefix).
PROBE_GATE_CEILING = 2048

#: Work ceiling for the bounded sparse probe: total entry-updates
#: (``sum(support * 2^k)`` over probed gates) before it gives up.  The
#: support and gate ceilings alone admit a ~``4096 * 2048``-update worst
#: case (support pinned just under the ceiling for the whole prefix) that
#: would cost seconds; this bounds the probe to tens of milliseconds.
#: Support-sparse circuits - the ones the probe exists to recognise - do
#: orders of magnitude less work than this before completing.
PROBE_WORK_CEILING = 1 << 18

#: Gates that permute basis states: they move support without growing it.
PERMUTATION_GATES = frozenset({"x", "cx", "ccx", "swap"})


@dataclass(frozen=True)
class CircuitFeatures:
    """Static features of one circuit, the planner's pricing input.

    Attributes:
        name: Circuit name.
        num_qubits: Register width ``n``.
        num_gates: Total gate count.
        depth: Circuit depth (parallel gate layers).
        diagonal_fraction: Fraction of gates diagonal in the computational
            basis.
        is_clifford: Every gate is in the tableau engine's gate set.
        clifford_fraction: Fraction of gates in the Clifford subset.
        two_qubit_gates: Number of gates touching >= 2 qubits.
        mean_gate_span: Mean of ``max(qubits) - min(qubits)`` over
            multi-qubit gates (1.0 = nearest-neighbour; prices MPS swap
            routing).  0.0 when there are no multi-qubit gates.
        support_bound_final: Structural (involvement) bound on the final
            non-zero amplitude count, ``2^involved`` capped at ``2^n``.
        support_bound_peak: Maximum of the structural bound along the
            circuit (equals the final bound - involvement only grows).
        probe_completed: The bounded sparse probe ran the whole circuit
            without exceeding its ceilings.
        probe_support_peak: Peak exact support seen by the probe (only
            meaningful when ``probe_completed``; otherwise the support at
            abort time, a lower bound).
        probe_support_ops: ``sum(support_before_gate * 2^k)`` over probed
            gates - the hash-map engine's exact work integral when the
            probe completed.
        sparse_ops: Work integral priced for the sparse backend: the
            probe's exact integral when it completed, else the structural
            bound's integral (which is what makes dense-support circuits
            price the sparse engine out).
        dense_amp_ops: ``sum(live_amplitudes * touched_factor)`` over
            gates under the involvement window - the dense engine's
            pruning-aware amplitude-operation count.
        fused_sweeps: Number of state sweeps the functional engine's
            gate-fusion pass leaves after slabbing adjacent gates
            (:func:`repro.statevector.fusion.fused_sweep_count`).  Equals
            ``num_gates`` when nothing fuses; fusion-friendly circuits
            (diagonal runs, overlapping 1q/2q chains) come in well below.
        bond_estimate: Peak per-cut bond-growth proxy, capped at the
            exact-representability ceiling ``2^min(cut+1, n-1-cut)``.
        mps_ops: Work integral for the MPS backend at ``bond_cap``:
            ``sum((2*chi)^3)`` over (routed) two-qubit applications plus a
            per-gate term, with ``chi`` the proxy bond at that point
            capped at ``bond_cap``.
        bond_cap: The cap :func:`analyze_circuit` priced ``mps_ops`` at.
        mps_truncates: The uncapped proxy exceeds ``bond_cap`` somewhere:
            an MPS run at this cap may truncate (approximate result).
    """

    name: str
    num_qubits: int
    num_gates: int
    depth: int
    diagonal_fraction: float
    is_clifford: bool
    clifford_fraction: float
    two_qubit_gates: int
    mean_gate_span: float
    support_bound_final: int
    support_bound_peak: int
    probe_completed: bool
    probe_support_peak: int
    probe_support_ops: float
    sparse_ops: float
    dense_amp_ops: float
    fused_sweeps: int
    bond_estimate: int
    mps_ops: float
    bond_cap: int
    mps_truncates: bool


def _sparse_probe(
    circuit: QuantumCircuit,
    support_ceiling: int,
    gate_ceiling: int,
) -> tuple[bool, int, float]:
    """Run the circuit on the hash-map engine until a ceiling trips.

    Returns ``(completed, peak_support, support_ops)``.  The probe is the
    one feature that executes gates, but its work is hard-bounded by the
    ceilings, so it stays cheap on dense-support circuits (it aborts the
    moment the support blows up - for an all-qubits Hadamard layer that is
    after ``log2(ceiling)`` gates).
    """
    state = SparseState(circuit.num_qubits)
    peak = 1
    ops = 0.0
    for index, gate in enumerate(circuit):
        cost = state.support_size * (1 << gate.num_qubits)
        if index >= gate_ceiling or ops + cost > PROBE_WORK_CEILING:
            return False, peak, ops
        ops += cost
        state.apply(gate)
        peak = max(peak, state.support_size)
        if state.support_size > support_ceiling:
            return False, peak, ops
    return True, peak, ops


def _bond_growth(
    circuit: QuantumCircuit, bond_cap: int
) -> tuple[int, float, bool]:
    """Entanglement-growth proxy: per-cut Schmidt-rank doubling.

    Models the chain's ``n - 1`` cuts; a ``k``-qubit gate spanning sites
    ``[a, b]`` can multiply the rank across every cut in ``[a, b)`` by at
    most ``2^(k-1)``, and no cut can exceed its exact ceiling
    ``2^min(cut+1, n-1-cut)``.  Returns ``(peak_bond_capped, mps_ops,
    truncates)`` where ``mps_ops`` integrates ``(2 * chi)^3`` SVD work
    (with routing swaps for non-adjacent gates) at bonds capped to
    ``bond_cap``, and ``truncates`` records whether the *uncapped* proxy
    ever exceeded the cap.
    """
    n = circuit.num_qubits
    if n < 2:
        return 1, float(len(circuit)), False
    cuts = [1] * (n - 1)
    ceilings = [1 << min(c + 1, n - 1 - c) for c in range(n - 1)]
    ops = 0.0
    truncates = False
    peak = 1
    for gate in circuit:
        if gate.num_qubits == 1:
            ops += 1.0
            continue
        low, high = min(gate.qubits), max(gate.qubits)
        factor = 1 << (gate.num_qubits - 1)
        span = high - low
        # Swap-routing walks the far qubit adjacent: 2*(span-1) swaps plus
        # the gate itself, each an SVD at the local bond.
        applications = 2 * (span - 1) + 1
        local = max(cuts[low : high] or [1])
        chi = min(local, bond_cap)
        ops += applications * float(2 * chi) ** 3
        for cut in range(low, high):
            grown = min(cuts[cut] * factor, ceilings[cut])
            if grown > bond_cap:
                truncates = True
            cuts[cut] = grown
            peak = max(peak, min(grown, bond_cap))
    return peak, ops, truncates


def analyze_circuit(
    circuit: QuantumCircuit,
    *,
    bond_cap: int = 64,
    probe_support_ceiling: int = PROBE_SUPPORT_CEILING,
    probe_gate_ceiling: int = PROBE_GATE_CEILING,
) -> CircuitFeatures:
    """Extract the planner's static feature vector from ``circuit``.

    Deterministic: no randomness, no timing, no host probing - two calls
    with the same circuit and knobs return equal features.

    Raises:
        AnalysisError: On an empty register or a nonsensical bond cap.
    """
    if circuit.num_qubits <= 0:
        raise AnalysisError("cannot analyze a circuit with no qubits")
    if bond_cap < 1:
        raise AnalysisError(f"bond_cap must be >= 1, got {bond_cap}")
    n = circuit.num_qubits
    num_gates = len(circuit)
    diagonal = sum(1 for gate in circuit if gate.is_diagonal)
    clifford_gates = sum(1 for gate in circuit if gate.name in CLIFFORD_GATES)
    multi = [gate for gate in circuit if gate.num_qubits >= 2]
    spans = [max(g.qubits) - min(g.qubits) for g in multi]

    # Structural support bound and the dense pruning-window work integral.
    tracker = InvolvementTracker(n)
    dense_ops = 0.0
    bound_ops = 0.0
    for gate in circuit:
        tracker.involve(gate)
        live = tracker.live_amplitudes
        dense_ops += float(live)
        bound_ops += float(live) * (1 << gate.num_qubits)
    support_bound = min(tracker.live_amplitudes, 1 << n)

    completed, probe_peak, probe_ops = _sparse_probe(
        circuit, probe_support_ceiling, probe_gate_ceiling
    )
    bond_peak, mps_ops, truncates = _bond_growth(circuit, bond_cap)

    # Imported lazily: the fusion pass lives in the statevector package,
    # which the planner otherwise never touches at analysis time.
    from repro.statevector.fusion import fused_sweep_count

    fused_sweeps = fused_sweep_count(list(circuit)) if num_gates else 0

    return CircuitFeatures(
        name=circuit.name,
        num_qubits=n,
        num_gates=num_gates,
        depth=circuit.depth(),
        diagonal_fraction=diagonal / num_gates if num_gates else 0.0,
        is_clifford=is_clifford_circuit(circuit),
        clifford_fraction=clifford_gates / num_gates if num_gates else 0.0,
        two_qubit_gates=len(multi),
        mean_gate_span=sum(spans) / len(spans) if spans else 0.0,
        support_bound_final=support_bound,
        support_bound_peak=support_bound,
        probe_completed=completed,
        probe_support_peak=probe_peak,
        probe_support_ops=probe_ops,
        sparse_ops=probe_ops if completed else bound_ops,
        dense_amp_ops=dense_ops,
        fused_sweeps=fused_sweeps,
        bond_estimate=bond_peak,
        mps_ops=mps_ops,
        bond_cap=bond_cap,
        mps_truncates=truncates,
    )
