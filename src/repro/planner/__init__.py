"""Adaptive backend planner: circuit-aware engine selection + precision.

Public surface:

* :func:`analyze_circuit` / :class:`CircuitFeatures` - static features.
* :func:`backend_cost` / :func:`all_backend_costs` / :class:`BackendCost`
  - calibrated per-backend pricing.
* :func:`plan` / :class:`PlannerConfig` / :class:`BackendPlan` - the
  decision itself.
* :func:`run_backend` / :class:`BackendExecution` - uniform execution of
  the non-dense backends.
* :func:`resolve_dtype` / :func:`norm_deviation` /
  :data:`DEFAULT_NORM_BOUND` - the complex64 fast path's guard.
"""

from repro.planner.costs import (
    BACKENDS,
    BackendCost,
    DENSE_QUBIT_LIMIT,
    all_backend_costs,
    backend_cost,
)
from repro.planner.engines import BackendExecution, run_backend
from repro.planner.features import CircuitFeatures, analyze_circuit
from repro.planner.plan import (
    BACKEND_CHOICES,
    BackendPlan,
    DEFAULT_CONFIG,
    PRECISION_CHOICES,
    PlannerConfig,
    SINGLE_PRECISION_GATE_LIMIT,
    plan,
)
from repro.planner.precision import (
    DEFAULT_NORM_BOUND,
    PRECISION_DTYPES,
    norm_deviation,
    precision_of,
    resolve_dtype,
)

__all__ = [
    "BACKENDS",
    "BACKEND_CHOICES",
    "BackendCost",
    "BackendExecution",
    "BackendPlan",
    "CircuitFeatures",
    "DEFAULT_CONFIG",
    "DEFAULT_NORM_BOUND",
    "DENSE_QUBIT_LIMIT",
    "PRECISION_CHOICES",
    "PRECISION_DTYPES",
    "PlannerConfig",
    "SINGLE_PRECISION_GATE_LIMIT",
    "all_backend_costs",
    "analyze_circuit",
    "backend_cost",
    "norm_deviation",
    "plan",
    "precision_of",
    "resolve_dtype",
    "run_backend",
]
