"""Per-backend cost estimation for the adaptive planner.

Extends the repo's pricing beyond the DES statevector model: each backend
gets a closed-form cost in *calibrated host seconds* built from the work
integrals :mod:`repro.planner.features` extracts.  The calibration
constants are fixed in code (measured once on the reference host, see
``docs/planner.md`` for the methodology) rather than probed at runtime -
a deliberate trade: absolute times drift with the host, but the planner's
*ordering* of backends is what selection accuracy measures, and fixed
constants keep every plan deterministic and byte-stable.

Units: ``per_gate_seconds`` charges the Python/dispatch overhead every
gate pays regardless of state size; the ``*_per_second`` throughputs
charge the bulk work (amplitude ops for dense numpy kernels, dictionary
entry ops for the hash-map engine, tableau cell ops for the vectorised
Clifford columns, tensor element ops through einsum + SVD for MPS).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.hardware.specs import MachineSpec, PAPER_MACHINE
from repro.planner.features import CircuitFeatures

#: Backends the planner knows how to price, in deterministic tie-break
#: order (earlier wins a tie on estimated seconds).
BACKENDS: tuple[str, ...] = ("stabilizer", "sparse", "statevector", "mps")

#: Functional width ceiling of the dense chunked engine
#: (:class:`~repro.statevector.chunks.ChunkedStateVector`).
DENSE_QUBIT_LIMIT = 26

#: Bytes per complex amplitude at double / single precision.
AMP_BYTES_DOUBLE = 16
AMP_BYTES_SINGLE = 8

#: Estimated resident bytes per sparse dictionary entry (key + boxed
#: complex + hash-table overhead).
SPARSE_ENTRY_BYTES = 128

#: Floor on the bulk-work discount gate fusion can earn.  A slab of k
#: gates sweeps the state once instead of k times, but each amplitude
#: still pays the slab's combined arithmetic, so the saving is memory
#: traffic, not flops - measured on the reference host a fully-fused
#: sweep never gets cheaper than ~30% of the unfused sweeps it replaced.
FUSION_BULK_FLOOR = 0.3

#: Calibrated host constants (reference-host measurements, fixed for
#: determinism; see docs/planner.md "Cost calibration").
CALIBRATION: dict[str, dict[str, float]] = {
    "statevector": {
        "per_gate_seconds": 5e-05,
        # A gate folded into a slab skips the full sweep dispatch but
        # still pays contraction + bookkeeping in the fusion pass.
        "fused_member_seconds": 1.5e-05,
        "amp_ops_per_second": 2.0e08,
        # Measured dense-kernel speedup of the complex64 fast path
        # (bandwidth-bound kernels move half the bytes).
        "single_speedup": 1.6,
    },
    "stabilizer": {
        "per_gate_seconds": 4e-06,
        "cell_ops_per_second": 2.0e08,
    },
    "sparse": {
        "per_gate_seconds": 5e-06,
        "entry_ops_per_second": 2.0e06,
    },
    "mps": {
        "per_gate_seconds": 6e-05,
        "element_ops_per_second": 5.0e07,
    },
}


@dataclass(frozen=True)
class BackendCost:
    """One backend's priced execution of one circuit.

    Attributes:
        backend: Backend name (one of :data:`BACKENDS`).
        feasible: The backend can execute this circuit on this machine.
        seconds: Calibrated modelled host seconds (``inf`` when
            infeasible).
        memory_bytes: Estimated peak resident bytes.
        approximate: A feasible run may not be exact (MPS whose bond
            proxy exceeds the cap: truncation possible).
        reason: Why the backend is infeasible / approximate ("" when
            exact and feasible).
    """

    backend: str
    feasible: bool
    seconds: float
    memory_bytes: float
    approximate: bool = False
    reason: str = ""


def _statevector_cost(
    features: CircuitFeatures, machine: MachineSpec, precision: str
) -> BackendCost:
    amp_bytes = AMP_BYTES_SINGLE if precision == "single" else AMP_BYTES_DOUBLE
    # State + the fused kernels' scratch buffer.
    memory = float(2 * amp_bytes * (1 << min(features.num_qubits, 62)))
    if features.num_qubits > DENSE_QUBIT_LIMIT:
        return BackendCost(
            "statevector", False, float("inf"), memory,
            reason=f"functional dense engine is limited to "
                   f"{DENSE_QUBIT_LIMIT} qubits",
        )
    if memory > machine.host_memory_bytes:
        return BackendCost(
            "statevector", False, float("inf"), memory,
            reason="dense state exceeds host memory",
        )
    c = CALIBRATION["statevector"]
    bulk = features.dense_amp_ops / c["amp_ops_per_second"]
    if precision == "single":
        bulk /= c["single_speedup"]
    # Gate fusion: full dispatch overhead is paid per fused sweep, gates
    # folded into slabs pay the cheaper member rate, and the bandwidth-
    # bound bulk shrinks with the sweep count (floored - see
    # FUSION_BULK_FLOOR - because fused sweeps do more flops per pass).
    # When nothing fuses (fused_sweeps == num_gates) this reduces to the
    # pre-fusion pricing exactly.
    if features.num_gates:
        sweep_fraction = features.fused_sweeps / features.num_gates
        bulk *= max(sweep_fraction, FUSION_BULK_FLOOR)
    folded = features.num_gates - features.fused_sweeps
    seconds = (
        features.fused_sweeps * c["per_gate_seconds"]
        + folded * c["fused_member_seconds"]
        + bulk
    )
    return BackendCost("statevector", True, seconds, memory)


def _stabilizer_cost(
    features: CircuitFeatures, machine: MachineSpec
) -> BackendCost:
    n = features.num_qubits
    memory = float(2 * (2 * n * n) + 2 * n)  # bool tableaus + sign column
    if not features.is_clifford:
        return BackendCost(
            "stabilizer", False, float("inf"), memory,
            reason=f"{1 - features.clifford_fraction:.0%} of gates are "
                   "outside the Clifford set",
        )
    c = CALIBRATION["stabilizer"]
    cells = features.num_gates * 4.0 * n  # x+z column updates of length 2n
    seconds = (
        features.num_gates * c["per_gate_seconds"]
        + cells / c["cell_ops_per_second"]
    )
    return BackendCost("stabilizer", True, seconds, memory)


def _sparse_cost(features: CircuitFeatures, machine: MachineSpec) -> BackendCost:
    support = (
        features.probe_support_peak
        if features.probe_completed
        else features.support_bound_peak
    )
    memory = float(2 * support * SPARSE_ENTRY_BYTES)  # old + rebuilt dict
    if memory > machine.host_memory_bytes:
        return BackendCost(
            "sparse", False, float("inf"), memory,
            reason="support bound exceeds host memory",
        )
    c = CALIBRATION["sparse"]
    seconds = (
        features.num_gates * c["per_gate_seconds"]
        + features.sparse_ops / c["entry_ops_per_second"]
    )
    reason = "" if features.probe_completed else (
        "support probe aborted; priced at the structural involvement bound"
    )
    return BackendCost("sparse", True, seconds, memory, reason=reason)


def _mps_cost(features: CircuitFeatures, machine: MachineSpec) -> BackendCost:
    n = features.num_qubits
    chi = features.bond_estimate
    # Site tensors plus merged-theta and SVD work buffers.
    memory = float(3 * n * 2 * chi * chi * AMP_BYTES_DOUBLE)
    if memory > machine.host_memory_bytes:
        return BackendCost(
            "mps", False, float("inf"), memory,
            reason=f"bond {chi} tensors exceed host memory",
        )
    c = CALIBRATION["mps"]
    seconds = (
        features.num_gates * c["per_gate_seconds"]
        + features.mps_ops / c["element_ops_per_second"]
    )
    reason = (
        f"bond proxy exceeds cap {features.bond_cap}: result may truncate"
        if features.mps_truncates
        else ""
    )
    return BackendCost(
        "mps", True, seconds, memory,
        approximate=features.mps_truncates, reason=reason,
    )


def backend_cost(
    features: CircuitFeatures,
    backend: str,
    machine: MachineSpec = PAPER_MACHINE,
    precision: str = "double",
) -> BackendCost:
    """Price ``features`` on one backend.

    Raises:
        AnalysisError: On an unknown backend name.
    """
    if backend == "statevector":
        return _statevector_cost(features, machine, precision)
    if backend == "stabilizer":
        return _stabilizer_cost(features, machine)
    if backend == "sparse":
        return _sparse_cost(features, machine)
    if backend == "mps":
        return _mps_cost(features, machine)
    raise AnalysisError(
        f"unknown backend {backend!r} (choose from {sorted(BACKENDS)})"
    )


def all_backend_costs(
    features: CircuitFeatures,
    machine: MachineSpec = PAPER_MACHINE,
    precision: str = "double",
    backends: tuple[str, ...] = BACKENDS,
) -> tuple[BackendCost, ...]:
    """Price every candidate backend, in :data:`BACKENDS` order."""
    return tuple(
        backend_cost(features, backend, machine, precision)
        for backend in backends
    )
