"""Content-addressed result cache with LRU byte-budget eviction.

Keys are the job cache keys from :func:`repro.service.job.cache_key` -
SHA-256 over the circuit fingerprint plus every result-affecting knob - so
two textually different submissions that mean the same simulation share an
entry.  Values are :class:`~repro.service.job.JobResult` payloads; each
entry is charged its canonical-JSON size so the ``budget_bytes`` bound is
deterministic across runs and platforms.

Eviction is least-recently-*used*: both hits and inserts refresh recency.
Counters (hits / misses / evictions / corruptions / stored bytes) feed the
metrics registry.

Every entry stores the CRC32 of its payload at insert time and verifies it
on :meth:`ResultCache.get`: a corrupted entry is dropped and counted, and
the lookup reports a miss, so the scheduler transparently recomputes
instead of serving damaged bytes.  :meth:`ResultCache.corrupt_entry` is
the chaos harness's injection point.
"""

from __future__ import annotations

import json
import zlib
from collections import OrderedDict

from repro.errors import ServiceError
from repro.obs.log import get_logger
from repro.service.job import JobResult

_LOG = get_logger("service.cache")


class ResultCache:
    """LRU byte-budgeted map from cache key to result payload.

    Args:
        budget_bytes: Total bytes of stored payloads allowed; inserting
            past the budget evicts least-recently-used entries.  A single
            payload larger than the whole budget is simply not stored.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ServiceError(f"cache budget must be positive, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        # key -> (payload, byte cost, crc32 at insert)
        self._entries: "OrderedDict[str, tuple[str, int, int]]" = OrderedDict()
        self.stored_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corruptions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @staticmethod
    def _encode(result: JobResult) -> tuple[str, int]:
        payload = json.dumps(result.to_dict(), sort_keys=True)
        return payload, len(payload.encode())

    def get(self, key: str) -> JobResult | None:
        """Look up ``key``, counting a hit or miss and refreshing recency.

        The stored payload's CRC32 is verified first: a corrupted entry is
        dropped, counted, and reported as a miss (the caller recomputes).
        Returns a fresh :class:`JobResult` decoded from the stored payload,
        so callers can never mutate the cached copy.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        payload, cost, crc = entry
        if zlib.crc32(payload.encode()) != crc:
            self._entries.pop(key)
            self.stored_bytes -= cost
            self.corruptions += 1
            self.misses += 1
            _LOG.warning(
                "dropped corrupt result-cache entry %s (crc mismatch)", key[:12]
            )
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return JobResult.from_dict(json.loads(payload))

    def peek(self, key: str) -> bool:
        """Whether ``key`` is cached, without touching counters or recency."""
        return key in self._entries

    def record_miss(self) -> None:
        """Count a miss observed via :meth:`peek` (the scheduler peeks on
        every pass but charges one miss per actual execution)."""
        self.misses += 1

    def put(self, key: str, result: JobResult) -> None:
        """Store ``result`` under ``key``, evicting LRU entries to fit."""
        payload, cost = self._encode(result)
        if key in self._entries:
            self.stored_bytes -= self._entries.pop(key)[1]
        if cost > self.budget_bytes:
            return  # can never fit; do not flush the whole cache for it
        while self.stored_bytes + cost > self.budget_bytes and self._entries:
            _, (_, evicted_cost, _) = self._entries.popitem(last=False)
            self.stored_bytes -= evicted_cost
            self.evictions += 1
        self._entries[key] = (payload, cost, zlib.crc32(payload.encode()))
        self.stored_bytes += cost

    def corrupt_entry(self, key: str) -> bool:
        """Flip a byte of ``key``'s stored payload (chaos injection).

        The CRC recorded at insert time is kept, so the next :meth:`get`
        detects the damage.  Returns whether the key existed.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        payload, cost, crc = entry
        flipped = chr(ord(payload[0]) ^ 0x20) + payload[1:]
        self._entries[key] = (flipped, cost, crc)
        return True

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float | int]:
        """Counters for the metrics export."""
        return {
            "budget_bytes": self.budget_bytes,
            "entries": len(self._entries),
            "stored_bytes": self.stored_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "hit_rate": self.hit_rate,
        }
