"""Job model and lifecycle state machine for the batch service.

A :class:`Job` is one simulation request flowing through the service:

::

    PENDING --> ADMITTED --> RUNNING --> SUCCEEDED
       |            |           |
       v            v           v
    CANCELLED   CANCELLED     FAILED --> PENDING   (retry)

plus ``RUNNING -> CANCELLED`` (cooperative cancellation of a live run)
and ``ADMITTED -> PENDING`` (restart-recovery re-queue).
Transitions are validated by :meth:`Job.transition`; anything outside the
map above raises :class:`~repro.errors.ServiceError`.  The ``FAILED ->
PENDING`` edge is the retry path - whether it is taken, and how often, is
decided by the service's :class:`~repro.reliability.policy.RecoveryPolicy`,
not by the job itself.  ``ADMITTED -> PENDING`` is the restart-recovery
edge: a journal that ends with a job ADMITTED (the scheduler died between
admission and dispatch) re-queues it without charging an attempt.

The :class:`JobSpec` names the workload declaratively (family/width/seed or
inline QASM, version, shots) so jobs serialize to the JSONL journal and to
manifest files, and so a canonical **cache key** can be derived from the
circuit fingerprint plus every knob that affects the result.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.circuits.circuit import QuantumCircuit
from repro.errors import ServiceError


class JobState(str, Enum):
    """Lifecycle states of a service job."""

    PENDING = "PENDING"
    ADMITTED = "ADMITTED"
    RUNNING = "RUNNING"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (JobState.SUCCEEDED, JobState.CANCELLED)


#: Legal lifecycle transitions.  ``FAILED -> PENDING`` is the retry edge,
#: ``ADMITTED -> PENDING`` the restart-recovery re-queue, and
#: ``RUNNING -> CANCELLED`` cooperative cancellation of a live run.
ALLOWED_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.PENDING: frozenset({JobState.ADMITTED, JobState.CANCELLED}),
    JobState.ADMITTED: frozenset(
        {JobState.RUNNING, JobState.CANCELLED, JobState.PENDING}
    ),
    JobState.RUNNING: frozenset(
        {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.FAILED: frozenset({JobState.PENDING}),
    JobState.SUCCEEDED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


@dataclass(frozen=True)
class JobSpec:
    """Declarative description of one simulation request.

    Attributes:
        family: Benchmark family (mutually exclusive with ``qasm``).
        qubits: Register width (ignored when ``qasm`` is given).
        seed: Generator seed for randomised families; also the sampling
            seed for ``shots``.
        qasm: Inline OpenQASM 2.0 text instead of a family.
        version: Execution version name (key of ``VERSIONS_BY_NAME``).
        shots: Measurement shots sampled from the final state (0 = none).
        priority: Larger runs earlier under the priority policy.
        chunk_bits: Within-chunk qubits override for the functional engine.
        fault_plan: Fault-plan spec string injected into the run
            (see :meth:`repro.reliability.FaultPlan.from_spec`).
        deadline_seconds: Wall-clock budget for one execution attempt;
            the watchdog reaps a RUNNING job that exceeds it.  ``None``
            means no deadline.  Deliberately *not* part of the cache
            key - a deadline changes when a run is abandoned, never what
            it computes.
        backend: Execution backend - ``"statevector"`` (default, the
            pre-planner behaviour and what legacy journal lines replay
            as), a forced engine name, or ``"auto"`` for planner
            selection at execution time.
        precision: ``"double"`` (default / legacy), ``"single"``, or
            ``"auto"``.
        name: Optional display name; defaults to ``family_qubits``.
    """

    family: str | None = None
    qubits: int = 0
    seed: int = 0
    qasm: str | None = None
    version: str = "Q-GPU"
    shots: int = 0
    priority: int = 0
    chunk_bits: int | None = None
    fault_plan: str | None = None
    deadline_seconds: float | None = None
    backend: str = "statevector"
    precision: str = "double"
    name: str | None = None

    def __post_init__(self) -> None:
        if (self.family is None) == (self.qasm is None):
            raise ServiceError("job spec needs exactly one of 'family' or 'qasm'")
        if self.family is not None and self.qubits <= 0:
            raise ServiceError(f"job spec qubits must be positive, got {self.qubits}")
        if self.shots < 0:
            raise ServiceError(f"job spec shots must be >= 0, got {self.shots}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ServiceError(
                f"job spec deadline_seconds must be positive, "
                f"got {self.deadline_seconds}"
            )
        if self.backend not in ("auto", "statevector", "stabilizer", "sparse", "mps"):
            raise ServiceError(f"job spec backend {self.backend!r} is unknown")
        if self.precision not in ("auto", "single", "double"):
            raise ServiceError(f"job spec precision {self.precision!r} is unknown")

    def build_circuit(self) -> QuantumCircuit:
        """Materialize the circuit this spec names."""
        if self.qasm is not None:
            from repro.circuits.qasm import from_qasm

            return from_qasm(self.qasm, name=self.name or "qasm_job")
        from repro.circuits.library import get_circuit

        return get_circuit(self.family, self.qubits, seed=self.seed)

    @property
    def display_name(self) -> str:
        if self.name:
            return self.name
        if self.family is not None:
            return f"{self.family}_{self.qubits}"
        return "qasm_job"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict, omitting defaulted fields for compact journals."""
        out: dict[str, Any] = {}
        for key, default in (
            ("family", None), ("qubits", 0), ("seed", 0), ("qasm", None),
            ("version", "Q-GPU"), ("shots", 0), ("priority", 0),
            ("chunk_bits", None), ("fault_plan", None),
            ("deadline_seconds", None), ("backend", "statevector"),
            ("precision", "double"), ("name", None),
        ):
            value = getattr(self, key)
            if value != default:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        unknown = set(data) - {
            "family", "qubits", "seed", "qasm", "version", "shots",
            "priority", "chunk_bits", "fault_plan", "deadline_seconds",
            "backend", "precision", "name",
        }
        if unknown:
            raise ServiceError(f"unknown job spec fields: {sorted(unknown)}")
        try:
            return cls(**data)
        except TypeError as error:
            raise ServiceError(f"malformed job spec: {error}") from None


def cache_key(fingerprint: str, spec: JobSpec) -> str:
    """Content address of a job's result.

    Two submissions share a key - and therefore a cached result - exactly
    when they simulate the same circuit (by :meth:`QuantumCircuit.fingerprint`)
    under the same version, chunking, shot count and sampling seed.  The
    fault plan participates too: a faulted run under a strict policy is not
    interchangeable with a clean one.

    Backend and precision participate as the *spec-level* strings: a
    complex64 result must never serve a complex128 request, and ``"auto"``
    keys separately from an explicit backend even when the planner would
    resolve it identically (the plan is deterministic per service config,
    but two services may be configured differently - correctness over
    dedup).
    """
    material = "\x1f".join([
        fingerprint,
        spec.version,
        str(spec.chunk_bits),
        str(spec.shots),
        str(spec.seed),
        spec.fault_plan or "",
        spec.backend,
        spec.precision,
    ])
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class JobResult:
    """Outcome payload of a finished job (what the cache stores).

    Attributes:
        counts: Sampled measurement counts keyed by the basis-state index
            (stringified for JSON round-tripping).
        state_sha256: SHA-256 of the final amplitude bytes - the identity
            proof that a cache hit equals a fresh run.
        pruned_fraction: Fraction of chunk updates pruning skipped.
        num_qubits: Register width of the simulated circuit.
        chunk_updates_total: Chunk-group updates the unoptimized engine
            would perform for this run.
        chunk_updates_skipped: Updates pruning eliminated.
        transfers: Guarded chunk transfers performed (0 when fault-free).
        retries: Transfer retransmissions the reliability layer performed.
        faults: Injected faults detected across all kinds.
        backend: Backend that executed the job (planner-resolved; legacy
            payloads deserialize as ``"statevector"``).
        precision: Precision the final state was computed at (after any
            norm-guard fallback; legacy payloads deserialize as
            ``"double"``).
        precision_fallback: The single-precision attempt violated the
            norm bound and the result came from the complex128 re-run.
        truncation_error: Accumulated MPS truncation error (0.0 for
            exact backends).

    The simulator-level fields ride along so the service can fold them
    into its metrics export when the job completes
    (:meth:`~repro.service.metrics.MetricsRegistry.absorb_result`);
    pre-existing cached payloads without them deserialize with zeros.
    """

    counts: dict[str, int] = field(default_factory=dict)
    state_sha256: str = ""
    pruned_fraction: float = 0.0
    num_qubits: int = 0
    chunk_updates_total: int = 0
    chunk_updates_skipped: int = 0
    transfers: int = 0
    retries: int = 0
    faults: int = 0
    backend: str = "statevector"
    precision: str = "double"
    precision_fallback: bool = False
    truncation_error: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "counts": dict(sorted(self.counts.items())),
            "state_sha256": self.state_sha256,
            "pruned_fraction": self.pruned_fraction,
            "num_qubits": self.num_qubits,
            "chunk_updates_total": self.chunk_updates_total,
            "chunk_updates_skipped": self.chunk_updates_skipped,
            "transfers": self.transfers,
            "retries": self.retries,
            "faults": self.faults,
            "backend": self.backend,
            "precision": self.precision,
            "precision_fallback": self.precision_fallback,
            "truncation_error": self.truncation_error,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobResult":
        return cls(
            counts=dict(data.get("counts", {})),
            state_sha256=data.get("state_sha256", ""),
            pruned_fraction=data.get("pruned_fraction", 0.0),
            num_qubits=data.get("num_qubits", 0),
            chunk_updates_total=data.get("chunk_updates_total", 0),
            chunk_updates_skipped=data.get("chunk_updates_skipped", 0),
            transfers=data.get("transfers", 0),
            retries=data.get("retries", 0),
            faults=data.get("faults", 0),
            backend=data.get("backend", "statevector"),
            precision=data.get("precision", "double"),
            precision_fallback=data.get("precision_fallback", False),
            truncation_error=data.get("truncation_error", 0.0),
        )


@dataclass
class Job:
    """One request flowing through the service.

    Attributes:
        job_id: Stable identifier (``j0001``, ``j0002``, ...).
        seq: Submission sequence number (ties in every policy break on it,
            which is what makes single-worker scheduling deterministic).
        spec: The declarative workload.
        state: Current lifecycle state.
        fingerprint: Circuit content hash (computed at submit).
        footprint_bytes: Estimated resident host bytes while running.
        estimated_seconds: Modelled runtime from the DES cost model
            (None when the cost model cannot price the job).
        attempts: Execution attempts so far (a cache hit counts as one).
        cache_hit: Whether the result came from the cache.
        submitted_at/admitted_at/started_at/finished_at: Clock readings
            (logical ticks in deterministic mode, seconds otherwise).
        result: Outcome payload once SUCCEEDED.
        error: Last failure message, if any.
    """

    job_id: str
    seq: int
    spec: JobSpec
    state: JobState = JobState.PENDING
    fingerprint: str = ""
    footprint_bytes: float = 0.0
    estimated_seconds: float | None = None
    attempts: int = 0
    cache_hit: bool = False
    submitted_at: float = 0.0
    admitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    result: JobResult | None = None
    error: str | None = None

    def transition(self, to: JobState, at: float | None = None) -> None:
        """Move to ``to``, enforcing the lifecycle map.

        Raises:
            ServiceError: On an illegal transition.
        """
        if to not in ALLOWED_TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id}: illegal transition {self.state.value} -> {to.value}"
            )
        self.state = to
        if to is JobState.ADMITTED:
            self.admitted_at = at
        elif to is JobState.RUNNING:
            self.started_at = at
        elif to in (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED):
            self.finished_at = at
        elif to is JobState.PENDING:  # retry re-enters the queue
            self.admitted_at = None
            self.started_at = None
            self.finished_at = None

    @property
    def cache_key(self) -> str:
        return cache_key(self.fingerprint, self.spec)

    @property
    def wait_time(self) -> float | None:
        """Queue wait: submission (or re-queue) to execution start."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_time(self) -> float | None:
        """Execution time of the final attempt."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at
