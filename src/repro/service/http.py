"""Live observability endpoint for a running batch service.

:class:`ServiceHTTPServer` wraps a :class:`~repro.service.BatchService` in
a stdlib :class:`~http.server.ThreadingHTTPServer` on a background daemon
thread - no framework, no new dependency - serving read-only routes:

* ``/metrics`` - Prometheus text exposition (version 0.0.4) of the
  service's counter registry, including every histogram series
  (``_bucket`` / ``_sum`` / ``_count``), plus point-in-time gauges (jobs
  by state, queue depth high-water mark, watchdog reaps, open breakers,
  uptime);
* ``/healthz`` - combined health JSON (kept for compatibility): job-state
  counts plus the supervision snapshot;
* ``/livez`` - liveness: answers 200 whenever the process can serve a
  request at all (the probe a restart decision hangs off);
* ``/readyz`` - readiness: 503 when the service cannot currently make
  safe progress - specifically, when supervision is enabled, jobs are
  RUNNING, and the watchdog thread is dead (hung workers would go
  unreaped); open circuit breakers are reported as degradation reasons
  without failing the probe;
* ``/jobs`` - the job table as JSON (id, state, attempts, timings).

The server is read-only by construction: handlers only call the
service's snapshot methods, never mutate job state, so they are safe to
run concurrently with the coordinator's scheduling loop.

Typical use (what ``repro serve-batch --http-port`` does)::

    server = ServiceHTTPServer(service, port=0)   # 0 = ephemeral
    server.start()
    print(server.url)                             # http://127.0.0.1:NNNNN
    ...
    server.stop()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import ServiceError
from repro.obs.log import get_logger
from repro.obs.prom import render_prometheus
from repro.service.service import BatchService

_logger = get_logger("service.http")

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the ``server`` object carries the render hooks."""

    protocol_version = "HTTP/1.1"
    #: Socket timeout for one request.  A client that connects and never
    #: sends a request line would otherwise pin its handler thread (and
    #: with it, a lingering ``stop()``) indefinitely.
    timeout = 10.0

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._respond(self.server.render_metrics(), PROMETHEUS_CONTENT_TYPE)
            elif path == "/healthz":
                self._respond_json(self.server.health())
            elif path == "/livez":
                self._respond_json(self.server.liveness())
            elif path == "/readyz":
                payload = self.server.readiness()
                self._respond_json(
                    payload, status=200 if payload["ready"] else 503
                )
            elif path == "/jobs":
                self._respond_json({"jobs": self.server.service.jobs_snapshot()})
            else:
                self._respond_json(
                    {"error": f"no route {path!r}",
                     "routes": ["/metrics", "/healthz", "/livez",
                                "/readyz", "/jobs"]},
                    status=404,
                )
        except Exception as error:  # pragma: no cover - defensive
            self._respond_json({"error": str(error)}, status=500)

    def _respond(self, body: str, content_type: str, status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _respond_json(self, payload: dict[str, Any], status: int = 200) -> None:
        self._respond(
            json.dumps(payload, sort_keys=True) + "\n",
            "application/json",
            status,
        )

    def log_message(self, format: str, *args: Any) -> None:
        # Route access logs through the repro logger instead of stderr.
        _logger.debug("http %s", format % args)


class ServiceHTTPServer:
    """Background HTTP observability server for one :class:`BatchService`.

    Args:
        service: The service to expose (read-only).
        port: TCP port; ``0`` picks an ephemeral port (read it back from
            :attr:`port` after construction - useful in tests and CI).
        host: Bind address (default loopback; pass ``"0.0.0.0"`` to expose
            beyond the machine).
        prefix: Prometheus metric-name prefix.
    """

    def __init__(
        self,
        service: BatchService,
        port: int = 0,
        host: str = "127.0.0.1",
        prefix: str = "repro",
    ) -> None:
        self.service = service
        self.prefix = prefix
        try:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as error:
            raise ServiceError(
                f"cannot bind observability endpoint to {host}:{port}: {error}"
            ) from None
        self._httpd.daemon_threads = True
        # Do not wait on handler threads at close: they are daemonic and
        # time-bounded, and blocking here is exactly the stop() hang this
        # server once had.
        self._httpd.block_on_close = False
        # Hand the handler its context via the server object it already sees.
        self._httpd.render_metrics = self.render_metrics  # type: ignore[attr-defined]
        self._httpd.health = self.health  # type: ignore[attr-defined]
        self._httpd.liveness = self.liveness  # type: ignore[attr-defined]
        self._httpd.readiness = self.readiness  # type: ignore[attr-defined]
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- payloads ------------------------------------------------------------

    def gauges(self) -> dict[str, float]:
        """Point-in-time values that don't belong in the counter registry."""
        from repro.obs.profile import process_peak_rss_bytes, process_rss_bytes

        supervision = self.service.supervision_snapshot()
        values: dict[str, float] = {
            "up": 1.0,
            "uptime_seconds": time.monotonic() - self._started_at,
            "process_rss_bytes": float(process_rss_bytes()),
            "process_peak_rss_bytes": float(process_peak_rss_bytes()),
            "queue_depth_max": float(self.service.metrics.max_queue_depth),
            "watchdog_reaps": float(supervision["watchdog_reaps"]),
            "watched_jobs": float(supervision["watched_jobs"]),
            "breakers_open": float(supervision["breakers"].get("open", 0)),
        }
        for state, count in sorted(self.service.state_counts().items()):
            values[f"jobs_{state}"] = float(count)
        return values

    def render_metrics(self) -> str:
        return render_prometheus(
            self.service.metrics.counters, gauges=self.gauges(), prefix=self.prefix
        )

    def health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "jobs": self.service.state_counts(),
            "workers": self.service.workers,
            "policy": self.service.policy.name,
            "deterministic": self.service.deterministic,
            "supervision": self.service.supervision_snapshot(),
        }

    def liveness(self) -> dict[str, Any]:
        """The ``/livez`` payload: serving a response *is* the evidence."""
        return {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self._started_at,
        }

    def readiness(self) -> dict[str, Any]:
        """The ``/readyz`` payload; ``ready: False`` maps to HTTP 503.

        Not-ready means the service cannot currently make *safe*
        progress: supervision is enabled and jobs are RUNNING, but the
        watchdog thread is dead, so a hung worker would never be reaped.
        Open circuit breakers are a per-fingerprint degradation, not an
        outage, so they are surfaced as reasons without flipping the
        probe.
        """
        supervision = self.service.supervision_snapshot()
        running = self.service.state_counts().get("RUNNING", 0)
        reasons: list[str] = []
        ready = True
        if supervision["enabled"] and running and not self.service.supervisor.alive:
            ready = False
            reasons.append(
                f"watchdog supervisor is not running with {running} "
                "RUNNING job(s)"
            )
        open_breakers = supervision["breakers"].get("open", 0)
        if open_breakers:
            reasons.append(f"{open_breakers} circuit breaker(s) open")
        return {
            "status": "ok" if ready else "unavailable",
            "ready": ready,
            "reasons": reasons,
            "jobs": self.service.state_counts(),
            "supervision": supervision,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServiceHTTPServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise ServiceError("observability endpoint already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-http",
            daemon=True,
        )
        self._thread.start()
        _logger.info("observability endpoint on %s", self.url,
                     extra={"url": self.url})
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread.

        The join is bounded: handler threads are daemonic and the
        accept loop exits on ``shutdown()``, so five seconds only ever
        elapses if something is wedged - in which case we warn and
        abandon the daemon thread rather than hang the caller's
        shutdown path.
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if self._thread.is_alive():  # pragma: no cover - wedged socket
                _logger.warning(
                    "observability endpoint thread did not exit within 5s; "
                    "abandoning it (daemon thread, will not block exit)"
                )
            self._thread = None
