"""Persistent job store: an append-only JSONL journal.

Every externally visible job event - submission, state transition, result,
error - is one JSON object per line.  Reloading a journal replays the
events through the :class:`~repro.service.job.Job` state machine, so
``repro status`` and ``repro cancel`` work from a different process than
the one that submitted or ran the jobs, and a crashed ``serve-batch`` can
be re-run over the same journal (terminal jobs are simply not re-executed).

The journal is the source of truth for cross-process state; the in-memory
:class:`~repro.service.service.BatchService` is the source of truth while
a scheduler is live.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.errors import JobNotFound, ServiceError
from repro.service.job import Job, JobResult, JobSpec, JobState


class JobStore:
    """Append-only JSONL journal of job events.

    Args:
        path: Journal file; created (with parents) on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- writing -------------------------------------------------------------

    def append(self, event: dict[str, Any]) -> None:
        """Append one event object as a JSON line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")

    def record_submit(self, job: Job) -> None:
        self.append({
            "event": "submit",
            "id": job.job_id,
            "seq": job.seq,
            "at": job.submitted_at,
            "fingerprint": job.fingerprint,
            "footprint_bytes": job.footprint_bytes,
            "estimated_seconds": job.estimated_seconds,
            "spec": job.spec.to_dict(),
        })

    def record_transition(self, job: Job, at: float | None) -> None:
        self.append({
            "event": "transition",
            "id": job.job_id,
            "to": job.state.value,
            "at": at,
            "attempts": job.attempts,
        })

    def record_result(self, job: Job) -> None:
        assert job.result is not None
        self.append({
            "event": "result",
            "id": job.job_id,
            "cache_hit": job.cache_hit,
            "attempts": job.attempts,
            "result": job.result.to_dict(),
        })

    def record_error(self, job: Job, message: str) -> None:
        self.append({"event": "error", "id": job.job_id, "message": message})

    # -- reading -------------------------------------------------------------

    def iter_events(self) -> Iterator[dict[str, Any]]:
        """Yield events in journal order; a missing file yields nothing.

        Raises:
            ServiceError: On an unparsable journal line.
        """
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as error:
                    raise ServiceError(
                        f"{self.path}:{lineno}: corrupt journal line ({error})"
                    ) from None

    def load(self) -> dict[str, Job]:
        """Replay the journal into jobs keyed by id, in submission order.

        Transitions are applied through the state machine, so a journal
        recording an illegal lifecycle is rejected rather than trusted.
        """
        jobs: dict[str, Job] = {}
        for event in self.iter_events():
            kind = event.get("event")
            if kind == "submit":
                spec = JobSpec.from_dict(event["spec"])
                job = Job(
                    job_id=event["id"],
                    seq=event["seq"],
                    spec=spec,
                    fingerprint=event.get("fingerprint", ""),
                    footprint_bytes=event.get("footprint_bytes", 0.0),
                    estimated_seconds=event.get("estimated_seconds"),
                    submitted_at=event.get("at", 0.0),
                )
                jobs[job.job_id] = job
            elif kind == "transition":
                job = self._known(jobs, event)
                job.attempts = event.get("attempts", job.attempts)
                job.transition(JobState(event["to"]), at=event.get("at"))
            elif kind == "result":
                job = self._known(jobs, event)
                job.cache_hit = event.get("cache_hit", False)
                job.attempts = event.get("attempts", job.attempts)
                job.result = JobResult.from_dict(event["result"])
            elif kind == "error":
                job = self._known(jobs, event)
                job.error = event["message"]
            else:
                raise ServiceError(f"unknown journal event {kind!r}")
        return jobs

    @staticmethod
    def _known(jobs: dict[str, Job], event: dict[str, Any]) -> Job:
        job = jobs.get(event.get("id", ""))
        if job is None:
            raise ServiceError(
                f"journal references unknown job {event.get('id')!r}"
            )
        return job

    def get(self, job_id: str) -> Job:
        """Load one job.

        Raises:
            JobNotFound: If the journal has no such job.
        """
        jobs = self.load()
        if job_id not in jobs:
            raise JobNotFound(f"no job {job_id!r} in {self.path}")
        return jobs[job_id]

    def next_seq(self) -> int:
        """The next submission sequence number for this journal."""
        jobs = self.load()
        return 1 + max((job.seq for job in jobs.values()), default=0)
