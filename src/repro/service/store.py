"""Persistent job store: an append-only, crash-safe JSONL journal.

Every externally visible job event - submission, state transition, result,
error - is one JSON object per line.  Reloading a journal replays the
events through the :class:`~repro.service.job.Job` state machine, so
``repro status`` and ``repro cancel`` work from a different process than
the one that submitted or ran the jobs, and a crashed ``serve-batch`` can
be re-run over the same journal (terminal jobs are simply not re-executed).

Crash safety:

* Every appended line carries a CRC32 suffix (``{json}\\tcrc32=xxxxxxxx``),
  the same integrity idea :mod:`repro.reliability.integrity` applies to
  chunk transfers.  Legacy journals without suffixes still load - a JSON
  line never contains a literal tab, so the suffix is unambiguous.
* A *torn tail* - the final record truncated by a crash mid-append - is
  tolerated on replay: a warning is logged and replay stops at the last
  intact record.  Corruption anywhere **before** the tail still raises
  :class:`~repro.errors.ServiceError`: that is not a crash artifact, it
  is a damaged journal.
* :meth:`JobStore.repair_tail` truncates a torn tail in place (invoked
  automatically before the first append, so new records never concatenate
  onto a torn fragment).
* The ``fsync`` policy bounds how much a power loss can tear: ``never``
  (default) leaves flushing to the OS; ``always`` fsyncs every append.
* :meth:`JobStore.compact` rewrites the journal as one minimal snapshot
  whose replay is state-for-state identical to the original, bounding
  journal growth for long-lived services.

The journal is the source of truth for cross-process state; the in-memory
:class:`~repro.service.service.BatchService` is the source of truth while
a scheduler is live.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.errors import JobNotFound, ServiceError
from repro.obs.log import get_logger
from repro.service.job import Job, JobResult, JobSpec, JobState

_LOG = get_logger("service.store")

#: CRC suffix framing: ``{json}\tcrc32={8 hex digits}``.  JSON emitted by
#: :func:`json.dumps` never contains a literal tab, so splitting on the
#: last tab is unambiguous and suffix-less legacy lines parse unchanged.
_CRC_SEP = "\t"
_CRC_PREFIX = "crc32="

#: Accepted fsync policies for :class:`JobStore`.
FSYNC_POLICIES = ("never", "always")


def encode_line(event: dict[str, Any]) -> str:
    """Serialize one event to its CRC32-suffixed journal line."""
    body = json.dumps(event, sort_keys=True)
    return f"{body}{_CRC_SEP}{_CRC_PREFIX}{zlib.crc32(body.encode('utf-8')):08x}\n"


def decode_line(line: str) -> dict[str, Any]:
    """Parse one journal line, verifying its CRC suffix when present.

    Raises:
        ValueError: On any corruption - bad JSON, malformed suffix, or a
            CRC mismatch.  Callers map this to torn-tail recovery or
            :class:`~repro.errors.ServiceError` depending on position.
    """
    body, sep, suffix = line.rpartition(_CRC_SEP)
    if sep:
        if not suffix.startswith(_CRC_PREFIX):
            raise ValueError(f"bad integrity suffix {suffix!r}")
        recorded = int(suffix[len(_CRC_PREFIX):], 16)
        computed = zlib.crc32(body.encode("utf-8"))
        if recorded != computed:
            raise ValueError(
                f"crc32 mismatch: recorded {recorded:08x}, computed {computed:08x}"
            )
        payload = body
    else:
        payload = line
    try:
        event = json.loads(payload)
    except json.JSONDecodeError as error:
        raise ValueError(str(error)) from None
    if not isinstance(event, dict):
        raise ValueError("journal line is not a JSON object")
    return event


class JobStore:
    """Append-only JSONL journal of job events.

    Args:
        path: Journal file; created (with parents) on first append.
        fsync: Flush policy - ``never`` (OS decides, default) or
            ``always`` (fsync after every append; durable against power
            loss at a large throughput cost).
    """

    def __init__(self, path: str | Path, *, fsync: str = "never") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ServiceError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._tail_checked = False

    # -- writing -------------------------------------------------------------

    def append(self, event: dict[str, Any]) -> None:
        """Append one event object as a CRC32-suffixed JSON line."""
        self._write_line(encode_line(event))

    def _write_line(self, line: str) -> None:
        """Write one pre-encoded line (the chaos harness's override point)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self._tail_checked:
            self.repair_tail()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            if self.fsync == "always":
                handle.flush()
                os.fsync(handle.fileno())

    def repair_tail(self) -> int:
        """Truncate a torn final record in place; returns bytes removed.

        A crash mid-append leaves the journal ending in a partial line
        (or, with unlucky buffering, a complete-looking line whose CRC
        does not verify).  Repair drops that fragment so subsequent
        appends start on a clean record boundary.  Intact journals are
        left untouched.
        """
        self._tail_checked = True
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes()
        if not raw:
            return 0
        trimmed = raw[:-1] if raw.endswith(b"\n") else raw
        cut = trimmed.rfind(b"\n") + 1  # 0 when the file is a single record
        tail = trimmed[cut:]
        text = tail.decode("utf-8", errors="replace").strip()
        torn = False
        if text:
            try:
                decode_line(text)
            except ValueError:
                torn = True
        if torn:
            removed = len(raw) - cut
            with self.path.open("r+b") as handle:
                handle.truncate(cut)
            _LOG.warning(
                "repaired torn journal tail in %s: dropped %d byte(s)",
                self.path,
                removed,
            )
            return removed
        if not raw.endswith(b"\n"):
            # Final record is intact but unterminated; close it so the
            # next append starts a fresh line.
            with self.path.open("ab") as handle:
                handle.write(b"\n")
        return 0

    def record_submit(self, job: Job) -> None:
        self.append({
            "event": "submit",
            "id": job.job_id,
            "seq": job.seq,
            "at": job.submitted_at,
            "fingerprint": job.fingerprint,
            "footprint_bytes": job.footprint_bytes,
            "estimated_seconds": job.estimated_seconds,
            "spec": job.spec.to_dict(),
        })

    def record_transition(self, job: Job, at: float | None) -> None:
        self.append({
            "event": "transition",
            "id": job.job_id,
            "to": job.state.value,
            "at": at,
            "attempts": job.attempts,
        })

    def record_result(self, job: Job) -> None:
        assert job.result is not None
        self.append({
            "event": "result",
            "id": job.job_id,
            "cache_hit": job.cache_hit,
            "attempts": job.attempts,
            "result": job.result.to_dict(),
        })

    def record_error(self, job: Job, message: str) -> None:
        self.append({"event": "error", "id": job.job_id, "message": message})

    # -- reading -------------------------------------------------------------

    def iter_events(self) -> Iterator[dict[str, Any]]:
        """Yield events in journal order; a missing file yields nothing.

        A corrupt or truncated **final** record is treated as a torn
        tail: a warning is logged and replay stops at the last intact
        record.  Corruption before the tail raises - that cannot be a
        crash artifact of a single append.

        Raises:
            ServiceError: On an unparsable journal line before the tail.
        """
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        if not raw:
            return
        lines = raw.decode("utf-8", errors="replace").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        last_content = 0
        for index, line in enumerate(lines, start=1):
            if line.strip():
                last_content = index
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield decode_line(line)
            except ValueError as error:
                if lineno == last_content:
                    _LOG.warning(
                        "torn journal tail at %s:%d (%s); "
                        "replaying %d intact record(s)",
                        self.path,
                        lineno,
                        error,
                        lineno - 1,
                    )
                    return
                raise ServiceError(
                    f"{self.path}:{lineno}: corrupt journal line ({error})"
                ) from None

    def load(self) -> dict[str, Job]:
        """Replay the journal into jobs keyed by id, in submission order.

        Transitions are applied through the state machine, so a journal
        recording an illegal lifecycle is rejected rather than trusted.
        """
        jobs: dict[str, Job] = {}
        for event in self.iter_events():
            kind = event.get("event")
            if kind == "submit":
                spec = JobSpec.from_dict(event["spec"])
                job = Job(
                    job_id=event["id"],
                    seq=event["seq"],
                    spec=spec,
                    fingerprint=event.get("fingerprint", ""),
                    footprint_bytes=event.get("footprint_bytes", 0.0),
                    estimated_seconds=event.get("estimated_seconds"),
                    submitted_at=event.get("at", 0.0),
                )
                jobs[job.job_id] = job
            elif kind == "transition":
                job = self._known(jobs, event)
                job.attempts = event.get("attempts", job.attempts)
                job.transition(JobState(event["to"]), at=event.get("at"))
            elif kind == "result":
                job = self._known(jobs, event)
                job.cache_hit = event.get("cache_hit", False)
                job.attempts = event.get("attempts", job.attempts)
                job.result = JobResult.from_dict(event["result"])
            elif kind == "error":
                job = self._known(jobs, event)
                job.error = event["message"]
            else:
                raise ServiceError(f"unknown journal event {kind!r}")
        return jobs

    @staticmethod
    def _known(jobs: dict[str, Job], event: dict[str, Any]) -> Job:
        job = jobs.get(event.get("id", ""))
        if job is None:
            raise ServiceError(
                f"journal references unknown job {event.get('id')!r}"
            )
        return job

    def get(self, job_id: str) -> Job:
        """Load one job.

        Raises:
            JobNotFound: If the journal has no such job.
        """
        jobs = self.load()
        if job_id not in jobs:
            raise JobNotFound(f"no job {job_id!r} in {self.path}")
        return jobs[job_id]

    def next_seq(self) -> int:
        """The next submission sequence number for this journal."""
        jobs = self.load()
        return 1 + max((job.seq for job in jobs.values()), default=0)

    # -- compaction ----------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the journal as a minimal snapshot; returns events kept.

        The snapshot emits, per job in submission order, one ``submit``
        event plus the shortest legal transition path to its current
        state (with its current timestamps and attempt count), the
        ``result`` for finished jobs and the last ``error`` if any.
        Replaying the compacted journal yields jobs equal field-for-field
        to replaying the original - history is discarded, state is not.

        The rewrite is atomic (temp file + ``os.replace``) and fsynced
        regardless of the append policy, so a crash mid-compaction leaves
        either the old journal or the new one, never a hybrid.
        """
        jobs = self.load()
        lines: list[str] = []
        probe = JobStore(self.path)  # records built via the same encoders
        probe._write_line = lines.append  # type: ignore[method-assign]
        count = 0
        for job in sorted(jobs.values(), key=lambda j: j.seq):
            probe.record_submit(job)
            count += 1
            for state, at in self._minimal_path(job):
                snapshot = Job(
                    job_id=job.job_id, seq=job.seq, spec=job.spec,
                    state=state, attempts=job.attempts,
                )
                probe.record_transition(snapshot, at)
                count += 1
            if job.result is not None:
                probe.record_result(job)
                count += 1
            if job.error is not None:
                probe.record_error(job, job.error)
                count += 1
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as handle:
            handle.writelines(lines)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return count

    @staticmethod
    def _minimal_path(job: Job) -> list[tuple[JobState, float | None]]:
        """Shortest legal transition path reproducing ``job``'s state."""
        state = job.state
        if state is JobState.PENDING:
            if job.attempts == 0 and job.error is None:
                return []
            # A re-queued job (retry or recovery); the PENDING re-entry
            # resets the per-attempt timestamps, so None throughout.
            return [(JobState.ADMITTED, None), (JobState.PENDING, None)]
        if state is JobState.ADMITTED:
            return [(JobState.ADMITTED, job.admitted_at)]
        if state is JobState.RUNNING:
            return [
                (JobState.ADMITTED, job.admitted_at),
                (JobState.RUNNING, job.started_at),
            ]
        if state is JobState.CANCELLED:
            path: list[tuple[JobState, float | None]] = []
            if job.admitted_at is not None:
                path.append((JobState.ADMITTED, job.admitted_at))
            if job.started_at is not None:
                path.append((JobState.RUNNING, job.started_at))
            path.append((JobState.CANCELLED, job.finished_at))
            return path
        # SUCCEEDED / FAILED both sit at the end of the running path.
        return [
            (JobState.ADMITTED, job.admitted_at),
            (JobState.RUNNING, job.started_at),
            (state, job.finished_at),
        ]
