"""Pluggable scheduling policies: who runs next when a worker frees up.

A policy is a pure ordering over the PENDING queue - it never mutates jobs
and never blocks, so the scheduler can re-order on every dispatch pass.
Every policy breaks ties on the submission sequence number, which is what
makes single-worker runs fully deterministic regardless of policy.

* :class:`FifoPolicy` - strict submission order.
* :class:`PriorityPolicy` - higher ``spec.priority`` first.
* :class:`SjfPolicy` - shortest-estimated-job-first, using the modelled
  seconds the DES cost model (:meth:`QGpuSimulator.estimate_cost`) priced
  the job at on submission; unpriceable jobs sort last.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

from repro.errors import ServiceError
from repro.service.job import Job


class SchedulingPolicy(Protocol):
    """Ordering strategy over the pending queue."""

    name: str

    def order(self, pending: Sequence[Job]) -> list[Job]:
        """Return ``pending`` sorted so the next job to dispatch is first."""
        ...


class FifoPolicy:
    """First come, first served."""

    name = "fifo"

    def order(self, pending: Sequence[Job]) -> list[Job]:
        return sorted(pending, key=lambda job: job.seq)


class PriorityPolicy:
    """Higher ``spec.priority`` first; FIFO within a priority level."""

    name = "priority"

    def order(self, pending: Sequence[Job]) -> list[Job]:
        return sorted(pending, key=lambda job: (-job.spec.priority, job.seq))


class SjfPolicy:
    """Shortest estimated job first (non-preemptive SJF).

    Uses ``Job.estimated_seconds`` - the closed-form pipeline cost the
    service computed at submit time.  Jobs the cost model could not price
    (e.g. widths no engine fits) sort last so they cannot starve priceable
    work.
    """

    name = "sjf"

    def order(self, pending: Sequence[Job]) -> list[Job]:
        def key(job: Job) -> tuple[float, int]:
            cost = job.estimated_seconds
            return (cost if cost is not None else math.inf, job.seq)

        return sorted(pending, key=key)


POLICIES: dict[str, type] = {
    FifoPolicy.name: FifoPolicy,
    PriorityPolicy.name: PriorityPolicy,
    SjfPolicy.name: SjfPolicy,
}


def get_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by name.

    Raises:
        ServiceError: For an unknown policy name.
    """
    try:
        return POLICIES[name]()
    except KeyError:
        raise ServiceError(
            f"unknown scheduling policy {name!r} (choose from {sorted(POLICIES)})"
        ) from None
