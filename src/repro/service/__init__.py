"""Batch simulation job service.

Turns the blocking :class:`~repro.core.QGpuSimulator` into a servable
system: a job model with a validated lifecycle state machine, pluggable
scheduling policies (FIFO / priority / shortest-estimated-job-first),
admission control that bounds the aggregate resident footprint using the
capacity model, a worker pool, a content-addressed result cache with LRU
byte-budget eviction, a metrics registry, and a JSONL job journal for
cross-process ``status``/``cancel``.

A live service can additionally expose an HTTP observability endpoint
(:class:`ServiceHTTPServer`: ``/metrics`` Prometheus text, ``/healthz``,
``/jobs``) via ``repro serve-batch --http-port``.

See ``docs/service.md`` for the architecture and worked examples, and the
``repro serve-batch`` / ``submit`` / ``status`` / ``cancel`` CLI commands.
"""

from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.http import PROMETHEUS_CONTENT_TYPE, ServiceHTTPServer
from repro.service.job import (
    ALLOWED_TRANSITIONS,
    Job,
    JobResult,
    JobSpec,
    JobState,
    cache_key,
)
from repro.service.metrics import LogicalClock, MetricsRegistry, WallClock
from repro.service.scheduling import (
    FifoPolicy,
    POLICIES,
    PriorityPolicy,
    SchedulingPolicy,
    SjfPolicy,
    get_policy,
)
from repro.service.service import (
    BatchService,
    DEFAULT_CACHE_BUDGET,
    SERVICE_VERSIONS,
    execute_job,
    load_manifest,
)
from repro.service.store import JobStore

__all__ = [
    "ALLOWED_TRANSITIONS",
    "AdmissionController",
    "BatchService",
    "DEFAULT_CACHE_BUDGET",
    "FifoPolicy",
    "Job",
    "JobResult",
    "JobSpec",
    "JobState",
    "JobStore",
    "LogicalClock",
    "MetricsRegistry",
    "POLICIES",
    "PROMETHEUS_CONTENT_TYPE",
    "PriorityPolicy",
    "ResultCache",
    "ServiceHTTPServer",
    "SERVICE_VERSIONS",
    "SchedulingPolicy",
    "SjfPolicy",
    "WallClock",
    "cache_key",
    "execute_job",
    "get_policy",
    "load_manifest",
]
