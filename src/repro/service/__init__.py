"""Batch simulation job service.

Turns the blocking :class:`~repro.core.QGpuSimulator` into a servable
system: a job model with a validated lifecycle state machine, pluggable
scheduling policies (FIFO / priority / shortest-estimated-job-first),
admission control that bounds the aggregate resident footprint using the
capacity model, a worker pool, a content-addressed result cache with LRU
byte-budget eviction and CRC-verified entries, a metrics registry, and a
crash-safe JSONL job journal for cross-process ``status``/``cancel``.

The service self-heals: per-job deadlines with cooperative cancellation,
a watchdog :class:`~repro.service.supervision.Supervisor` reaping hung
workers, per-fingerprint circuit breakers failing repeat offenders fast,
torn-tail-tolerant journal replay with :meth:`JobStore.compact`, and
:meth:`BatchService.recover` for end-to-end restart recovery.  The chaos
harness (:mod:`repro.service.chaos`, ``repro chaos``) soak-tests all of
it with seeded kill-restart-recover cycles.

A live service can additionally expose an HTTP observability endpoint
(:class:`ServiceHTTPServer`: ``/metrics`` Prometheus text, ``/healthz``,
``/livez``, ``/readyz``, ``/jobs``) via ``repro serve-batch --http-port``.

See ``docs/service.md`` for the architecture and worked examples, and the
``repro serve-batch`` / ``submit`` / ``status`` / ``cancel`` CLI commands.
"""

from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.http import PROMETHEUS_CONTENT_TYPE, ServiceHTTPServer
from repro.service.job import (
    ALLOWED_TRANSITIONS,
    Job,
    JobResult,
    JobSpec,
    JobState,
    cache_key,
)
from repro.service.metrics import LogicalClock, MetricsRegistry, WallClock
from repro.service.scheduling import (
    FifoPolicy,
    POLICIES,
    PriorityPolicy,
    SchedulingPolicy,
    SjfPolicy,
    get_policy,
)
from repro.service.service import (
    BatchService,
    DEFAULT_CACHE_BUDGET,
    SERVICE_VERSIONS,
    execute_job,
    load_manifest,
)
from repro.service.store import FSYNC_POLICIES, JobStore
from repro.service.supervision import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    SupervisionConfig,
    Supervisor,
)

__all__ = [
    "ALLOWED_TRANSITIONS",
    "AdmissionController",
    "BatchService",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_CACHE_BUDGET",
    "FSYNC_POLICIES",
    "FifoPolicy",
    "Job",
    "JobResult",
    "JobSpec",
    "JobState",
    "JobStore",
    "LogicalClock",
    "MetricsRegistry",
    "POLICIES",
    "PROMETHEUS_CONTENT_TYPE",
    "PriorityPolicy",
    "ResultCache",
    "ServiceHTTPServer",
    "SERVICE_VERSIONS",
    "SchedulingPolicy",
    "SjfPolicy",
    "SupervisionConfig",
    "Supervisor",
    "WallClock",
    "cache_key",
    "execute_job",
    "get_policy",
    "load_manifest",
]
