"""Admission control: bound the aggregate resident footprint of running jobs.

The service prices every job's host footprint with the capacity model
(:func:`repro.analysis.capacity.host_footprint_bytes`) and refuses to let
the sum of *admitted* (running) footprints exceed a byte budget.  A job
that would overcommit right now stays queued and is retried on the next
dispatch pass; a job whose footprint alone exceeds the entire budget can
never run and is rejected with :class:`~repro.errors.AdmissionError`.

The controller is bookkeeping only - it is always called from the
scheduler thread, so it needs no locking - and it tracks the high-water
mark (``peak_bytes``) so tests and metrics can *prove* the bound held.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AdmissionError, ServiceError


@dataclass
class AdmissionController:
    """Byte-budget gate over concurrently admitted jobs.

    Attributes:
        budget_bytes: Aggregate resident-byte ceiling across admitted jobs.
        admitted: Footprint of each currently admitted job, by job id.
        peak_bytes: Largest aggregate footprint ever admitted at once.
        deferrals: Dispatch attempts that were queued for lack of budget.
        rejections: Jobs rejected because they can never fit.
    """

    budget_bytes: float
    admitted: dict[str, float] = field(default_factory=dict)
    peak_bytes: float = 0.0
    deferrals: int = 0
    rejections: int = 0

    def __post_init__(self) -> None:
        if self.budget_bytes <= 0:
            raise ServiceError(
                f"admission budget must be positive, got {self.budget_bytes}"
            )

    @property
    def in_use_bytes(self) -> float:
        return sum(self.admitted.values())

    @property
    def available_bytes(self) -> float:
        return self.budget_bytes - self.in_use_bytes

    def check(self, footprint_bytes: float) -> None:
        """Reject footprints that can never be admitted.

        Raises:
            AdmissionError: If ``footprint_bytes`` exceeds the entire budget.
        """
        if footprint_bytes > self.budget_bytes:
            self.rejections += 1
            raise AdmissionError(
                f"job footprint {footprint_bytes:.0f} B exceeds the service "
                f"budget of {self.budget_bytes:.0f} B - it can never be admitted"
            )

    def try_admit(self, job_id: str, footprint_bytes: float) -> bool:
        """Reserve ``footprint_bytes`` for ``job_id`` if the budget allows.

        Returns False (and counts a deferral) when admitting now would
        overcommit; the caller should leave the job queued.

        Raises:
            AdmissionError: If the footprint can never fit (see :meth:`check`).
            ServiceError: If ``job_id`` is already admitted.
        """
        self.check(footprint_bytes)
        if job_id in self.admitted:
            raise ServiceError(f"job {job_id} is already admitted")
        if footprint_bytes > self.available_bytes:
            self.deferrals += 1
            return False
        self.admitted[job_id] = footprint_bytes
        self.peak_bytes = max(self.peak_bytes, self.in_use_bytes)
        return True

    def release(self, job_id: str) -> None:
        """Return ``job_id``'s reservation to the budget.

        Raises:
            ServiceError: If ``job_id`` holds no reservation.
        """
        if job_id not in self.admitted:
            raise ServiceError(f"job {job_id} holds no admission reservation")
        del self.admitted[job_id]

    def snapshot(self) -> dict[str, float | int]:
        """Counters for the metrics export."""
        return {
            "budget_bytes": self.budget_bytes,
            "in_use_bytes": self.in_use_bytes,
            "peak_bytes": self.peak_bytes,
            "deferrals": self.deferrals,
            "rejections": self.rejections,
        }
