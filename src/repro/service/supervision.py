"""Watchdog supervision and circuit breaking for the batch service.

Two self-healing mechanisms live here:

* The :class:`Supervisor` is a daemon thread watching every RUNNING job's
  :class:`~repro.reliability.cancellation.CancellationToken`.  Workers
  heartbeat the token once per gate; the supervisor reaps a job whose
  deadline has passed or whose heartbeat has gone stale (a stalled
  worker), by *cancelling the token* - reaping is cooperative, the worker
  raises :class:`~repro.errors.JobCancelled` at its next poll and the
  coordinator routes the failure through the normal ``FAILED -> PENDING``
  retry edge with backoff.
* A :class:`CircuitBreaker` per circuit fingerprint
  (CLOSED -> OPEN -> HALF_OPEN) fails repeat offenders fast: after
  ``failure_threshold`` consecutive failures the breaker opens and
  further attempts for that fingerprint are rejected immediately instead
  of burning retry budget; after ``cooldown_seconds`` one probe is let
  through (HALF_OPEN) and its outcome closes or re-opens the breaker.

Neither mechanism mutates job state itself - the coordinator stays the
single writer.  The supervisor only flips tokens; the breaker only
answers ``decision()`` queries during dispatch.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.errors import ServiceError
from repro.reliability.cancellation import CancellationToken

#: Cancellation kinds the watchdog uses (vs. ``user`` / ``shutdown``).
REAP_KINDS = ("deadline", "stall")


# -- circuit breaker --------------------------------------------------------


class BreakerState(str, Enum):
    """Circuit-breaker states (the classic three-state machine)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning.

    Attributes:
        failure_threshold: Consecutive failures (per fingerprint) that
            open the breaker.  The default sits above the default retry
            budget so plain retry exhaustion never trips it.
        cooldown_seconds: Time an OPEN breaker waits before letting one
            probe through (HALF_OPEN).
    """

    failure_threshold: int = 5
    cooldown_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_seconds < 0:
            raise ServiceError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )


class CircuitBreaker:
    """Failure tracker for one circuit fingerprint."""

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.probe_inflight = False

    def decision(self, now: float) -> str:
        """``allow`` / ``defer`` / ``reject`` for one dispatch attempt.

        ``defer`` means a HALF_OPEN probe is already in flight: hold the
        job in the queue and let the probe's outcome decide.
        """
        if self.state is BreakerState.CLOSED:
            return "allow"
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            if now - self.opened_at < self.config.cooldown_seconds:
                return "reject"
            self.state = BreakerState.HALF_OPEN
            self.probe_inflight = False
        if self.probe_inflight:
            return "defer"
        self.probe_inflight = True
        return "allow"

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.probe_inflight = False
        self.state = BreakerState.CLOSED
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        self.probe_inflight = False
        if (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.config.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now


class BreakerBoard:
    """All per-fingerprint breakers plus transition accounting.

    Args:
        config: Shared breaker tuning.
        on_transition: Callback ``(fingerprint, old_state, new_state)``
            invoked whenever a breaker changes state (the service counts
            these into its metrics).
        now: Injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        on_transition: Callable[[str, BreakerState, BreakerState], None] | None = None,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._on_transition = on_transition
        self._now = now

    def _get(self, fingerprint: str) -> CircuitBreaker:
        breaker = self._breakers.get(fingerprint)
        if breaker is None:
            breaker = self._breakers[fingerprint] = CircuitBreaker(self.config)
        return breaker

    def _tracked(self, fingerprint: str, action: Callable[[CircuitBreaker], str | None]):
        breaker = self._get(fingerprint)
        before = breaker.state
        outcome = action(breaker)
        if breaker.state is not before and self._on_transition is not None:
            self._on_transition(fingerprint, before, breaker.state)
        return outcome

    def decision(self, fingerprint: str) -> str:
        """``allow`` / ``defer`` / ``reject`` for one dispatch attempt."""
        return self._tracked(fingerprint, lambda b: b.decision(self._now()))

    def record_success(self, fingerprint: str) -> None:
        self._tracked(fingerprint, lambda b: b.record_success())

    def record_failure(self, fingerprint: str) -> None:
        self._tracked(fingerprint, lambda b: b.record_failure(self._now()))

    def state_counts(self) -> dict[str, int]:
        """Breaker count per state, for gauges and ``/readyz``."""
        counts = {state.value: 0 for state in BreakerState}
        for breaker in self._breakers.values():
            counts[breaker.state.value] += 1
        return counts

    def state_of(self, fingerprint: str) -> BreakerState:
        breaker = self._breakers.get(fingerprint)
        return breaker.state if breaker is not None else BreakerState.CLOSED


# -- watchdog supervisor ----------------------------------------------------


@dataclass(frozen=True)
class SupervisionConfig:
    """Watchdog tuning.

    Attributes:
        enabled: Master switch (the bench compares enabled vs. disabled).
        poll_interval_seconds: Supervisor scan period.
        stall_timeout_seconds: Heartbeat staleness that counts as a hang.
    """

    enabled: bool = True
    poll_interval_seconds: float = 0.05
    stall_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.poll_interval_seconds <= 0:
            raise ServiceError(
                f"poll_interval_seconds must be positive, "
                f"got {self.poll_interval_seconds}"
            )
        if self.stall_timeout_seconds <= 0:
            raise ServiceError(
                f"stall_timeout_seconds must be positive, "
                f"got {self.stall_timeout_seconds}"
            )


@dataclass
class RunningEntry:
    """One supervised RUNNING job."""

    job_id: str
    token: CancellationToken
    deadline_at: float | None  # monotonic instant, None = no deadline
    started_at: float = field(default_factory=time.monotonic)


class Supervisor:
    """Daemon thread reaping hung and deadline-exceeded workers.

    Args:
        config: Watchdog tuning.
        on_reap: Callback ``(job_id, kind)`` with ``kind`` in
            :data:`REAP_KINDS`, invoked once per reaped job (the service
            counts ``watchdog.reaps`` / ``deadline.kills`` /
            ``stall.kills`` here).
    """

    def __init__(
        self,
        config: SupervisionConfig | None = None,
        on_reap: Callable[[str, str], None] | None = None,
    ) -> None:
        self.config = config if config is not None else SupervisionConfig()
        self._on_reap = on_reap
        self._entries: dict[str, RunningEntry] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.last_scan_at: float | None = None
        self.reaps = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="job-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    @property
    def alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- registration (coordinator thread) ---------------------------------

    def watch(
        self,
        job_id: str,
        token: CancellationToken,
        deadline_seconds: float | None = None,
    ) -> None:
        """Begin supervising one RUNNING job."""
        now = time.monotonic()
        entry = RunningEntry(
            job_id=job_id,
            token=token,
            deadline_at=now + deadline_seconds if deadline_seconds else None,
            started_at=now,
        )
        with self._lock:
            self._entries[job_id] = entry

    def release(self, job_id: str) -> None:
        """Stop supervising a job (it completed, failed, or was reaped)."""
        with self._lock:
            self._entries.pop(job_id, None)

    def watched(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- scanning ----------------------------------------------------------

    def scan(self, now: float | None = None) -> int:
        """One reap pass; returns jobs reaped.  Public for tests."""
        now = time.monotonic() if now is None else now
        self.last_scan_at = now
        with self._lock:
            entries = list(self._entries.values())
        reaped = 0
        for entry in entries:
            if entry.deadline_at is not None and now >= entry.deadline_at:
                kind = "deadline"
                reason = (
                    f"deadline exceeded: attempt ran past its "
                    f"{entry.deadline_at - entry.started_at:.3f}s budget"
                )
            elif now - entry.token.last_beat >= self.config.stall_timeout_seconds:
                kind = "stall"
                reason = (
                    f"worker stalled: no heartbeat for "
                    f"{now - entry.token.last_beat:.3f}s"
                )
            else:
                continue
            if entry.token.cancel(reason, kind=kind):
                # First cancel wins: count each reap exactly once, and
                # stop rescanning a job that is already on its way out.
                reaped += 1
                self.reaps += 1
                if self._on_reap is not None:
                    self._on_reap(entry.job_id, kind)
            self.release(entry.job_id)
        return reaped

    def _loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval_seconds):
            self.scan()
