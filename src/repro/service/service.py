"""The batch simulation service: admission + scheduling + workers + cache.

:class:`BatchService` turns the blocking :class:`~repro.core.QGpuSimulator`
into a servable system.  Jobs are submitted as declarative
:class:`~repro.service.job.JobSpec` records, priced up-front (circuit
fingerprint, host footprint from the capacity model, modelled runtime from
the DES cost model), and drained by :meth:`BatchService.run_until_complete`:

1. a **dispatch pass** orders the PENDING queue with the scheduling policy,
   serves duplicates straight from the content-addressed result cache,
   holds back jobs whose footprint would overcommit the admission budget,
   and hands admitted jobs to the thread pool;
2. **completions** are processed in deterministic (submission) order:
   successes populate the cache and journal, failures consult the
   reliability policy for the ``FAILED -> PENDING`` retry edge.

All job-state mutation happens on the coordinator thread - workers are
pure functions from spec to result payload - so the service needs no
locks.  With ``workers=1`` the whole schedule is deterministic and the
logical clock makes the exported metrics byte-identical across runs.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.capacity import host_footprint_bytes
from repro.core.planner import QGPU_BASIS_TRACKING, QGPU_DIAGONAL_AWARE
from repro.core.simulator import QGpuSimulator
from repro.core.versions import VERSIONS_BY_NAME, VersionConfig
from repro.errors import (
    AdmissionError,
    FaultInjectionError,
    JobCancelled,
    JobNotFound,
    ReproError,
    ServiceError,
    SimulationError,
)
from repro.hardware.specs import MachineSpec, PAPER_MACHINE
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.reliability.cancellation import USER_KINDS, CancellationToken
from repro.reliability.faults import FaultPlan
from repro.reliability.policy import DEFAULT_POLICY, RecoveryPolicy
from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.job import Job, JobResult, JobSpec, JobState
from repro.service.metrics import LogicalClock, MetricsRegistry, WallClock
from repro.service.scheduling import SchedulingPolicy, get_policy
from repro.service.store import JobStore
from repro.service.supervision import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    SupervisionConfig,
    Supervisor,
)
from repro.statevector.measure import sample_counts
from repro.statevector.parallel import resolve_workers

#: Default result-cache budget (bytes of canonical-JSON payloads).
DEFAULT_CACHE_BUDGET = 16 * 1024 * 1024

#: Versions servable by name: the paper's six plus the planner extensions.
SERVICE_VERSIONS: dict[str, VersionConfig] = {
    **VERSIONS_BY_NAME,
    QGPU_DIAGONAL_AWARE.name: QGPU_DIAGONAL_AWARE,
    QGPU_BASIS_TRACKING.name: QGPU_BASIS_TRACKING,
}


def execute_job(
    spec: JobSpec,
    machine: MachineSpec,
    sim_recovery: RecoveryPolicy,
    sim_workers: int | str | None = 1,
    tracer: Tracer | None = None,
    job_id: str | None = None,
    parent_span: int | None = None,
    cancel: CancellationToken | None = None,
    chaos: FaultPlan | None = None,
    job_seq: int = 0,
    attempt: int = 0,
) -> JobResult:
    """Run one job to completion (worker-thread body).

    Pure with respect to service state: reads only its arguments, mutates
    no job bookkeeping, and returns the result payload; any
    :class:`ReproError` propagates to the coordinator as the job's
    failure.  ``sim_workers`` is the functional engine's chunk-worker knob
    (see :class:`~repro.core.QGpuSimulator`); the default ``1`` keeps
    every job on the bit-exact serial path.  When a ``tracer`` is given
    the whole job becomes one span on this worker thread's lane (parented
    to the coordinator's ``serve`` span via ``parent_span``), with the
    simulator's span tree nested inside.

    ``cancel`` is this attempt's cancellation token: the simulator's gate
    loop polls it (heartbeat + cooperative kill).  ``chaos`` is the
    *service-level* fault plan - distinct from the spec's in-run plan -
    consulted once per attempt for injected worker crashes and stalls,
    keyed deterministically on ``(job_seq, attempt)``.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    if chaos is not None and chaos.worker_crash(job_seq, attempt):
        raise FaultInjectionError(
            f"chaos: worker crash injected (job seq {job_seq}, attempt {attempt})"
        )
    if chaos is not None and chaos.worker_stall(job_seq, attempt):
        # Hang without heartbeating: the watchdog must reap us.  The loop
        # only *reads* the token, so the heartbeat stays frozen at the
        # attempt's start and staleness accrues.
        while cancel is not None and not cancel.cancelled:
            time.sleep(0.002)
        if cancel is not None:
            cancel.raise_if_cancelled()
        raise FaultInjectionError(
            f"chaos: worker stall injected with no supervision "
            f"(job seq {job_seq}, attempt {attempt})"
        )
    circuit = spec.build_circuit()
    version = SERVICE_VERSIONS[spec.version]
    plan = FaultPlan.from_spec(spec.fault_plan) if spec.fault_plan else None
    simulator = QGpuSimulator(
        machine=machine,
        version=version,
        chunk_bits=spec.chunk_bits,
        fault_plan=plan,
        reliability_policy=sim_recovery,
        workers=sim_workers,
        tracer=tracer,
        backend=spec.backend,
        precision=spec.precision,
    )
    with tracer.span(
        f"job:{job_id or spec.display_name}", parent=parent_span, job=job_id
    ):
        outcome = simulator.run(circuit, cancel=cancel)
        counts: dict[str, int] = {}
        if outcome.backend == "statevector":
            amplitudes = outcome.amplitudes
            state_sha256 = hashlib.sha256(amplitudes.tobytes()).hexdigest()
            if spec.shots > 0:
                sample_state = amplitudes
                if amplitudes.dtype != np.complex128:
                    # Renormalise the widened single-precision state so
                    # the sampler's normalisation guard (1e-6) never trips
                    # on accumulated complex64 rounding the norm bound
                    # deliberately tolerates.  The double path is left
                    # byte-for-byte untouched.
                    sample_state = amplitudes.astype(np.complex128)
                    sample_state /= np.linalg.norm(sample_state)
                counts = {
                    str(outcome_index): count
                    for outcome_index, count in sample_counts(
                        sample_state, shots=spec.shots, seed=spec.seed
                    ).items()
                }
        else:
            # Non-dense backends: native counts and a digest over the
            # native representation (a tableau has no amplitude vector).
            execution = outcome.state
            state_sha256 = execution.digest()
            if spec.shots > 0:
                counts = {
                    str(outcome_index): count
                    for outcome_index, count in execution.sample_counts(
                        spec.shots, seed=spec.seed
                    ).items()
                }
    report = outcome.reliability
    return JobResult(
        counts=counts,
        state_sha256=state_sha256,
        pruned_fraction=outcome.pruned_fraction,
        num_qubits=circuit.num_qubits,
        chunk_updates_total=outcome.chunk_updates_total,
        chunk_updates_skipped=outcome.chunk_updates_skipped,
        transfers=report.transfers if report is not None else 0,
        retries=report.retries if report is not None else 0,
        faults=sum(report.faults.values()) if report is not None else 0,
        backend=outcome.backend,
        precision=outcome.precision,
        precision_fallback=outcome.precision_fallback,
        truncation_error=outcome.truncation_error,
    )


class BatchService:
    """Admission-controlled, cached, multi-worker batch simulation service.

    Args:
        machine: Hardware model used for footprint and cost estimates and
            for the timed engine.
        policy: Scheduling policy instance or name (``fifo`` / ``priority``
            / ``sjf``).
        workers: Concurrent worker threads.  ``1`` selects deterministic
            mode: a logical event clock replaces wall time, so metrics are
            byte-identical across runs.
        memory_budget_bytes: Admission ceiling on the aggregate estimated
            resident bytes of running jobs (default: the machine's host
            DRAM).
        cache_budget_bytes: Result-cache byte budget.
        recovery: Job-level retry policy: a failed job re-enters the queue
            while ``on_fault == "retry"`` and its attempts are below
            ``max_transfer_attempts``; each retry charges the policy's
            backoff to the metrics (modelled, never slept).
        sim_recovery: In-run reliability policy handed to the simulator
            (fault detection/recovery inside one attempt).
        sim_workers: Chunk-worker threads *inside* each simulation (the
            functional engine's ``workers`` knob).  Independent of
            ``workers``, which is the number of concurrent jobs; the
            default ``1`` keeps every job bit-deterministic.
        seed: Run seed recorded in the metrics and used as the default for
            specs that carry none.
        journal: Optional :class:`JobStore` (or path) receiving every job
            event for cross-process ``status``/``cancel``.
        tracer: Optional :class:`~repro.obs.Tracer`.  The service adopts
            the tracer's clock (so span timestamps and job timestamps
            share one timeline) and backs its metrics with the tracer's
            counters, merging per-job simulator stats into the same
            export; each job becomes a span on its worker thread's lane.
        supervision: Watchdog configuration (deadline and stall reaping
            by a daemon supervisor thread).  ``None`` uses the defaults
            (enabled); pass ``SupervisionConfig(enabled=False)`` to
            disable supervision entirely.
        breaker: Per-fingerprint circuit-breaker tuning; ``None`` uses
            :class:`~repro.service.supervision.BreakerConfig` defaults.
        chaos_plan: Service-level fault plan consulted for injected
            worker crashes, worker stalls and cache corruption.  This is
            the chaos harness's knob, separate from each spec's in-run
            ``fault_plan``.
    """

    def __init__(
        self,
        *,
        machine: MachineSpec = PAPER_MACHINE,
        policy: SchedulingPolicy | str = "fifo",
        workers: int = 4,
        memory_budget_bytes: float | None = None,
        cache_budget_bytes: int = DEFAULT_CACHE_BUDGET,
        recovery: RecoveryPolicy = DEFAULT_POLICY,
        sim_recovery: RecoveryPolicy = DEFAULT_POLICY,
        sim_workers: int | str | None = 1,
        seed: int = 0,
        journal: JobStore | str | Path | None = None,
        tracer: Tracer | None = None,
        supervision: SupervisionConfig | None = None,
        breaker: BreakerConfig | None = None,
        chaos_plan: FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"need at least one worker, got {workers}")
        resolve_workers(sim_workers, 1)  # fail fast on a bad knob
        self.machine = machine
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.workers = workers
        self.deterministic = workers == 1
        self.admission = AdmissionController(
            budget_bytes=(
                memory_budget_bytes
                if memory_budget_bytes is not None
                else float(machine.host_memory_bytes)
            )
        )
        self.cache = ResultCache(cache_budget_bytes)
        self.recovery = recovery
        self.sim_recovery = sim_recovery
        self.sim_workers = sim_workers
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer is not NULL_TRACER:
            # One timeline: job timestamps and span timestamps come from
            # the same clock, and metrics count into the tracer's registry
            # so simulator stats and scheduling counters export together.
            self.clock = self.tracer.clock
            self.metrics = MetricsRegistry(counters=self.tracer.counters)
        else:
            self.clock = LogicalClock() if self.deterministic else WallClock()
            self.metrics = MetricsRegistry()
        self.journal = (
            journal if isinstance(journal, (JobStore, type(None))) else JobStore(journal)
        )
        self._jobs: dict[str, Job] = {}
        self._next_seq = self.journal.next_seq() if self.journal is not None else 1
        self._inflight: dict[str, str] = {}  # cache key -> running job id
        self.supervision = (
            supervision if supervision is not None else SupervisionConfig()
        )
        self.supervisor = Supervisor(self.supervision, on_reap=self._on_reap)
        self.breakers = BreakerBoard(breaker, on_transition=self._on_breaker)
        self.chaos_plan = chaos_plan
        self._tokens: dict[str, CancellationToken] = {}  # job id -> RUNNING token
        self._cancel_lock = threading.Lock()  # cancel() vs. dispatch race
        self._cache_puts = 0  # chaos cache-corruption ordinal

    def _on_reap(self, job_id: str, kind: str) -> None:
        """Supervisor callback (supervisor thread): count one reap."""
        self.metrics.count("watchdog.reaps")
        self.metrics.count(f"{kind}.kills")  # deadline.kills / stall.kills

    def _on_breaker(self, fingerprint: str, old: BreakerState, new: BreakerState) -> None:
        """Breaker-board callback (coordinator thread): count a transition."""
        self.metrics.count(f"breaker.{new.value}_transitions")

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec | dict[str, Any]) -> Job:
        """Register a job, pricing it and vetting it against the budget.

        Raises:
            AdmissionError: If the job's estimated footprint exceeds the
                entire admission budget (it could never run).
            ServiceError: For malformed specs or unknown versions.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        if spec.version not in SERVICE_VERSIONS:
            raise ServiceError(
                f"unknown version {spec.version!r} "
                f"(choose from {sorted(SERVICE_VERSIONS)})"
            )
        if spec.fault_plan and (
            spec.backend != "statevector" or spec.precision != "double"
        ):
            raise ServiceError(
                "fault injection requires backend='statevector' and "
                "precision='double' (guards and checkpoints are "
                "dense-double only)"
            )
        circuit = spec.build_circuit()
        version = SERVICE_VERSIONS[spec.version]
        if spec.backend == "statevector" and spec.precision == "double":
            # The pre-planner path, byte-for-byte: dense footprint from
            # the capacity model, runtime from the timed DES model.
            footprint = host_footprint_bytes(circuit.num_qubits)
            self.admission.check(footprint)  # reject-never-fits at the door
            try:
                estimated = QGpuSimulator(
                    machine=self.machine, version=version
                ).estimate_cost(circuit)
            except SimulationError:
                estimated = None
        else:
            # Planner-routed jobs: admission and SJF price the *selected*
            # backend, not the dense engine the old service assumed.
            from repro.planner import PlannerConfig, plan as plan_circuit

            config = PlannerConfig(
                machine=self.machine,
                backend=spec.backend,
                precision=spec.precision,
            )
            if self.tracer.enabled:
                with self.tracer.span(
                    "plan", stage="plan", circuit=circuit.name
                ):
                    chosen = plan_circuit(circuit, config)
            else:
                chosen = plan_circuit(circuit, config)
            self.metrics.count(f"planner.selected.{chosen.backend}")
            footprint = float(chosen.estimated_bytes)
            self.admission.check(footprint)
            estimated = chosen.estimated_seconds
        seq = self._next_seq
        self._next_seq += 1
        job = Job(
            job_id=f"j{seq:04d}",
            seq=seq,
            spec=spec,
            fingerprint=circuit.fingerprint(),
            footprint_bytes=footprint,
            estimated_seconds=estimated,
            submitted_at=self.clock.tick(),
        )
        self._jobs[job.job_id] = job
        self.metrics.count("jobs_submitted")
        if self.journal is not None:
            self.journal.record_submit(job)
        return job

    def adopt_pending(self) -> list[Job]:
        """Adopt the journal's PENDING jobs into this service instance.

        Used by ``repro serve-batch --journal``: jobs submitted by another
        process are scheduled here; terminal jobs are left untouched.

        Raises:
            ServiceError: If the service has no journal.
        """
        if self.journal is None:
            raise ServiceError("adopt_pending requires a journal")
        adopted = []
        for job in self.journal.load().values():
            if job.state is JobState.PENDING and job.job_id not in self._jobs:
                self._jobs[job.job_id] = job
                self.metrics.count("jobs_adopted")
                adopted.append(job)
        return adopted

    def recover(self) -> list[Job]:
        """Full crash recovery from the journal; returns re-runnable jobs.

        Beyond :meth:`adopt_pending`'s PENDING adoption, this:

        * repairs a torn journal tail (so subsequent appends are clean);
        * re-queues jobs journaled RUNNING at crash time - the attempt
          died with the process, so they take ``RUNNING -> FAILED ->
          PENDING`` (charging the attempt already journaled);
        * re-queues ADMITTED jobs via ``ADMITTED -> PENDING`` without
          charging an attempt (admission died before dispatch);
        * re-queues FAILED jobs with retry budget left (the crash landed
          between the failure and the retry decision);
        * seeds the result cache from journaled SUCCEEDED results, so
          duplicate submissions after restart are served without
          recomputing (no duplicated side effects).

        Raises:
            ServiceError: If the service has no journal.
        """
        if self.journal is None:
            raise ServiceError("recover requires a journal")
        self.journal.repair_tail()
        self.metrics.count("recovery.replays")
        recovered: list[Job] = []
        for job in self.journal.load().values():
            if job.job_id in self._jobs:
                continue
            if job.state is JobState.SUCCEEDED and job.result is not None:
                if not self.cache.peek(job.cache_key):
                    self.cache.put(job.cache_key, job.result)
                    self.metrics.count("recovery.cache_seeded")
                continue
            if job.state is JobState.RUNNING:
                job.error = "recovered: service crashed while job was RUNNING"
                job.transition(JobState.FAILED, at=self.clock.tick())
                self._journal_transition(job, job.finished_at)
                self.journal.record_error(job, job.error)
                if (
                    self.recovery.on_fault != "retry"
                    or job.attempts >= self.recovery.max_transfer_attempts
                ):
                    self.metrics.count("jobs_failed")
                    self.metrics.record_job(job)
                    continue  # out of budget: stays FAILED
                job.transition(JobState.PENDING)
                self._journal_transition(job, None)
            elif job.state is JobState.ADMITTED:
                job.transition(JobState.PENDING)
                self._journal_transition(job, None)
            elif job.state is JobState.FAILED:
                if (
                    self.recovery.on_fault != "retry"
                    or job.attempts >= self.recovery.max_transfer_attempts
                ):
                    continue  # out of budget: stays FAILED
                job.transition(JobState.PENDING)
                self._journal_transition(job, None)
            elif job.state is not JobState.PENDING:
                continue  # CANCELLED (or other terminal): nothing to do
            self._jobs[job.job_id] = job
            self.metrics.count(
                "jobs_adopted" if job.attempts == 0 and job.error is None
                else "recovery.requeued"
            )
            recovered.append(job)
        return recovered

    def job(self, job_id: str) -> Job:
        """Look up a job by id.

        Raises:
            JobNotFound: If no such job was submitted here.
        """
        if job_id not in self._jobs:
            raise JobNotFound(f"no job {job_id!r} in this service")
        return self._jobs[job_id]

    @property
    def jobs(self) -> list[Job]:
        return sorted(self._jobs.values(), key=lambda job: job.seq)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job.

        A PENDING or ADMITTED job is cancelled synchronously - it is
        guaranteed never to execute after this returns (the cancel lock
        closes the race against a concurrent dispatch pass).  A RUNNING
        job is cancelled *cooperatively*: its token is flipped, the
        worker stops at its next gate, and the job transitions to
        CANCELLED when the coordinator processes the completion.

        Raises:
            JobNotFound: Unknown id.
            ServiceError: If the job is already terminal.
        """
        job = self.job(job_id)
        with self._cancel_lock:
            if job.state in (JobState.PENDING, JobState.ADMITTED):
                job.transition(JobState.CANCELLED, at=self.clock.tick())
                self.metrics.count("jobs_cancelled")
                self.metrics.record_job(job)
                if self.journal is not None:
                    self.journal.record_transition(job, job.finished_at)
                return job
            if job.state is JobState.RUNNING:
                token = self._tokens.get(job_id)
                if token is not None:
                    token.cancel(f"job {job_id} cancelled by user", kind="user")
                self.metrics.count("jobs_cancel_requested")
                return job
        raise ServiceError(
            f"job {job_id} is {job.state.value}; terminal jobs cannot be cancelled"
        )

    # -- scheduling loop -----------------------------------------------------

    def run_until_complete(self) -> dict[str, Any]:
        """Drain the queue and return the metrics snapshot.

        While draining, the watchdog supervisor (when enabled) reaps
        deadline-exceeded and stalled workers.  If the coordinator itself
        dies - a crash, or the chaos harness's simulated one - every
        outstanding worker token is cancelled with ``kind="shutdown"`` so
        the pool drains promptly instead of hanging on live jobs.
        """
        if self.supervision.enabled:
            self.supervisor.start()
        try:
            with self.tracer.span("serve", stage="schedule", jobs=len(self._jobs)):
                with ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="job-worker"
                ) as pool:
                    try:
                        self._drain(pool)
                    except BaseException:
                        for token in list(self._tokens.values()):
                            token.cancel("service shutting down", kind="shutdown")
                        raise
        finally:
            if self.supervision.enabled:
                self.supervisor.stop()
        return self.snapshot()

    def _drain(self, pool: ThreadPoolExecutor) -> None:
        """The dispatch/complete loop (coordinator thread)."""
        futures: dict[Future, str] = {}
        while True:
            self._dispatch(pool, futures)
            if not futures:
                stuck = [
                    j for j in self._jobs.values() if j.state is JobState.PENDING
                ]
                if stuck:  # pragma: no cover - defensive; vetted at submit
                    raise ServiceError(
                        f"{len(stuck)} pending job(s) cannot be dispatched"
                    )
                break
            done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
            for future in sorted(done, key=lambda f: self._jobs[futures[f]].seq):
                self._complete(future, futures.pop(future))

    def _dispatch(self, pool: ThreadPoolExecutor, futures: dict[Future, str]) -> None:
        """One scheduling pass: fill free worker slots from the queue."""
        pending = [job for job in self._jobs.values() if job.state is JobState.PENDING]
        self.metrics.observe_queue_depth(len(pending))
        for job in self.policy.order(pending):
            key = job.cache_key
            if self.cache.peek(key) and self._complete_from_cache(job, key):
                continue
            if key in self._inflight:
                # A duplicate is computing right now; next pass hits the cache.
                continue
            if len(futures) >= self.workers:
                break
            try:
                admitted = self.admission.try_admit(job.job_id, job.footprint_bytes)
            except AdmissionError as error:  # pragma: no cover - vetted at submit
                self._fail_terminal(job, str(error))
                continue
            if not admitted:
                continue  # queued: would overcommit the byte budget right now
            decision = self.breakers.decision(job.fingerprint)
            if decision != "allow":
                self.admission.release(job.job_id)
                if decision == "reject":
                    self.metrics.count("breaker.rejections")
                    self._fail_terminal(
                        job,
                        f"circuit breaker open for fingerprint "
                        f"{job.fingerprint[:12]}: failing fast",
                    )
                # "defer": a HALF_OPEN probe is in flight; its outcome
                # decides whether this job dispatches or fails fast.
                continue
            with self._cancel_lock:
                if job.state is not JobState.PENDING:
                    # cancel() won the race after this pass snapshotted
                    # the queue; never dispatch a cancelled job.
                    self.admission.release(job.job_id)
                    continue
                self.cache.record_miss()
                job.attempts += 1
                job.transition(JobState.ADMITTED, at=self.clock.tick())
                self._journal_transition(job, job.admitted_at)
                job.transition(JobState.RUNNING, at=self.clock.tick())
                self._journal_transition(job, job.started_at)
                token = CancellationToken(
                    on_beat=(
                        lambda job_id=job.job_id: self.metrics.record_heartbeat(job_id)
                    )
                )
                self._tokens[job.job_id] = token
            if self.supervision.enabled:
                self.supervisor.watch(job.job_id, token, job.spec.deadline_seconds)
            self._inflight[key] = job.job_id
            futures[
                pool.submit(
                    execute_job,
                    job.spec,
                    self.machine,
                    self.sim_recovery,
                    self.sim_workers,
                    self.tracer if self.tracer is not NULL_TRACER else None,
                    job.job_id,
                    self.tracer.current_parent() if self.tracer.enabled else None,
                    token,
                    self.chaos_plan,
                    job.seq,
                    job.attempts,
                )
            ] = job.job_id

    def _complete_from_cache(self, job: Job, key: str) -> bool:
        """Serve a queued job instantly from the result cache.

        Returns False when the entry failed its CRC check between the
        scheduler's peek and this get - the corrupt payload has been
        dropped and the caller falls through to a fresh execution.
        """
        result = self.cache.get(key)  # counts the hit, refreshes recency
        if result is None:  # corrupt entry dropped by the CRC check
            return False
        job.attempts += 1
        job.cache_hit = True
        job.transition(JobState.ADMITTED, at=self.clock.tick())
        self._journal_transition(job, job.admitted_at)
        job.transition(JobState.RUNNING, at=self.clock.tick())
        self._journal_transition(job, job.started_at)
        job.result = result
        job.transition(JobState.SUCCEEDED, at=self.clock.tick())
        self._journal_transition(job, job.finished_at)
        if self.journal is not None:
            self.journal.record_result(job)
        self.metrics.count("jobs_succeeded")
        self.metrics.record_job(job)
        return True

    def _complete(self, future: Future, job_id: str) -> None:
        """Process one finished worker future (coordinator thread)."""
        job = self._jobs[job_id]
        self.admission.release(job_id)
        self._inflight.pop(job.cache_key, None)
        self._tokens.pop(job_id, None)
        if self.supervision.enabled:
            self.supervisor.release(job_id)
        error = future.exception()
        if error is None:
            job.result = future.result()
            job.transition(JobState.SUCCEEDED, at=self.clock.tick())
            self._journal_transition(job, job.finished_at)
            if self.journal is not None:
                self.journal.record_result(job)
            self.cache.put(job.cache_key, job.result)
            if self.chaos_plan is not None and self.chaos_plan.cache_corrupt(
                self._cache_puts
            ):
                self.cache.corrupt_entry(job.cache_key)
            self._cache_puts += 1
            self.breakers.record_success(job.fingerprint)
            self.metrics.count("jobs_succeeded")
            self.metrics.absorb_result(job.result, job_id=job.job_id)
            self.metrics.record_job(job)
            return
        if isinstance(error, JobCancelled) and error.kind in USER_KINDS:
            # A user (or shutdown) cancel acknowledged by the worker:
            # terminal CANCELLED, never a failure, never retried.
            job.error = str(error)
            job.transition(JobState.CANCELLED, at=self.clock.tick())
            self._journal_transition(job, job.finished_at)
            self.metrics.count("jobs_cancelled")
            self.metrics.record_job(job)
            return
        if not isinstance(error, ReproError):
            raise error  # a bug, not a simulation fault - do not swallow it
        # Watchdog reaps (deadline / stall) arrive here as JobCancelled
        # and take the normal failure path: FAILED, then retry per policy.
        job.error = str(error)
        job.transition(JobState.FAILED, at=self.clock.tick())
        self._journal_transition(job, job.finished_at)
        if self.journal is not None:
            self.journal.record_error(job, str(error))
        self.breakers.record_failure(job.fingerprint)
        self.metrics.count("job_attempt_failures")
        if (
            self.recovery.on_fault == "retry"
            and job.attempts < self.recovery.max_transfer_attempts
        ):
            self.metrics.count("jobs_retried")
            self.metrics.charge_backoff(self.recovery.backoff_seconds(job.attempts))
            job.transition(JobState.PENDING, at=self.clock.tick())
            self._journal_transition(job, None)
        else:
            self.metrics.count("jobs_failed")
            self.metrics.record_job(job)

    def _fail_terminal(self, job: Job, message: str) -> None:
        """Mark a job FAILED with no retry (it can never succeed here)."""
        job.error = message
        job.attempts += 1
        job.transition(JobState.ADMITTED, at=self.clock.tick())
        self._journal_transition(job, job.admitted_at)
        job.transition(JobState.RUNNING, at=self.clock.tick())
        self._journal_transition(job, job.started_at)
        job.transition(JobState.FAILED, at=self.clock.tick())
        self._journal_transition(job, job.finished_at)
        if self.journal is not None:
            self.journal.record_error(job, message)
        self.metrics.count("jobs_failed")
        self.metrics.record_job(job)

    def _journal_transition(self, job: Job, at: float | None) -> None:
        if self.journal is not None:
            self.journal.record_transition(job, at)

    # -- reporting -----------------------------------------------------------

    def jobs_snapshot(self) -> list[dict[str, Any]]:
        """JSON-safe view of every job, for the HTTP ``/jobs`` endpoint.

        Safe to call from any thread: job mutation happens only on the
        coordinator, but this reader may race a ``submit`` growing the
        dict, so the iteration retries on the (rare) RuntimeError a
        concurrent resize raises.
        """
        for _ in range(8):
            try:
                jobs = sorted(self._jobs.values(), key=lambda job: job.seq)
                break
            except RuntimeError:  # pragma: no cover - dict resized mid-read
                continue
        else:  # pragma: no cover - persistent contention
            jobs = []
        return [
            {
                "id": job.job_id,
                "name": job.spec.display_name,
                "state": job.state.value,
                "priority": job.spec.priority,
                "attempts": job.attempts,
                "cache_hit": job.cache_hit,
                "estimated_seconds": job.estimated_seconds,
                "submitted_at": job.submitted_at,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "error": job.error,
            }
            for job in jobs
        ]

    def state_counts(self) -> dict[str, int]:
        """Job count per state (the ``/healthz`` and ``/metrics`` gauges)."""
        counts: dict[str, int] = {}
        for record in self.jobs_snapshot():
            counts[record["state"]] = counts.get(record["state"], 0) + 1
        return counts

    def snapshot(self) -> dict[str, Any]:
        """The full metrics export for this run."""
        config = {
            "machine": self.machine.name,
            "policy": self.policy.name,
            "workers": self.workers,
            "sim_workers": self.sim_workers,
            "deterministic": self.deterministic,
            "seed": self.seed,
            "memory_budget_bytes": self.admission.budget_bytes,
            "cache_budget_bytes": self.cache.budget_bytes,
        }
        return self.metrics.snapshot(
            cache=self.cache.snapshot(),
            admission=self.admission.snapshot(),
            config=config,
            supervision=self.supervision_snapshot(),
        )

    def supervision_snapshot(self) -> dict[str, Any]:
        """Watchdog and breaker state, for the export and the gauges."""
        return {
            "enabled": self.supervision.enabled,
            "stall_timeout_seconds": self.supervision.stall_timeout_seconds,
            "watchdog_reaps": self.supervisor.reaps,
            "watched_jobs": self.supervisor.watched(),
            "breakers": self.breakers.state_counts(),
        }

    def metrics_json(self) -> str:
        """Canonical JSON metrics (byte-identical in deterministic mode)."""
        return MetricsRegistry.to_json(self.snapshot())


def load_manifest(path: str | Path) -> list[JobSpec]:
    """Parse a JSON job manifest into specs.

    The manifest is either a bare list of job objects or ``{"jobs": [...]}``;
    each entry takes :class:`JobSpec` fields plus an optional ``"copies"``
    count that expands into that many identical submissions (the easy way
    to build duplicate-heavy, cache-exercising workloads).

    Raises:
        ServiceError: On unreadable or malformed manifests.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise ServiceError(f"cannot read manifest {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ServiceError(f"{path}: not valid JSON ({error})") from None
    entries = data.get("jobs") if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ServiceError(f"{path}: manifest must be a list or {{'jobs': [...]}}")
    specs: list[JobSpec] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ServiceError(f"{path}: job {index} is not an object")
        entry = dict(entry)
        copies = entry.pop("copies", 1)
        if not isinstance(copies, int) or copies < 1:
            raise ServiceError(f"{path}: job {index} has invalid copies {copies!r}")
        spec = JobSpec.from_dict(entry)
        specs.extend([spec] * copies)
    return specs
