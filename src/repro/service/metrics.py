"""Metrics registry for the batch service.

The clocks (:class:`WallClock` / :class:`LogicalClock`) moved to
:mod:`repro.obs.clock` when the tracer started sharing them; they are
re-exported here unchanged for existing imports.

The registry is backed by a process-wide
:class:`~repro.obs.counters.CounterRegistry` - the same registry a
:class:`~repro.obs.Tracer` counts into when the service is traced - so
scheduling counters (submissions, completions, retries, ...) and
simulator-level run stats (chunk updates pruned, bytes moved, kernel
invocations) land in one export.  :meth:`MetricsRegistry.absorb_result`
folds a finished job's run stats in; before it existed those numbers were
dropped on job completion.  ``to_json`` serializes with sorted keys and
fixed separators so deterministic runs diff clean.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.obs.clock import LogicalClock, WallClock
from repro.obs.counters import CounterRegistry
from repro.service.job import Job, JobResult

__all__ = ["LogicalClock", "MetricsRegistry", "WallClock"]


class MetricsRegistry:
    """Counters, gauges and per-job records for one service run.

    Args:
        counters: Backing registry (shared with the service's tracer when
            one is attached; a private one otherwise).

    Attributes:
        counters: The backing :class:`CounterRegistry`.
        max_queue_depth: Largest PENDING-queue length observed at any
            dispatch pass.
        retry_backoff_seconds: Modelled backoff charged by the recovery
            policy across all job retries (never slept, only accounted).
        job_records: One summary dict per terminal job, in submission
            order.
    """

    def __init__(self, counters: CounterRegistry | None = None) -> None:
        self.counters = counters if counters is not None else CounterRegistry()
        self.max_queue_depth = 0
        self.retry_backoff_seconds = 0.0
        self.job_records: list[dict[str, Any]] = []
        self._absorbed: set[str] = set()
        #: Latest worker heartbeat per job id (monotonic seconds).  Local
        #: observability only - never exported, so wall time cannot leak
        #: into the deterministic metrics JSON.
        self.heartbeats: dict[str, float] = {}

    def count(self, name: str, increment: int = 1) -> None:
        self.counters.count(name, increment)

    def record_heartbeat(self, job_id: str) -> None:
        """Note one worker heartbeat (wired to the job's token ``on_beat``)."""
        self.heartbeats[job_id] = time.monotonic()
        self.counters.count("watchdog.heartbeats")

    def observe_queue_depth(self, depth: int) -> None:
        self.max_queue_depth = max(self.max_queue_depth, depth)

    def charge_backoff(self, seconds: float) -> None:
        self.retry_backoff_seconds += seconds

    def absorb_result(self, result: JobResult, job_id: str | None = None) -> None:
        """Fold a freshly computed job's simulator-level stats into the export.

        Called on fresh completions only - a cache hit re-serves an old
        payload without re-running the simulator, so absorbing it again
        would double-count.  When ``job_id`` is given the fold is
        idempotent per job: a journal replay (or any double call) that
        re-delivers a completion is absorbed at most once.
        """
        if job_id is not None:
            if job_id in self._absorbed:
                return
            self._absorbed.add(job_id)
        self.counters.merge({
            name: value
            for name, value in (
                ("sim.chunk_updates_total", result.chunk_updates_total),
                ("sim.chunk_updates_skipped", result.chunk_updates_skipped),
                ("sim.transfers", result.transfers),
                ("sim.retries", result.retries),
                ("sim.faults", result.faults),
            )
            if value
        })

    def record_job(self, job: Job) -> None:
        """Append the terminal summary of ``job``; observe latency histograms."""
        if job.wait_time is not None:
            self.counters.histogram("job_wait_seconds").observe(job.wait_time)
        if job.submitted_at is not None and job.finished_at is not None:
            self.counters.histogram("job_latency_seconds").observe(
                job.finished_at - job.submitted_at
            )
        self.job_records.append({
            "id": job.job_id,
            "name": job.spec.display_name,
            "state": job.state.value,
            "fingerprint": job.fingerprint,
            "priority": job.spec.priority,
            "attempts": job.attempts,
            "cache_hit": job.cache_hit,
            "footprint_bytes": job.footprint_bytes,
            "estimated_seconds": job.estimated_seconds,
            "wait_time": job.wait_time,
            "run_time": job.run_time,
            "error": job.error,
        })

    def snapshot(
        self,
        *,
        cache: dict[str, Any] | None = None,
        admission: dict[str, Any] | None = None,
        config: dict[str, Any] | None = None,
        supervision: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Assemble the full export dict."""
        return {
            "config": config or {},
            "counters": self.counters.snapshot(),
            "max_queue_depth": self.max_queue_depth,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "cache": cache or {},
            "admission": admission or {},
            "supervision": supervision or {},
            "jobs": self.job_records,
        }

    @staticmethod
    def to_json(snapshot: dict[str, Any]) -> str:
        """Canonical JSON: sorted keys, fixed separators, trailing newline."""
        return json.dumps(snapshot, sort_keys=True, separators=(",", ": "), indent=1) + "\n"
