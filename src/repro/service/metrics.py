"""Metrics registry and the clocks that time the service.

Two clocks implement the same two-method interface:

* :class:`WallClock` - ``time.monotonic`` readings; right for throughput
  numbers on a real box.
* :class:`LogicalClock` - an integer that advances by one on every
  scheduler event.  Under ``workers=1`` every event happens in a
  deterministic order, so every recorded wait/run duration - and therefore
  the whole exported metrics JSON - is byte-identical across runs.  This
  is the ``--workers 1 --seed N`` reproducibility mode.

The registry itself is plain counters plus per-job records; the service
merges in cache and admission snapshots at export time.  ``to_json``
serializes with sorted keys and fixed separators so deterministic runs
diff clean.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.service.job import Job


class WallClock:
    """Monotonic wall-clock seconds, zeroed at construction."""

    deterministic = False

    def __init__(self) -> None:
        self._start = time.monotonic()

    def tick(self) -> float:
        """Advance (a no-op for wall time) and return the current reading."""
        return time.monotonic() - self._start

    def now(self) -> float:
        return time.monotonic() - self._start


class LogicalClock:
    """Event counter: each scheduler event is one tick."""

    deterministic = True

    def __init__(self) -> None:
        self._now = 0

    def tick(self) -> int:
        """Advance by one event and return the new reading."""
        self._now += 1
        return self._now

    def now(self) -> int:
        return self._now


@dataclass
class MetricsRegistry:
    """Counters, gauges and per-job records for one service run.

    Attributes:
        counters: Monotonic named counts (submissions, completions,
            retries, ...).
        max_queue_depth: Largest PENDING-queue length observed at any
            dispatch pass.
        retry_backoff_seconds: Modelled backoff charged by the recovery
            policy across all job retries (never slept, only accounted).
        job_records: One summary dict per terminal job, in submission
            order.
    """

    counters: dict[str, int] = field(default_factory=dict)
    max_queue_depth: int = 0
    retry_backoff_seconds: float = 0.0
    job_records: list[dict[str, Any]] = field(default_factory=list)

    def count(self, name: str, increment: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + increment

    def observe_queue_depth(self, depth: int) -> None:
        self.max_queue_depth = max(self.max_queue_depth, depth)

    def charge_backoff(self, seconds: float) -> None:
        self.retry_backoff_seconds += seconds

    def record_job(self, job: Job) -> None:
        """Append the terminal summary of ``job``."""
        self.job_records.append({
            "id": job.job_id,
            "name": job.spec.display_name,
            "state": job.state.value,
            "fingerprint": job.fingerprint,
            "priority": job.spec.priority,
            "attempts": job.attempts,
            "cache_hit": job.cache_hit,
            "footprint_bytes": job.footprint_bytes,
            "estimated_seconds": job.estimated_seconds,
            "wait_time": job.wait_time,
            "run_time": job.run_time,
            "error": job.error,
        })

    def snapshot(
        self,
        *,
        cache: dict[str, Any] | None = None,
        admission: dict[str, Any] | None = None,
        config: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Assemble the full export dict."""
        return {
            "config": config or {},
            "counters": dict(sorted(self.counters.items())),
            "max_queue_depth": self.max_queue_depth,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "cache": cache or {},
            "admission": admission or {},
            "jobs": self.job_records,
        }

    @staticmethod
    def to_json(snapshot: dict[str, Any]) -> str:
        """Canonical JSON: sorted keys, fixed separators, trailing newline."""
        return json.dumps(snapshot, sort_keys=True, separators=(",", ": "), indent=1) + "\n"
