"""Service-level chaos harness: seeded kill-restart-recover soaks.

The unit under test here is not the simulator - it is the *service*:
journal, recovery, watchdog, retries, cache.  :func:`run_chaos_soak`
drives a :class:`~repro.service.service.BatchService` through repeated
simulated process crashes and verifies the self-healing invariants:

* every submitted job converges to SUCCEEDED across restarts;
* every job reaches a terminal state **exactly once** in the journal
  (the state machine forbids a second terminal transition, and the
  journal replay enforces it);
* results are byte-identical to a fault-free baseline run
  (``state_sha256`` per job), so crashes never corrupt answers;
* duplicate submissions never produce divergent cached results.

Crashes are simulated at the one place a real crash is observable
afterwards: the journal.  :class:`ChaosJournal` counts appends and, when
armed, raises :class:`SimulatedCrash` at a seeded ordinal - optionally
tearing the in-flight record first, exactly as a process death between
``write`` and ``flush`` would.  The coordinator unwinds, worker tokens
are cancelled, and the next cycle recovers from the journal like a fresh
process would.  Worker crashes, worker stalls and cache corruption are
injected independently through the service's ``chaos_plan``
(:class:`~repro.reliability.faults.FaultPlan` service-layer kinds), so
one soak exercises every recovery edge at once.

Every decision is a deterministic function of the seed: the same soak
replays the same crash schedule, fault sequence and torn writes.

``repro chaos --manifest ... --journal ...`` is the CLI front-end.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import ServiceError
from repro.obs.log import get_logger
from repro.reliability.faults import FaultPlan, _fnv
from repro.reliability.policy import RecoveryPolicy
from repro.service.job import JobState
from repro.service.service import BatchService, load_manifest
from repro.service.store import JobStore
from repro.service.supervision import BreakerConfig, SupervisionConfig

_LOG = get_logger("service.chaos")


class SimulatedCrash(Exception):
    """The chaos harness's stand-in for a process death.

    Deliberately **not** a :class:`~repro.errors.ReproError`: nothing in
    the service may catch and absorb it, exactly as nothing survives a
    real ``kill -9``.  It unwinds the coordinator, which cancels worker
    tokens with ``kind="shutdown"`` on the way out.
    """


class ChaosJournal(JobStore):
    """A :class:`JobStore` that can tear a write and kill the process.

    Overrides the store's documented ``_write_line`` override point.
    Appends are numbered with a global ordinal (continued across
    restarts via ``start_ordinal``) so the fault plan's torn-write
    decisions replay deterministically over a whole soak.

    Args:
        path: Journal file (shared across simulated restarts).
        plan: Fault plan consulted for ``journal_torn_write`` at the
            crash ordinal.
        fsync: Passed through to :class:`JobStore`.
        start_ordinal: First append's ordinal (the previous incarnation's
            final count).
    """

    #: Fraction of the line that survives a torn write.  Cutting a third
    #: always destroys the CRC suffix, so the fragment can never be
    #: mistaken for an intact record.
    TORN_KEEP_NUMERATOR = 2
    TORN_KEEP_DENOMINATOR = 3

    def __init__(
        self,
        path: str | Path,
        plan: FaultPlan,
        *,
        fsync: str = "never",
        start_ordinal: int = 0,
    ) -> None:
        super().__init__(path, fsync=fsync)
        self.plan = plan
        self.append_ordinal = start_ordinal
        self.torn_writes = 0
        self._kill_at: int | None = None

    def arm_kill(self, after_appends: int) -> None:
        """Schedule a :class:`SimulatedCrash` on the ``after_appends``-th
        append from now (``1`` = the very next one).

        Armed *after* manifest submission (so submitted jobs are durable,
        as they would be in a real deployment) and never on the soak's
        final cycle.
        """
        if after_appends < 1:
            raise ServiceError(
                f"kill must be at least 1 append away, got {after_appends}"
            )
        self._kill_at = self.append_ordinal + after_appends - 1

    def disarm(self) -> None:
        self._kill_at = None

    def _write_line(self, line: str) -> None:
        ordinal = self.append_ordinal
        self.append_ordinal += 1
        if self._kill_at is not None and ordinal >= self._kill_at:
            self._kill_at = None  # one crash per arming
            if self.plan.journal_torn_write(ordinal):
                # The crash lands mid-write: a prefix of the record (no
                # newline, no intact CRC) reaches the disk.
                keep = max(
                    1, len(line) * self.TORN_KEEP_NUMERATOR // self.TORN_KEEP_DENOMINATOR
                )
                super()._write_line(line[:keep])
                self.torn_writes += 1
            raise SimulatedCrash(
                f"chaos: simulated process crash at journal append {ordinal}"
            )
        super()._write_line(line)


def _kill_schedule(seed: int, cycle: int, span: int = 30, floor: int = 8) -> int:
    """Seeded appends-until-crash for one cycle (salt 99, replayable)."""
    return floor + _fnv(seed, 99, cycle) % span


def run_chaos_soak(
    manifest: str | Path,
    journal_path: str | Path,
    *,
    seed: int = 0,
    cycles: int = 3,
    workers: int = 2,
    crash_rate: float = 0.15,
    stall_rate: float = 0.05,
    torn_rate: float = 0.5,
    cache_corrupt_rate: float = 0.1,
    kill_after: int | None = None,
    max_attempts: int = 20,
    stall_timeout: float = 0.25,
    strict: bool = True,
) -> dict[str, Any]:
    """Soak the service through ``cycles`` crash-restart-recover rounds.

    First runs the manifest on a pristine fault-free service to obtain
    the baseline ``state_sha256`` per job, then replays it under chaos:
    each of the ``cycles`` rounds arms a seeded journal kill (plus
    worker crashes / stalls / torn writes / cache corruption from the
    fault plan) and the following round recovers from the journal; a
    final unkilled round drains whatever is left.  The journal is then
    audited for the convergence invariants.

    Args:
        manifest: Job manifest (see :func:`~repro.service.load_manifest`).
        journal_path: Journal file for the soak (must not pre-exist).
        seed: Root of every injected-fault and kill-schedule decision.
        cycles: Crash rounds before the clean final round.
        workers: Service worker threads during chaos rounds.
        crash_rate / stall_rate / torn_rate / cache_corrupt_rate:
            Service-layer fault-plan rates.
        kill_after: Fixed appends-per-round until the kill (``None`` =
            seeded schedule).
        max_attempts: Per-job retry budget; generous, so injected faults
            delay convergence instead of exhausting it.
        stall_timeout: Watchdog stall reap threshold (seconds) - small,
            so injected stalls resolve quickly.
        strict: Raise :class:`~repro.errors.ServiceError` on any violated
            invariant (CI mode) instead of only reporting it.

    Returns:
        The soak report (JSON-safe): per-cycle log, journal audit,
        baseline comparison, violations, and the final cycle's metrics.
    """
    manifest = Path(manifest)
    journal_path = Path(journal_path)
    if journal_path.exists():
        raise ServiceError(
            f"chaos journal {journal_path} already exists; refusing to soak "
            "over prior state"
        )
    specs = load_manifest(manifest)

    # -- baseline: the answers a fault-free service produces ----------------
    pristine = BatchService(workers=1, seed=seed)
    for spec in specs:
        pristine.submit(spec)
    pristine.run_until_complete()
    baseline: dict[str, str] = {}
    for job in pristine.jobs:
        if job.state is not JobState.SUCCEEDED or job.result is None:
            raise ServiceError(
                f"baseline run failed for {job.job_id} ({job.state.value}): "
                f"{job.error}"
            )
        baseline[job.job_id] = job.result.state_sha256

    plan = FaultPlan(
        seed=seed,
        worker_crash_rate=crash_rate,
        worker_stall_rate=stall_rate,
        journal_torn_rate=torn_rate,
        cache_corrupt_rate=cache_corrupt_rate,
    )
    recovery = RecoveryPolicy(max_transfer_attempts=max_attempts)
    supervision = SupervisionConfig(
        poll_interval_seconds=0.01, stall_timeout_seconds=stall_timeout
    )
    # The breaker must not turn injected (recoverable) faults into
    # terminal fast-fails mid-soak; it is tested separately.
    breaker = BreakerConfig(failure_threshold=max_attempts + cycles + 8)

    ordinal = 0
    crashes = 0
    torn_writes = 0
    cycle_log: list[dict[str, Any]] = []
    final_snapshot: dict[str, Any] | None = None
    for cycle in range(cycles + 1):
        journal = ChaosJournal(journal_path, plan, start_ordinal=ordinal)
        service = BatchService(
            workers=workers,
            seed=seed,
            journal=journal,
            recovery=recovery,
            supervision=supervision,
            breaker=breaker,
            chaos_plan=plan,
        )
        if cycle == 0:
            for spec in specs:
                service.submit(spec)
            recovered = 0
        else:
            recovered = len(service.recover())
        if cycle < cycles:
            journal.arm_kill(
                kill_after if kill_after is not None else _kill_schedule(seed, cycle)
            )
        crashed = False
        try:
            final_snapshot = service.run_until_complete()
        except SimulatedCrash as death:
            crashed = True
            crashes += 1
            _LOG.info("cycle %d: %s", cycle, death)
        torn_writes += journal.torn_writes
        cycle_log.append({
            "cycle": cycle,
            "recovered": recovered,
            "crashed": crashed,
            "appends": journal.append_ordinal - ordinal,
            "torn_writes": journal.torn_writes,
        })
        ordinal = journal.append_ordinal

    # -- audit the journal the way a fresh process would --------------------
    audit = JobStore(journal_path)
    violations: list[str] = []
    terminal_counts: dict[str, int] = {}
    result_counts: dict[str, int] = {}
    terminal_states = {JobState.SUCCEEDED.value, JobState.FAILED.value,
                       JobState.CANCELLED.value}
    for event in audit.iter_events():
        if event.get("event") == "transition" and event.get("to") in terminal_states:
            # FAILED has a retry edge back to PENDING, so only count the
            # true terminals here; FAILED convergence is caught below.
            if event["to"] != JobState.FAILED.value:
                terminal_counts[event["id"]] = terminal_counts.get(event["id"], 0) + 1
        elif event.get("event") == "result":
            result_counts[event["id"]] = result_counts.get(event["id"], 0) + 1
    jobs = audit.load()  # replays through the state machine: legality check
    if len(jobs) != len(specs):
        violations.append(f"journal has {len(jobs)} job(s), manifest has {len(specs)}")
    states: dict[str, int] = {}
    mismatches: list[str] = []
    missing_results = 0
    sha_by_key: dict[str, set[str]] = {}
    for job in jobs.values():
        states[job.state.value] = states.get(job.state.value, 0) + 1
        if job.state is not JobState.SUCCEEDED:
            violations.append(
                f"{job.job_id} did not converge: {job.state.value} ({job.error})"
            )
            continue
        if terminal_counts.get(job.job_id, 0) != 1:
            violations.append(
                f"{job.job_id} journaled {terminal_counts.get(job.job_id, 0)} "
                "terminal transition(s), expected exactly 1"
            )
        if result_counts.get(job.job_id, 0) > 1:
            violations.append(
                f"{job.job_id} journaled {result_counts[job.job_id]} results"
            )
        if job.result is None:
            # The crash landed between the SUCCEEDED transition and the
            # result record: the terminal state is durable, the payload
            # is not.  Legal (exactly-once still holds) - reported.
            missing_results += 1
            continue
        sha_by_key.setdefault(job.cache_key, set()).add(job.result.state_sha256)
        if job.result.state_sha256 != baseline.get(job.job_id):
            mismatches.append(job.job_id)
            violations.append(
                f"{job.job_id} result diverged from the fault-free baseline"
            )
    duplicate_cache_entries = sum(
        1 for shas in sha_by_key.values() if len(shas) > 1
    )
    if duplicate_cache_entries:
        violations.append(
            f"{duplicate_cache_entries} cache key(s) with divergent results"
        )

    report: dict[str, Any] = {
        "manifest": str(manifest),
        "journal": str(journal_path),
        "plan": plan.to_spec(),
        "seed": seed,
        "cycles": cycles,
        "workers": workers,
        "specs": len(specs),
        "jobs": len(jobs),
        "states": dict(sorted(states.items())),
        "crashes": crashes,
        "torn_writes": torn_writes,
        "journal_appends": ordinal,
        "missing_results": missing_results,
        "duplicate_cache_entries": duplicate_cache_entries,
        "byte_identical": not mismatches,
        "converged": states.get(JobState.SUCCEEDED.value, 0) == len(specs)
        and len(jobs) == len(specs),
        "violations": violations,
        "cycle_log": cycle_log,
        "final_metrics": {
            key: (final_snapshot or {}).get(key, {})
            for key in ("counters", "cache", "supervision")
        },
    }
    if strict and violations:
        raise ServiceError(
            "chaos soak failed: " + "; ".join(violations[:5])
            + (f" (+{len(violations) - 5} more)" if len(violations) > 5 else "")
        )
    return report
