"""Cost models of the comparator simulators (paper Sections V-A, V-C).

Each comparator runs the *same circuit* against the *same host* as Q-GPU but
with its own execution discipline:

* **CPU-OpenMP** - QISKit-Aer's pure CPU state-vector path: one full-state
  pass per gate at the host's sustained OpenMP bandwidth.
* **Qsim-Cirq** - Google's AVX2 CPU simulator: gate fusion (up to 4-qubit
  blocks) cuts the number of passes; its hand-tuned kernels run slightly
  above the generic loop's bandwidth.
* **Microsoft QDK** - the managed (C#/.NET) full-state simulator; public
  benchmarks place it roughly an order of magnitude behind native
  simulators, modelled as a bandwidth-derating factor.

The efficiency constants are calibrated to the relative standings the paper
reports (Fig. 12's CPU-OpenMP bars, Fig. 16's Qsim/QDK comparisons); see
DESIGN.md's substitution table.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.fusion import fuse
from repro.core.executor import GateTiming, TimedResult
from repro.errors import SimulationError
from repro.hardware.machine import Machine
from repro.hardware.specs import AMP_BYTES, MachineSpec, PAPER_MACHINE

#: Qsim's AVX2 kernels relative to the generic OpenMP loop.
QSIM_BANDWIDTH_FACTOR = 1.15
#: Qsim's maximum fused-block width.
QSIM_MAX_FUSED_QUBITS = 4
#: QDK's managed-runtime derating relative to the generic OpenMP loop.
QDK_BANDWIDTH_FACTOR = 0.12


def _check_host(circuit: QuantumCircuit, machine: Machine) -> int:
    state_bytes = AMP_BYTES << circuit.num_qubits
    if not machine.fits_in_host(state_bytes):
        raise SimulationError(
            f"{circuit.name}: state vector exceeds host memory on "
            f"{machine.spec.name}"
        )
    return state_bytes


def estimate_cpu_openmp(
    circuit: QuantumCircuit, machine: MachineSpec = PAPER_MACHINE
) -> TimedResult:
    """QISKit-Aer CPU-OpenMP: one full-state pass per gate."""
    m = Machine(machine)
    _check_host(circuit, m)
    amps = 1 << circuit.num_qubits
    result = TimedResult(
        circuit_name=circuit.name, version="CPU-OpenMP",
        machine=machine.name, num_qubits=circuit.num_qubits,
    )
    for index, gate in enumerate(circuit):
        seconds = m.cpu_compute_time(amps, chunked=False)
        result.add(
            GateTiming(index=index, name=gate.name, seconds=seconds,
                       cpu_seconds=seconds)
        )
    return result


def estimate_qsim_cirq(
    circuit: QuantumCircuit, machine: MachineSpec = PAPER_MACHINE
) -> TimedResult:
    """Qsim-Cirq: fused passes at AVX2 bandwidth."""
    m = Machine(machine)
    _check_host(circuit, m)
    amps = 1 << circuit.num_qubits
    bandwidth = machine.cpu.effective_bandwidth * QSIM_BANDWIDTH_FACTOR
    result = TimedResult(
        circuit_name=circuit.name, version="Qsim-Cirq",
        machine=machine.name, num_qubits=circuit.num_qubits,
    )
    for index, block in enumerate(fuse(circuit, QSIM_MAX_FUSED_QUBITS)):
        seconds = 2.0 * AMP_BYTES * amps / bandwidth
        result.add(
            GateTiming(
                index=index, name=f"fused[{len(block.gates)}]",
                seconds=seconds, cpu_seconds=seconds,
            )
        )
    return result


def estimate_qdk(
    circuit: QuantumCircuit, machine: MachineSpec = PAPER_MACHINE
) -> TimedResult:
    """Microsoft QDK: unfused passes at managed-runtime bandwidth."""
    m = Machine(machine)
    _check_host(circuit, m)
    amps = 1 << circuit.num_qubits
    bandwidth = machine.cpu.effective_bandwidth * QDK_BANDWIDTH_FACTOR
    result = TimedResult(
        circuit_name=circuit.name, version="QDK",
        machine=machine.name, num_qubits=circuit.num_qubits,
    )
    for index, gate in enumerate(circuit):
        seconds = 2.0 * AMP_BYTES * amps / bandwidth
        result.add(
            GateTiming(index=index, name=gate.name, seconds=seconds,
                       cpu_seconds=seconds)
        )
    return result


#: Circuits each external simulator could run in the paper's Section V-C
#: (gate-support limits of the OpenQASM conversion path).
QSIM_SUPPORTED_FAMILIES = ("gs", "hlf")
QDK_SUPPORTED_FAMILIES = ("qft", "iqp", "hlf", "gs")
