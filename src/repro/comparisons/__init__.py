"""Cost models of the comparator simulators (CPU-OpenMP, Qsim-Cirq, QDK)."""

from repro.circuits.fusion import FusedBlock, fuse, fusion_factor
from repro.comparisons.models import (
    QDK_SUPPORTED_FAMILIES,
    QSIM_SUPPORTED_FAMILIES,
    estimate_cpu_openmp,
    estimate_qdk,
    estimate_qsim_cirq,
)

__all__ = [
    "FusedBlock",
    "QDK_SUPPORTED_FAMILIES",
    "QSIM_SUPPORTED_FAMILIES",
    "estimate_cpu_openmp",
    "estimate_qdk",
    "estimate_qsim_cirq",
    "fuse",
    "fusion_factor",
]
