"""Compressed state-vector persistence.

Saves and loads state vectors through the GFC codec - the same machinery
Q-GPU uses on the wire (Section IV-D) applied to disk.  Structured states
(the compressible families) shrink 2-5x; the format is self-describing and
verified on load.

Layout::

    magic "QGSV" | uint8 version | uint8 reserved | uint32 num_qubits
    uint64 payload length | GFC stream (see repro.compression.gfc)
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro.compression.gfc import compress, decompress
from repro.errors import CompressionError, SimulationError
from repro.statevector.state import StateVector

_MAGIC = b"QGSV"
_HEADER = struct.Struct("<4sBBIQ")
_FORMAT_VERSION = 1


def dump_state(state: StateVector | np.ndarray, destination: BinaryIO | str | Path,
               num_segments: int = 8) -> int:
    """Write a state vector as a compressed stream; returns bytes written."""
    amplitudes = getattr(state, "amplitudes", state)
    amplitudes = np.ascontiguousarray(amplitudes, dtype=np.complex128)
    num_qubits = int(amplitudes.size).bit_length() - 1
    if amplitudes.size != 1 << num_qubits:
        raise SimulationError("amplitude count is not a power of two")
    payload = compress(amplitudes, num_segments=num_segments)
    header = _HEADER.pack(_MAGIC, _FORMAT_VERSION, 0, num_qubits, len(payload))

    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            handle.write(header)
            handle.write(payload)
    else:
        destination.write(header)
        destination.write(payload)
    return len(header) + len(payload)


def load_state(source: BinaryIO | str | Path) -> StateVector:
    """Read a state vector written by :func:`dump_state` (bit-exact)."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return load_state(handle)

    header = source.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise CompressionError("state file too short for header")
    magic, version, _, num_qubits, payload_length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise CompressionError(f"not a Q-GPU state file (magic {magic!r})")
    if version != _FORMAT_VERSION:
        raise CompressionError(f"unsupported state format version {version}")
    payload = source.read(payload_length)
    if len(payload) != payload_length:
        raise CompressionError("truncated state payload")
    doubles = decompress(payload)
    if doubles.size != 2 << num_qubits:
        raise CompressionError(
            f"payload holds {doubles.size} doubles, expected {2 << num_qubits}"
        )
    amplitudes = doubles.view(np.complex128)
    return StateVector(num_qubits, amplitudes)


def roundtrip_bytes(state: StateVector | np.ndarray) -> bytes:
    """Serialise to bytes in memory (convenience for tests and caching)."""
    buffer = io.BytesIO()
    dump_state(state, buffer)
    return buffer.getvalue()
