"""Compressed state-vector persistence.

Saves and loads state vectors through the GFC codec - the same machinery
Q-GPU uses on the wire (Section IV-D) applied to disk.  Structured states
(the compressible families) shrink 2-5x; the format is self-describing and
verified on load.

Format v2 layout (written by :func:`dump_state`)::

    magic "QGSV" | uint8 version | uint8 reserved | uint32 num_qubits
    uint64 payload length | uint32 payload CRC32 | GFC stream

Format v1 (no CRC32 field) is still readable; v2 additionally verifies
the payload checksum on load, so bit rot in a stored state surfaces as a
typed :class:`~repro.errors.IntegrityError` instead of silently wrong
amplitudes.
"""

from __future__ import annotations

import io
import struct
import zlib
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro.compression.gfc import compress, decompress
from repro.errors import CompressionError, IntegrityError, SimulationError
from repro.statevector.state import StateVector

_MAGIC = b"QGSV"
_HEADER_V1 = struct.Struct("<4sBBIQ")
_CRC_FIELD = struct.Struct("<I")
_FORMAT_VERSION = 2
#: Versions :func:`load_state` understands.
SUPPORTED_VERSIONS = (1, 2)


def read_exact(source: BinaryIO, num_bytes: int) -> bytes:
    """Read exactly ``num_bytes`` from ``source``, looping over short reads.

    ``read(n)`` on sockets, pipes and other non-file streams may legally
    return fewer bytes than requested; this helper keeps reading until the
    full count or EOF.  Returns whatever was available (the caller checks
    the length).
    """
    parts: list[bytes] = []
    remaining = num_bytes
    while remaining > 0:
        piece = source.read(remaining)
        if not piece:
            break
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


def dump_state(state: StateVector | np.ndarray, destination: BinaryIO | str | Path,
               num_segments: int = 8) -> int:
    """Write a state vector as a compressed v2 stream; returns bytes written."""
    amplitudes = getattr(state, "amplitudes", state)
    amplitudes = np.ascontiguousarray(amplitudes, dtype=np.complex128)
    num_qubits = int(amplitudes.size).bit_length() - 1
    if amplitudes.size != 1 << num_qubits:
        raise SimulationError("amplitude count is not a power of two")
    payload = compress(amplitudes, num_segments=num_segments)
    header = _HEADER_V1.pack(_MAGIC, _FORMAT_VERSION, 0, num_qubits, len(payload))
    header += _CRC_FIELD.pack(zlib.crc32(payload))

    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            handle.write(header)
            handle.write(payload)
    else:
        destination.write(header)
        destination.write(payload)
    return len(header) + len(payload)


def load_state(source: BinaryIO | str | Path) -> StateVector:
    """Read a state vector written by :func:`dump_state` (bit-exact).

    Accepts both format v1 (no checksum) and v2 (CRC32-verified payload).

    Raises:
        CompressionError: Malformed or truncated stream.
        IntegrityError: v2 payload checksum mismatch.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return load_state(handle)

    header = read_exact(source, _HEADER_V1.size)
    if len(header) != _HEADER_V1.size:
        raise CompressionError("state file too short for header")
    magic, version, _, num_qubits, payload_length = _HEADER_V1.unpack(header)
    if magic != _MAGIC:
        raise CompressionError(f"not a Q-GPU state file (magic {magic!r})")
    if version not in SUPPORTED_VERSIONS:
        raise CompressionError(f"unsupported state format version {version}")
    expected_crc: int | None = None
    if version >= 2:
        crc_bytes = read_exact(source, _CRC_FIELD.size)
        if len(crc_bytes) != _CRC_FIELD.size:
            raise CompressionError("state file too short for checksum field")
        (expected_crc,) = _CRC_FIELD.unpack(crc_bytes)
    payload = read_exact(source, payload_length)
    if len(payload) != payload_length:
        raise CompressionError("truncated state payload")
    if expected_crc is not None and zlib.crc32(payload) != expected_crc:
        raise IntegrityError(
            f"state payload CRC32 mismatch (expected {expected_crc:#010x}, "
            f"got {zlib.crc32(payload):#010x})"
        )
    doubles = decompress(payload)
    if doubles.size != 2 << num_qubits:
        raise CompressionError(
            f"payload holds {doubles.size} doubles, expected {2 << num_qubits}"
        )
    amplitudes = doubles.view(np.complex128)
    return StateVector(num_qubits, amplitudes)


def roundtrip_bytes(state: StateVector | np.ndarray) -> bytes:
    """Serialise to bytes in memory (convenience for tests and caching)."""
    buffer = io.BytesIO()
    dump_state(state, buffer)
    return buffer.getvalue()
