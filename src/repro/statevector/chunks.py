"""Chunked state vector - the functional model of QISKit-Aer's partitioning.

The paper's baseline (Section III-B, Fig. 1) splits the ``2^n`` amplitude
vector into ``2^(n-m)`` chunks of ``2^m`` amplitudes: the low ``m`` index
bits address *within* a chunk, the high ``n-m`` bits select the chunk.

* A gate whose qubits are all ``< m`` ("Case 1") updates each chunk
  independently.
* A gate touching qubits ``>= m`` ("Case 2") pairs chunks whose indices
  differ in the corresponding chunk-index bits; the paired chunks must be
  co-resident before the update.

This module implements those mechanics exactly, so the timed executor's
chunk-schedule logic can be validated against a functional ground truth:
running a circuit chunked must be bit-identical to running it dense.

Storage is one contiguous backing buffer with the chunks as views into it
(chunk ``i`` occupies ``[i * 2^m, (i + 1) * 2^m)``), so cross-chunk
kernels can address amplitude pairs directly instead of gathering copies;
see :mod:`repro.statevector.kernels`.  The serial (``workers=1``) path
keeps the baseline gather arithmetic for non-diagonal cross-chunk gates -
bit-identical to the original engine - while diagonal gates always take
the in-place zero-copy kernel (provably the same multiply per amplitude).
``workers > 1`` hands whole chunk groups to the persistent thread pool of
:class:`~repro.statevector.parallel.ParallelChunkEngine`.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import SimulationError
from repro.statevector.apply import apply_gate
from repro.statevector.fusion import GateSlab, fuse_slabs, slab_members
from repro.statevector.kernels import (
    apply_diagonal_chunk,
    apply_single_qubit_inplace,
    chunk_diagonal_factor,
    count_kernel,
    kernel_work,
)


def chunk_pair_groups(
    num_qubits: int, chunk_bits: int, gate_qubits: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """Group chunk indices that must be co-resident to apply a gate.

    Returns a list of tuples; each tuple holds the ``2^k`` chunk indices
    (``k`` = number of gate qubits outside the chunk) that form one
    independent update group, in ascending outside-bit order.  For a gate
    fully inside the chunk every group is a singleton.
    """
    num_chunks = 1 << (num_qubits - chunk_bits)
    outside = sorted(q - chunk_bits for q in gate_qubits if q >= chunk_bits)
    if not outside:
        return [(i,) for i in range(num_chunks)]
    outside_mask = 0
    for bit in outside:
        outside_mask |= 1 << bit
    groups: list[tuple[int, ...]] = []
    for base in range(num_chunks):
        if base & outside_mask:
            continue  # only enumerate canonical (all-zero outside bits) bases
        members = []
        for selector in range(1 << len(outside)):
            index = base
            for position, bit in enumerate(outside):
                if selector >> position & 1:
                    index |= 1 << bit
            members.append(index)
        groups.append(tuple(members))
    return groups


class ChunkedStateVector:
    """State vector stored as equally sized chunks over one backing buffer.

    Args:
        num_qubits: Register width ``n``.
        chunk_bits: Amplitudes per chunk = ``2^chunk_bits``; must satisfy
            ``0 < chunk_bits <= n``.
        dtype: Amplitude dtype - ``complex128`` (default, bit-exact
            baseline) or ``complex64`` (the planner's single-precision
            fast path; gate matrices are cast down at the kernels).
    """

    def __init__(
        self, num_qubits: int, chunk_bits: int, dtype=np.complex128
    ) -> None:
        if not 0 < chunk_bits <= num_qubits:
            raise SimulationError(
                f"chunk_bits must be in (0, {num_qubits}], got {chunk_bits}"
            )
        if num_qubits > 26:
            raise SimulationError(
                "functional chunked simulation is limited to 26 qubits"
            )
        resolved = np.dtype(dtype)
        if resolved not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise SimulationError(
                f"state dtype must be complex64 or complex128, got {resolved}"
            )
        self.num_qubits = num_qubits
        self.chunk_bits = chunk_bits
        self.num_chunks = 1 << (num_qubits - chunk_bits)
        self.dtype = resolved
        self._backing = np.zeros(1 << num_qubits, dtype=resolved)
        self._backing[0] = 1.0
        self._chunks: list[np.ndarray] | None = None

    @property
    def chunk_size(self) -> int:
        """Amplitudes per chunk."""
        return 1 << self.chunk_bits

    @property
    def backing(self) -> np.ndarray:
        """The contiguous ``2^n`` amplitude buffer the chunks are views of."""
        return self._backing

    @property
    def chunks(self) -> list[np.ndarray]:
        """Per-chunk views into :attr:`backing` (writes go through)."""
        if self._chunks is None:
            size = self.chunk_size
            self._chunks = [
                self._backing[index * size : (index + 1) * size]
                for index in range(self.num_chunks)
            ]
        return self._chunks

    def swap_backing(self, new_backing: np.ndarray) -> np.ndarray:
        """Adopt ``new_backing`` as the amplitude buffer; return the old one.

        The double-buffer handoff of the fused kernels: after a whole-state
        kernel writes the updated amplitudes into a scratch buffer, the
        buffers trade places instead of copying back.  Chunk views are
        re-derived lazily; any previously obtained views keep addressing
        the *old* buffer.
        """
        if new_backing.shape != self._backing.shape or new_backing.dtype != self._backing.dtype:
            raise SimulationError("swap_backing buffer must match the state layout")
        old = self._backing
        self._backing = new_backing
        self._chunks = None
        return old

    def to_dense(self) -> np.ndarray:
        """A dense copy of the full ``2^n`` vector."""
        return self._backing.copy()

    @classmethod
    def from_dense(
        cls, amplitudes: np.ndarray, chunk_bits: int, dtype=None
    ) -> "ChunkedStateVector":
        """Split a dense vector into chunks (copying).

        ``dtype=None`` keeps a complex64 input in complex64 and stores
        everything else (the historical callers pass complex128) at full
        precision, so no caller silently loses precision to a downcast.
        """
        num_qubits = int(amplitudes.size).bit_length() - 1
        if amplitudes.size != 1 << num_qubits:
            raise SimulationError("amplitude count is not a power of two")
        if dtype is None:
            dtype = (
                np.complex64
                if amplitudes.dtype == np.dtype(np.complex64)
                else np.complex128
            )
        out = cls(num_qubits, chunk_bits, dtype=dtype)
        out._backing[...] = amplitudes
        return out

    def apply(self, gate: Gate, engine=None) -> "ChunkedStateVector":
        """Apply one gate to every chunk group (Fig. 1 mechanics).

        Args:
            gate: The gate to apply.
            engine: Optional
                :class:`~repro.statevector.parallel.ParallelChunkEngine`;
                when given, chunk groups execute on its worker pool.
        """
        groups = chunk_pair_groups(self.num_qubits, self.chunk_bits, gate.qubits)
        return self.apply_groups(gate, groups, engine)

    def apply_groups(
        self,
        gate: Gate,
        groups: list[tuple[int, ...]],
        engine=None,
    ) -> "ChunkedStateVector":
        """Apply ``gate`` to the listed chunk groups only.

        The pruning-aware callers (:class:`~repro.core.QGpuSimulator` and
        :meth:`run` with ``pruning=True``) pass the live subset of
        :func:`chunk_pair_groups`; a skipped group is provably all-zero
        and unchanged by any unitary.

        ``gate`` may be a :class:`~repro.statevector.fusion.GateSlab`; it
        flows through the same dispatch by duck-typing :class:`Gate`
        (width-1 dense slabs additionally take the tiled in-place kernel,
        amortizing one sweep over every fused member).
        """
        if isinstance(gate, GateSlab) and len(gate.gates) > 1:
            count_kernel("fused_slab")
        if engine is not None:
            engine.apply_groups(self, gate, groups)
            return self
        itemsize = np.dtype(self.dtype).itemsize
        if gate.is_diagonal:
            # Diagonal gates never mix amplitudes: multiply each member
            # chunk in place (zero-copy, bit-identical to the gathered
            # path - the same multiplier hits the same amplitude).
            member_count = sum(len(members) for members in groups)
            count_kernel("diagonal", member_count)
            with kernel_work("diagonal", member_count << self.chunk_bits, itemsize):
                cache: dict[int, np.ndarray | complex] = {}
                chunks = self.chunks
                for members in groups:
                    for member in members:
                        apply_diagonal_chunk(
                            chunks[member], gate, self.chunk_bits, member, cache
                        )
            return self
        outside = [q for q in gate.qubits if q >= self.chunk_bits]
        if not outside:
            count_kernel("dense", len(groups))
            with kernel_work("dense", len(groups) << self.chunk_bits, itemsize):
                chunks = self.chunks
                if isinstance(gate, GateSlab) and gate.num_qubits == 1:
                    # A width-1 dense slab (e.g. h.rz.h on one qubit): one
                    # tiled in-place sweep instead of a gather per member gate.
                    matrix = gate.matrix()
                    qubit = gate.qubits[0]
                    for (index,) in groups:
                        apply_single_qubit_inplace(chunks[index], matrix, qubit)
                else:
                    for (index,) in groups:
                        apply_gate(chunks[index], gate)
            return self
        count_kernel("gather", len(groups))
        gathered_amps = sum(len(members) for members in groups) << self.chunk_bits
        with kernel_work("gather", gathered_amps, itemsize):
            # Baseline serial path: remap outside qubits onto the extra axes
            # of the gathered buffer - gathered index = (member rank <<
            # chunk_bits) | offset, member rank bits ordered by ascending
            # outside qubit.
            ascending_outside = sorted(outside)
            mapping = {q: q for q in gate.qubits if q < self.chunk_bits}
            for rank, q in enumerate(ascending_outside):
                mapping[q] = self.chunk_bits + rank
            remapped = gate.remapped(mapping)

            chunks = self.chunks
            for members in groups:
                gathered = np.concatenate([chunks[index] for index in members])
                apply_gate(gathered, remapped)
                for position, index in enumerate(members):
                    start = position << self.chunk_bits
                    chunks[index][...] = gathered[start : start + self.chunk_size]
        return self

    def run(
        self,
        circuit: QuantumCircuit,
        *,
        workers: int | str | None = 1,
        pruning: bool = False,
        tracer=None,
        fusion: str = "on",
    ) -> "ChunkedStateVector":
        """Apply every gate of ``circuit`` in order.

        Args:
            circuit: Circuit matching this state's width.
            workers: Chunk-worker threads; ``1`` (default) is the serial,
                bit-exact baseline path, ``"auto"`` sizes the pool to the
                host, and ``N > 1`` runs chunk groups on ``N`` threads.
            pruning: Consult an
                :class:`~repro.core.involvement.InvolvementTracker` along
                the way (Algorithm 1's window) and skip chunk groups whose
                member chunks are all provably zero.
            tracer: Optional :class:`~repro.obs.Tracer`: per-gate compute
                spans, kernel counters, and worker-lane spans via the
                engine.
            fusion: ``"on"`` (default) contracts consecutive gates into
                slabs via :func:`~repro.statevector.fusion.fuse_slabs`
                before execution (results agree with the unfused path to
                ``atol <= 1e-12``); ``"off"`` applies gates one by one -
                bit-identical to the pre-fusion engine.
        """
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError(
                f"circuit width {circuit.num_qubits} != state width {self.num_qubits}"
            )
        if fusion not in ("on", "off"):
            raise SimulationError(f"fusion must be 'on' or 'off', got {fusion!r}")
        # Imported lazily: repro.core's package __init__ pulls in the
        # simulator, which imports this module - importing at the top
        # would cycle.
        from repro.obs.tracer import NULL_TRACER
        from repro.statevector.kernels import set_kernel_counters
        from repro.statevector.parallel import ParallelChunkEngine, resolve_workers

        if tracer is None:
            tracer = NULL_TRACER

        tracker = None
        if pruning:
            from repro.core.involvement import InvolvementTracker

            tracker = InvolvementTracker(self.num_qubits)

        resolved = resolve_workers(workers, 1 << self.num_qubits)
        engine = ParallelChunkEngine(resolved, tracer) if resolved > 1 else None
        previous_counters = (
            set_kernel_counters(
                tracer.counters, timing=not tracer.clock.deterministic
            )
            if tracer is not NULL_TRACER
            else None
        )
        ops = (
            fuse_slabs(list(circuit), chunk_bits=self.chunk_bits)
            if fusion == "on"
            else list(circuit)
        )
        try:
            for position, gate in enumerate(ops):
                groups = chunk_pair_groups(self.num_qubits, self.chunk_bits, gate.qubits)
                if tracker is not None:
                    from repro.core.pruning import chunk_is_pruned

                    # A slab only moves amplitude within its group (indices
                    # differing on union-qubit bits), so involving every
                    # member before pruning with the post-slab mask is exact.
                    for member in slab_members(gate):
                        tracker.involve(member)
                    live = [
                        members
                        for members in groups
                        if not all(
                            chunk_is_pruned(m, self.chunk_bits, tracker.mask)
                            for m in members
                        )
                    ]
                    if tracer is not NULL_TRACER:
                        tracer.counters.count(
                            "chunks.pruned",
                            sum(len(g) for g in groups) - sum(len(g) for g in live),
                        )
                    groups = live
                if tracer.enabled:
                    with tracer.span(
                        f"apply:{gate.name}", stage="compute", gate=position
                    ):
                        self.apply_groups(gate, groups, engine)
                else:
                    self.apply_groups(gate, groups, engine)
                if tracer is not NULL_TRACER:
                    tracer.counters.count(
                        "chunks.updated", sum(len(g) for g in groups)
                    )
        finally:
            if tracer is not NULL_TRACER:
                set_kernel_counters(*previous_counters)
            if engine is not None:
                engine.close()
        return self

    def chunk_is_zero(self, index: int, tolerance: float = 0.0) -> bool:
        """True when every amplitude in chunk ``index`` is (near) zero."""
        chunk = self.chunks[index]
        if tolerance == 0.0:
            return not np.any(chunk)
        return bool(np.all(np.abs(chunk) <= tolerance))

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> dict[int, int]:
        """Sample basis states chunk-by-chunk, never densifying.

        Two-level sampling: first draw the chunk from the per-chunk
        probability masses (zero chunks are never touched - the sampling
        analogue of pruning), then the offset within the chunk.
        """
        if shots <= 0:
            raise SimulationError(f"shots must be positive, got {shots}")
        if rng is None:
            rng = np.random.default_rng()
        masses = np.array(
            [
                float(np.sum(np.abs(chunk) ** 2, dtype=np.float64))
                for chunk in self.chunks
            ]
        )
        total = masses.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise SimulationError(f"state is not normalised (sum p = {total:.6f})")
        chunk_draws = rng.choice(self.num_chunks, size=shots, p=masses / total)
        counts: dict[int, int] = {}
        for chunk_index in chunk_draws:
            chunk = self.chunks[chunk_index]
            probabilities = np.abs(chunk.astype(np.complex128)) ** 2
            offset = int(rng.choice(self.chunk_size, p=probabilities / probabilities.sum()))
            outcome = (int(chunk_index) << self.chunk_bits) | offset
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts


__all__ = [
    "ChunkedStateVector",
    "chunk_pair_groups",
    "apply_diagonal_chunk",
    "chunk_diagonal_factor",
]
