"""Chunked state vector - the functional model of QISKit-Aer's partitioning.

The paper's baseline (Section III-B, Fig. 1) splits the ``2^n`` amplitude
vector into ``2^(n-m)`` chunks of ``2^m`` amplitudes: the low ``m`` index
bits address *within* a chunk, the high ``n-m`` bits select the chunk.

* A gate whose qubits are all ``< m`` ("Case 1") updates each chunk
  independently.
* A gate touching qubits ``>= m`` ("Case 2") pairs chunks whose indices
  differ in the corresponding chunk-index bits; the paired chunks must be
  gathered before the update.

This module implements those mechanics exactly, so the timed executor's
chunk-schedule logic can be validated against a functional ground truth:
running a circuit chunked must be bit-identical to running it dense.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import SimulationError
from repro.statevector.apply import apply_gate


def chunk_pair_groups(
    num_qubits: int, chunk_bits: int, gate_qubits: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """Group chunk indices that must be co-resident to apply a gate.

    Returns a list of tuples; each tuple holds the ``2^k`` chunk indices
    (``k`` = number of gate qubits outside the chunk) that form one
    independent update group, in ascending outside-bit order.  For a gate
    fully inside the chunk every group is a singleton.
    """
    num_chunks = 1 << (num_qubits - chunk_bits)
    outside = sorted(q - chunk_bits for q in gate_qubits if q >= chunk_bits)
    if not outside:
        return [(i,) for i in range(num_chunks)]
    outside_mask = 0
    for bit in outside:
        outside_mask |= 1 << bit
    groups: list[tuple[int, ...]] = []
    for base in range(num_chunks):
        if base & outside_mask:
            continue  # only enumerate canonical (all-zero outside bits) bases
        members = []
        for selector in range(1 << len(outside)):
            index = base
            for position, bit in enumerate(outside):
                if selector >> position & 1:
                    index |= 1 << bit
            members.append(index)
        groups.append(tuple(members))
    return groups


class ChunkedStateVector:
    """State vector stored as equally sized chunks.

    Args:
        num_qubits: Register width ``n``.
        chunk_bits: Amplitudes per chunk = ``2^chunk_bits``; must satisfy
            ``0 < chunk_bits <= n``.
    """

    def __init__(self, num_qubits: int, chunk_bits: int) -> None:
        if not 0 < chunk_bits <= num_qubits:
            raise SimulationError(
                f"chunk_bits must be in (0, {num_qubits}], got {chunk_bits}"
            )
        if num_qubits > 26:
            raise SimulationError(
                "functional chunked simulation is limited to 26 qubits"
            )
        self.num_qubits = num_qubits
        self.chunk_bits = chunk_bits
        self.num_chunks = 1 << (num_qubits - chunk_bits)
        self.chunks = [
            np.zeros(1 << chunk_bits, dtype=np.complex128)
            for _ in range(self.num_chunks)
        ]
        self.chunks[0][0] = 1.0

    @property
    def chunk_size(self) -> int:
        """Amplitudes per chunk."""
        return 1 << self.chunk_bits

    def to_dense(self) -> np.ndarray:
        """Concatenate all chunks into the full ``2^n`` vector."""
        return np.concatenate(self.chunks)

    @classmethod
    def from_dense(cls, amplitudes: np.ndarray, chunk_bits: int) -> "ChunkedStateVector":
        """Split a dense vector into chunks (copying)."""
        num_qubits = int(amplitudes.size).bit_length() - 1
        if amplitudes.size != 1 << num_qubits:
            raise SimulationError("amplitude count is not a power of two")
        out = cls(num_qubits, chunk_bits)
        for index in range(out.num_chunks):
            start = index << chunk_bits
            out.chunks[index][...] = amplitudes[start : start + out.chunk_size]
        return out

    def apply(self, gate: Gate) -> "ChunkedStateVector":
        """Apply one gate, gathering cross-chunk groups as Fig. 1 requires."""
        groups = chunk_pair_groups(self.num_qubits, self.chunk_bits, gate.qubits)
        outside = [q for q in gate.qubits if q >= self.chunk_bits]
        if not outside:
            for chunk in self.chunks:
                apply_gate(chunk, gate)
            return self

        # Remap outside qubits onto the extra axes of the gathered buffer:
        # gathered index = (group member rank << chunk_bits) | offset, with
        # member rank bits ordered by ascending outside-qubit index.
        ascending_outside = sorted(outside)
        mapping = {q: q for q in gate.qubits if q < self.chunk_bits}
        for rank, q in enumerate(ascending_outside):
            mapping[q] = self.chunk_bits + rank
        remapped = gate.remapped(mapping)

        for members in groups:
            gathered = np.concatenate([self.chunks[index] for index in members])
            apply_gate(gathered, remapped)
            for position, index in enumerate(members):
                start = position << self.chunk_bits
                self.chunks[index][...] = gathered[start : start + self.chunk_size]
        return self

    def run(self, circuit: QuantumCircuit) -> "ChunkedStateVector":
        """Apply every gate of ``circuit`` in order."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError(
                f"circuit width {circuit.num_qubits} != state width {self.num_qubits}"
            )
        for gate in circuit:
            self.apply(gate)
        return self

    def chunk_is_zero(self, index: int, tolerance: float = 0.0) -> bool:
        """True when every amplitude in chunk ``index`` is (near) zero."""
        chunk = self.chunks[index]
        if tolerance == 0.0:
            return not np.any(chunk)
        return bool(np.all(np.abs(chunk) <= tolerance))

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> dict[int, int]:
        """Sample basis states chunk-by-chunk, never densifying.

        Two-level sampling: first draw the chunk from the per-chunk
        probability masses (zero chunks are never touched - the sampling
        analogue of pruning), then the offset within the chunk.
        """
        if shots <= 0:
            raise SimulationError(f"shots must be positive, got {shots}")
        if rng is None:
            rng = np.random.default_rng()
        masses = np.array(
            [float(np.sum(np.abs(chunk) ** 2)) for chunk in self.chunks]
        )
        total = masses.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise SimulationError(f"state is not normalised (sum p = {total:.6f})")
        chunk_draws = rng.choice(self.num_chunks, size=shots, p=masses / total)
        counts: dict[int, int] = {}
        for chunk_index in chunk_draws:
            chunk = self.chunks[chunk_index]
            probabilities = np.abs(chunk) ** 2
            offset = int(rng.choice(self.chunk_size, p=probabilities / probabilities.sum()))
            outcome = (int(chunk_index) << self.chunk_bits) | offset
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts
