"""Density-matrix simulation with mid-circuit measurement and noise.

Section II-B notes that tracking the density matrix ``rho = |psi><psi|`` is
"useful when measurement is required during simulation" (the route taken by
the multi-GPU work of Li et al. the paper compares against).  This engine
provides that capability: unitary evolution ``U rho U^dagger``, projective
mid-circuit measurement with collapse, and the standard single-qubit noise
channels, all as exact ``4^n``-element linear algebra (practical to ~13
qubits).

The gate kernels reuse the state-vector kernels: a density matrix reshaped
to ``(2^n, 2^n)`` evolves by applying the gate to every column (``U rho``)
and then the conjugated gate to every row (``rho U^dagger``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import SimulationError
from repro.statevector.apply import apply_gate
from repro.statevector.state import StateVector

MAX_DENSITY_QUBITS = 13


@dataclass(frozen=True)
class KrausChannel:
    """A completely positive trace-preserving map on one qubit.

    Attributes:
        name: Channel label for reports.
        operators: Kraus operators ``K_i`` with ``sum K_i^dagger K_i = I``.
    """

    name: str
    operators: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        total = sum(op.conj().T @ op for op in self.operators)
        if not np.allclose(total, np.eye(2), atol=1e-10):
            raise SimulationError(f"channel {self.name!r} is not trace-preserving")


def depolarizing(probability: float) -> KrausChannel:
    """Depolarizing channel: with probability ``p`` replace by I/2."""
    if not 0 <= probability <= 1:
        raise SimulationError("probability must be in [0, 1]")
    p = probability
    identity = np.eye(2, dtype=np.complex128)
    paulis = [Gate(name, (0,)).matrix() for name in ("x", "y", "z")]
    ops = [np.sqrt(1 - 3 * p / 4) * identity] + [np.sqrt(p / 4) * m for m in paulis]
    return KrausChannel(f"depolarizing({p})", tuple(ops))


def amplitude_damping(gamma: float) -> KrausChannel:
    """Amplitude damping: ``|1> -> |0>`` with probability ``gamma``."""
    if not 0 <= gamma <= 1:
        raise SimulationError("gamma must be in [0, 1]")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=np.complex128)
    return KrausChannel(f"amplitude_damping({gamma})", (k0, k1))


def phase_damping(lam: float) -> KrausChannel:
    """Phase damping (pure dephasing) with rate ``lam``."""
    if not 0 <= lam <= 1:
        raise SimulationError("lambda must be in [0, 1]")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - lam)]], dtype=np.complex128)
    k1 = np.array([[0, 0], [0, np.sqrt(lam)]], dtype=np.complex128)
    return KrausChannel(f"phase_damping({lam})", (k0, k1))


class DensityMatrix:
    """An ``2^n x 2^n`` density operator, initially ``|0..0><0..0|``."""

    def __init__(self, num_qubits: int, matrix: np.ndarray | None = None) -> None:
        if num_qubits <= 0:
            raise SimulationError("num_qubits must be positive")
        if num_qubits > MAX_DENSITY_QUBITS:
            raise SimulationError(
                f"density simulation beyond {MAX_DENSITY_QUBITS} qubits "
                "needs more than a few GiB"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if matrix is None:
            self.rho = np.zeros((dim, dim), dtype=np.complex128)
            self.rho[0, 0] = 1.0
        else:
            if matrix.shape != (dim, dim):
                raise SimulationError("density matrix shape mismatch")
            self.rho = np.asarray(matrix, dtype=np.complex128).copy()

    @classmethod
    def from_statevector(cls, state: StateVector) -> "DensityMatrix":
        """Pure-state density matrix ``|psi><psi|``."""
        psi = state.amplitudes
        return cls(state.num_qubits, np.outer(psi, psi.conj()))

    # -- evolution -------------------------------------------------------------

    def apply(self, gate: Gate) -> "DensityMatrix":
        """Unitary update ``rho <- U rho U^dagger`` in place.

        Computed as ``U (U rho)^dagger)^dagger`` so both halves reuse the
        column-wise state-vector kernels.
        """
        for q in gate.qubits:
            if q >= self.num_qubits:
                raise SimulationError(f"gate {gate} exceeds register width")
        half = _left_apply_gate(gate, self.rho)           # U rho
        self.rho = _left_apply_gate(gate, half.conj().T).conj().T
        return self

    def apply_channel(self, channel: KrausChannel, qubit: int) -> "DensityMatrix":
        """Apply a single-qubit Kraus channel to ``qubit`` in place."""
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        dim = 1 << self.num_qubits
        result = np.zeros((dim, dim), dtype=np.complex128)
        for op in channel.operators:
            half = _left_multiply(op, qubit, self.rho)    # K rho
            result += _left_multiply(op, qubit, half.conj().T).conj().T
        self.rho = result
        return self

    def run(self, circuit: QuantumCircuit,
            noise: KrausChannel | None = None) -> "DensityMatrix":
        """Apply a circuit, optionally following every gate with ``noise``
        on each of the gate's qubits (a simple uniform noise model)."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width mismatch")
        for gate in circuit:
            self.apply(gate)
            if noise is not None:
                for q in gate.qubits:
                    self.apply_channel(noise, q)
        return self

    # -- measurement -------------------------------------------------------------

    def probability_of_one(self, qubit: int) -> float:
        """``P(measure 1)`` on ``qubit``."""
        indices = np.arange(1 << self.num_qubits)
        mask = (indices >> qubit & 1).astype(bool)
        return float(np.real(np.trace(self.rho[np.ix_(mask, mask)])))

    def measure(self, qubit: int, rng: np.random.Generator | None = None) -> int:
        """Projective mid-circuit measurement with collapse; returns 0/1."""
        if rng is None:
            rng = np.random.default_rng()
        p_one = self.probability_of_one(qubit)
        outcome = int(rng.random() < p_one)
        indices = np.arange(1 << self.num_qubits)
        keep = ((indices >> qubit & 1) == outcome)
        projector = np.where(keep, 1.0, 0.0)
        self.rho = self.rho * projector[:, None] * projector[None, :]
        norm = float(np.real(np.trace(self.rho)))
        if norm <= 0:
            raise SimulationError("measurement collapsed to zero trace")
        self.rho /= norm
        return outcome

    # -- queries -------------------------------------------------------------------

    def trace(self) -> float:
        return float(np.real(np.trace(self.rho)))

    def purity(self) -> float:
        """``tr(rho^2)``: 1 for pure states, 1/2^n for maximally mixed."""
        return float(np.real(np.trace(self.rho @ self.rho)))

    def probabilities(self) -> np.ndarray:
        return np.real(np.diag(self.rho)).copy()

    def fidelity_with_pure(self, state: StateVector) -> float:
        """``<psi| rho |psi>`` against a pure reference."""
        psi = state.amplitudes
        return float(np.real(psi.conj() @ self.rho @ psi))


def _left_apply_gate(gate: Gate, matrix: np.ndarray) -> np.ndarray:
    """``U @ matrix`` where ``U`` is the gate embedded on ``n`` qubits.

    Applies the state-vector kernel to every column (rows of the
    transposed copy, which are contiguous).
    """
    columns = np.ascontiguousarray(matrix.T)
    for k in range(columns.shape[0]):
        apply_gate(columns[k], gate)
    return columns.T


def _left_multiply(op: np.ndarray, qubit: int, matrix: np.ndarray) -> np.ndarray:
    """``K @ matrix`` for a (possibly non-unitary) 2x2 ``op`` on ``qubit``."""
    dim = matrix.shape[0]
    n = dim.bit_length() - 1
    columns = np.ascontiguousarray(matrix.T)
    tensor = columns.reshape(dim, *(2,) * n)
    axis = 1 + (n - 1 - qubit)
    moved = np.moveaxis(tensor, axis, 1)
    shaped = moved.reshape(dim, 2, -1)  # copies when staggered
    updated = np.einsum("ab,kbm->kam", op, shaped, optimize=True)
    moved[...] = updated.reshape(moved.shape)
    return columns.T
