"""Zero-copy chunk kernels for the functional engine.

The baseline chunked engine (Fig. 1 mechanics) applies a cross-chunk gate
by *gathering* the paired chunks into a fresh ``2x``-sized buffer with
``np.concatenate``, running the dense kernel on it, and scattering the
result back.  Per pair group that is two full copies of the data on top of
the arithmetic - pure memory traffic the GPU recipes in the paper never
pay, because a real simulator indexes amplitude pairs in place.

This module provides the copy-avoiding equivalents, all operating directly
on the chunk storage:

* :func:`apply_pair` - the 2x2 amplitude-pair kernel for a single-qubit
  gate whose qubit selects the chunk index (the dominant cross-chunk
  case): both chunk arrays are updated in place, no concatenation, no
  temporary double-size buffer.
* :func:`apply_single_qubit_inplace` - the tiled *in-place* sweep the
  parallel engine runs whenever every chunk group of a single-qubit gate
  (or width-1 slab) is live: the buffer is viewed as ``(above, 2, below)``
  and each L2-sized tile runs one batched matmul into a thread-local
  scratch, copied back while the tile is still hot.  No second full-size
  buffer, so the sweep never pays write-allocate traffic on a cold
  destination; real gate matrices additionally run on the float view of
  the buffer (half the arithmetic for the same traffic).
* :func:`apply_single_qubit_fused` - the out-of-place sibling for callers
  that want the result in a distinct buffer: one batched
  ``(2,2) @ (groups, 2, w)`` matmul from ``source`` into ``dest`` (swap
  afterwards - zero copy-back).  Slabs of the batch axis can be
  dispatched to different workers.
* :func:`chunk_diagonal_factor` / :func:`apply_diagonal_chunk` - diagonal
  gates never pair chunks at all: each amplitude is multiplied by a phase
  selected by its own index bits, so every chunk updates in place with a
  multiplier vector derived from the chunk index.  Bit-identical to the
  gathered path (the same complex multiplier hits the same amplitude).
  Fusion slabs (:mod:`repro.statevector.fusion`) flow through the same
  entry points by duck-typing :class:`~repro.circuits.gates.Gate`.

All kernels are shape-agnostic numpy; the worker pool in
:mod:`repro.statevector.parallel` distributes them across chunk groups.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.circuits.gates import Gate
from repro.errors import SimulationError

#: Installed :class:`~repro.obs.counters.CounterRegistry` (or None).  A
#: module-level hook rather than a parameter so the hot kernel call sites
#: stay signature-stable; dispatchers count per *gate* (batched), never per
#: chunk, so the disabled cost is one None-check per gate.
_kernel_counters = None

#: Whether dispatch wall-timing (``kernel_seconds.<kind>``) is recorded.
#: Deterministic-clock runs install ``timing=False``: wall seconds would
#: break the byte-identical logical-clock trace promise, while the
#: amps/bytes work counters are exact integers and stay.
_kernel_timing = True


def set_kernel_counters(registry, timing=True):
    """Install the registry kernel work is recorded into.

    Pass ``None`` to disable counting; ``timing=False`` keeps the
    deterministic amps/bytes counters but skips wall-seconds (what the
    simulator installs for logical-clock tracers).  Returns the previous
    ``(registry, timing)`` pair - restore it with
    ``set_kernel_counters(*previous)``.
    """
    global _kernel_counters, _kernel_timing
    previous = (_kernel_counters, _kernel_timing)
    _kernel_counters = registry
    _kernel_timing = timing
    return previous


def count_kernel(kind: str, n: int = 1) -> None:
    """Record ``n`` kernel invocations of ``kind`` (no-op when uninstalled)."""
    registry = _kernel_counters
    if registry is not None:
        registry.count(f"kernels.{kind}", n)


class _NullWork:
    """Shared no-op work scope for the uninstalled-registry path."""

    __slots__ = ()

    def __enter__(self) -> "_NullWork":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_WORK = _NullWork()


class _KernelWork:
    """Times one batched kernel dispatch; records amps, bytes, seconds."""

    __slots__ = ("kind", "amps", "nbytes", "_start")

    def __init__(self, kind: str, amps: int, nbytes: int) -> None:
        self.kind = kind
        self.amps = amps
        self.nbytes = nbytes
        self._start = 0.0

    def __enter__(self) -> "_KernelWork":
        self._start = time.perf_counter() if _kernel_timing else 0.0
        return self

    def __exit__(self, *exc_info: object) -> bool:
        registry = _kernel_counters
        if registry is not None:
            if _kernel_timing:
                elapsed = time.perf_counter() - self._start
                registry.add(f"kernel_seconds.{self.kind}", elapsed)
            registry.add(f"kernel_amps.{self.kind}", self.amps)
            registry.add(f"kernel_bytes.{self.kind}", self.nbytes)
        return False


def kernel_work(kind: str, amps: int, itemsize: int = 16):
    """Work scope around one batched kernel dispatch of ``kind``.

    Use as a context manager wrapping the whole per-gate dispatch (never
    per chunk); on exit it accumulates ``kernel_seconds.<kind>``,
    ``kernel_amps.<kind>`` and ``kernel_bytes.<kind>`` into the installed
    registry - the live-roofline inputs :mod:`repro.obs.roofline` turns
    into achieved amps/s and bytes/amp per kernel kind.

    Bytes use the DES cost model's convention (read + write every touched
    amplitude: ``2 * amps * itemsize``, see
    :class:`~repro.core.executor`), so achieved bandwidth is directly
    comparable with the model's bound; kinds that move extra traffic
    (``gather``'s copy in/out) simply land further from the roof, which
    is the point of measuring them.

    When no registry is installed this returns a shared no-op scope: the
    disabled cost is one module-global read per gate.
    """
    if _kernel_counters is None:
        return _NULL_WORK
    return _KernelWork(kind, amps, 2 * amps * itemsize)


#: Amplitudes each fused matmul call touches: ~4 MiB of complex128, sized
#: so one tile's read+write traffic stays cache-resident (measured fastest
#: across qubit positions at 2^20-2^22 amplitudes).
_TILE_AMPS = 1 << 18

#: Pair elements per scratch tile for the in-place kernels: sized so a
#: whole (tile, scratch) working set stays L2-resident - measured fastest
#: at 256-512 KiB across qubit positions, distinctly ahead of both larger
#: tiles (L2 spill) and whole-buffer double-buffering (write-allocate
#: traffic on a second full-size destination).
_SCRATCH_AMPS = 1 << 15

#: Thread-local scratch store: the tiled in-place kernels reuse two
#: _SCRATCH_AMPS-sized vectors per (thread, dtype) instead of allocating
#: fresh full-chunk temporaries on every call.
_scratch_store = threading.local()


def _pair_scratch(dtype: np.dtype, amps: int) -> tuple[np.ndarray, np.ndarray]:
    """Two thread-local scratch vectors of at least ``amps`` elements."""
    buffers = getattr(_scratch_store, "buffers", None)
    if buffers is None:
        buffers = _scratch_store.buffers = {}
    key = np.dtype(dtype).str
    pair = buffers.get(key)
    if pair is None or pair[0].size < amps:
        size = max(amps, _SCRATCH_AMPS)
        pair = buffers[key] = (
            np.empty(size, dtype=dtype),
            np.empty(size, dtype=dtype),
        )
    return pair


def _tile_scratch(dtype: np.dtype, elems: int) -> np.ndarray:
    """One thread-local contiguous scratch vector of at least ``elems``."""
    tiles = getattr(_scratch_store, "tiles", None)
    if tiles is None:
        tiles = _scratch_store.tiles = {}
    key = np.dtype(dtype).str
    vec = tiles.get(key)
    if vec is None or vec.size < elems:
        vec = tiles[key] = np.empty(elems, dtype=dtype)
    return vec


def _matmul_tile(matrix: np.ndarray, tile: np.ndarray, scratch: np.ndarray) -> None:
    """Apply ``matrix`` to one ``(rows, 2, cols)`` tile, in place.

    The batched matmul lands in the cache-resident ``scratch`` and is
    copied straight back while the tile is still hot - the buffer never
    needs a full-size second copy.
    """
    out = scratch[: tile.size].reshape(tile.shape)
    np.matmul(matrix, tile, out=out)
    tile[...] = out


def _pair_update(lo: np.ndarray, hi: np.ndarray, coeffs: tuple) -> None:
    """One tile of the 2x2 pair recurrence, in place via shared scratch.

    The operation order is fixed (and identical across tilings): the
    update is element-wise, so splitting it over tiles cannot change a
    single floating-point result.
    """
    m00, m01, m10, m11 = coeffs
    s0, s1 = _pair_scratch(lo.dtype, lo.size)
    t0 = s0[: lo.size].reshape(lo.shape)
    t1 = s1[: lo.size].reshape(lo.shape)
    np.multiply(lo, m00, out=t0)
    np.multiply(hi, m01, out=t1)
    t0 += t1
    np.multiply(lo, m10, out=t1)
    np.multiply(hi, m11, out=hi)
    hi += t1
    lo[...] = t0


def apply_pair(low: np.ndarray, high: np.ndarray, matrix: np.ndarray) -> None:
    """Update an amplitude-pair of chunks with a 2x2 unitary, in place.

    ``low``/``high`` hold the amplitudes whose pairing index bit is 0/1;
    the arrays are updated element-wise (Equation 8 of the paper with the
    pair stride equal to a whole chunk), tiled through one thread-local
    scratch pair so peak allocation stays at two cache-sized tiles instead
    of two full-chunk temporaries per call.
    """
    if matrix.shape != (2, 2):
        raise SimulationError(f"pair kernel needs a 2x2 matrix, got {matrix.shape}")
    matrix = np.asarray(matrix, dtype=low.dtype)
    coeffs = (matrix[0, 0], matrix[0, 1], matrix[1, 0], matrix[1, 1])
    if low.ndim != 1:
        # Rare shape-agnostic call: one whole-array tile (scratch grows).
        _pair_update(low, high, coeffs)
        return
    for start in range(0, low.size, _SCRATCH_AMPS):
        end = min(start + _SCRATCH_AMPS, low.size)
        _pair_update(low[start:end], high[start:end], coeffs)


def apply_single_qubit_inplace(
    buffer: np.ndarray,
    matrix: np.ndarray,
    qubit: int,
    part: int = 0,
    parts: int = 1,
) -> None:
    """Tiled in-place pair update of a contiguous buffer (no second buffer).

    The in-place sibling of :func:`apply_single_qubit_fused`: the buffer
    is viewed as ``(above, 2, below)`` with ``qubit`` on the middle axis
    and each L2-sized tile runs one batched matmul into the shared
    scratch, copied straight back while the tile is hot — no output
    buffer, no swap, no gather, and no write-allocate traffic on a
    second full-size destination (measured ~1.4x over the double-buffer
    sweep at 2^22 amplitudes).  Real gate matrices additionally run on
    the float view of the buffer, halving the matmul arithmetic.

    Args:
        buffer: Contiguous amplitude buffer, updated in place.
        matrix: The 2x2 gate unitary.
        qubit: Target qubit index relative to ``buffer`` (``buffer.size``
            must cover ``2^(qubit+1)`` amplitudes).
        part: This worker's slab index in ``[0, parts)``.
        parts: Number of disjoint contiguous slabs the work is split
            into; the union over all parts covers the buffer exactly.
    """
    if matrix.shape != (2, 2):
        raise SimulationError(f"pair kernel needs a 2x2 matrix, got {matrix.shape}")
    if buffer.size < (1 << (qubit + 1)):
        raise SimulationError(
            f"buffer of {buffer.size} amps cannot host qubit {qubit}"
        )
    below = 1 << qubit
    above = buffer.size >> (qubit + 1)
    matrix = np.asarray(matrix, dtype=buffer.dtype)
    if buffer.dtype.kind == "c" and not matrix.imag.any():
        # Real gate matrix (h, x, the recipe's dominant single-qubit
        # sweeps): a real coefficient scales the re/im components of a
        # complex amplitude independently, so the identical sweep runs as
        # a *real* matmul over the float view - half the arithmetic for
        # the same memory traffic, and any tile or part boundary on the
        # float axis stays correct because every float component
        # transforms independently.
        float_dtype = np.float32 if buffer.dtype == np.complex64 else np.float64
        matrix = np.ascontiguousarray(matrix.real, dtype=float_dtype)
        buffer = buffer.view(float_dtype)
        below *= 2
    view = buffer.reshape(above, 2, below)
    # The column-split path keeps whole rows per tile, so the scratch must
    # cover one full row pair even when the budget is tiny.
    scratch = _tile_scratch(buffer.dtype, max(2 * _SCRATCH_AMPS, 2 * above))
    if above >= parts:
        start = part * above // parts
        stop = (part + 1) * above // parts
        if below <= _SCRATCH_AMPS:
            step = max(1, _SCRATCH_AMPS // below)
            for row in range(start, stop, step):
                end = min(row + step, stop)
                _matmul_tile(matrix, view[row:end], scratch)
        else:
            # A single batch row overflows the scratch budget (low `above`,
            # huge `below`): tile along the column axis within each row.
            for row in range(start, stop):
                for col in range(0, below, _SCRATCH_AMPS):
                    end = min(col + _SCRATCH_AMPS, below)
                    _matmul_tile(matrix, view[row : row + 1, :, col:end], scratch)
        return
    # Too few batch rows (qubit near the top): split the column axis instead.
    start = part * below // parts
    stop = (part + 1) * below // parts
    step = max(1, _SCRATCH_AMPS // max(1, 2 * above))
    for col in range(start, stop, step):
        end = min(col + step, stop)
        _matmul_tile(matrix, view[:, :, col:end], scratch)


def apply_single_qubit_fused(
    source: np.ndarray,
    dest: np.ndarray,
    matrix: np.ndarray,
    qubit: int,
    part: int = 0,
    parts: int = 1,
) -> None:
    """Batched pair update of a whole state vector, written to ``dest``.

    Viewing the ``2^n`` backing buffer as ``(above, 2, below)`` with the
    target ``qubit`` on the middle axis turns every amplitude pair of the
    gate into one column of a batched matmul - a single BLAS-backed call
    replaces the per-group gather/compute/scatter loop.  ``dest`` must be
    a distinct buffer of the same size; the caller swaps the two
    afterwards instead of copying back.

    Args:
        source: Contiguous amplitude buffer (read).
        dest: Contiguous output buffer of identical size (written).
        matrix: The 2x2 gate unitary.
        qubit: Global target qubit index.
        part: This worker's slab index in ``[0, parts)``.
        parts: Number of slabs the batch axis is split into; slab
            boundaries are chosen so every worker owns a contiguous,
            disjoint range and the union covers the whole state.
    """
    below = 1 << qubit
    above = source.size >> (qubit + 1)
    matrix = np.asarray(matrix, dtype=source.dtype)
    if source.dtype.kind == "c" and not matrix.imag.any():
        # Real gate matrix (h, x, the paper's dominant single-qubit
        # sweeps): a real coefficient scales the re/im components of a
        # complex amplitude independently, so the identical sweep runs as
        # a *real* matmul over the float view - half the arithmetic of a
        # complex matmul for the same memory traffic, and any tile or
        # part boundary on the float axis stays correct because every
        # float component transforms independently.
        float_dtype = np.float32 if source.dtype == np.complex64 else np.float64
        matrix = np.ascontiguousarray(matrix.real, dtype=float_dtype)
        source = source.view(float_dtype)
        dest = dest.view(float_dtype)
        below *= 2
    src = source.reshape(above, 2, below)
    dst = dest.reshape(above, 2, below)
    if parts == 1:
        # Single worker: the sweep is a pure stream through both buffers,
        # so one whole-array matmul beats any tiling (no reuse to keep
        # cache-resident, and BLAS picks better internal blocking than a
        # fixed tile step).
        np.matmul(matrix, src, out=dst)
        return
    if above >= parts:
        start = part * above // parts
        stop = (part + 1) * above // parts
        row_amps = 2 * below
        if row_amps <= _TILE_AMPS:
            step = max(1, _TILE_AMPS // row_amps)
            for row in range(start, stop, step):
                end = min(row + step, stop)
                np.matmul(matrix, src[row:end], out=dst[row:end])
        else:
            # A single batch row overflows the tile budget (low `above`,
            # huge `below`): tile along the column axis within each row.
            col_step = _TILE_AMPS // 2
            for row in range(start, stop):
                for col in range(0, below, col_step):
                    end = min(col + col_step, below)
                    np.matmul(
                        matrix,
                        src[row : row + 1, :, col:end],
                        out=dst[row : row + 1, :, col:end],
                    )
        return
    # Too few batch rows (qubit near the top): split the column axis instead.
    start = part * below // parts
    stop = (part + 1) * below // parts
    step = max(1, _TILE_AMPS // (2 * above))
    for col in range(start, stop, step):
        end = min(col + step, stop)
        np.matmul(matrix, src[:, :, col:end], out=dst[:, :, col:end])


def chunk_diagonal_factor(
    gate: Gate,
    chunk_bits: int,
    chunk_index: int,
    cache: dict[int, np.ndarray | complex] | None = None,
) -> np.ndarray | complex:
    """The per-amplitude multiplier of a diagonal gate, restricted to a chunk.

    A diagonal gate multiplies amplitude ``i`` by ``d[local(i)]`` where
    ``local(i)`` collects the bits of ``i`` at the gate's qubits.  Within
    one chunk the bits at qubits ``>= chunk_bits`` are fixed by the chunk
    index, so the multiplier is a function of the within-chunk offset only:
    a vector over the chunk (or a scalar when every gate qubit is outside).
    Chunks sharing the same outside-bit pattern share the factor; pass a
    ``cache`` dict (keyed on the pattern) to build each one once per gate.
    """
    diagonal = gate.diagonal()
    inside = [(pos, q) for pos, q in enumerate(gate.qubits) if q < chunk_bits]
    pattern = 0
    for pos, q in enumerate(gate.qubits):
        if q >= chunk_bits:
            pattern |= (chunk_index >> (q - chunk_bits) & 1) << pos
    if cache is not None and pattern in cache:
        return cache[pattern]
    if not inside:
        factor: np.ndarray | complex = complex(diagonal[pattern])
    else:
        offsets = np.arange(1 << chunk_bits)
        local = np.full(1 << chunk_bits, pattern, dtype=np.intp)
        for pos, q in inside:
            local |= (offsets >> q & 1) << pos
        factor = diagonal[local]
    if cache is not None:
        cache[pattern] = factor
    return factor


def apply_diagonal_chunk(
    chunk: np.ndarray,
    gate: Gate,
    chunk_bits: int,
    chunk_index: int,
    cache: dict[int, np.ndarray | complex] | None = None,
) -> None:
    """Apply a diagonal gate to one chunk in place - no pairing, no gather."""
    factor = chunk_diagonal_factor(gate, chunk_bits, chunk_index, cache)
    if isinstance(factor, np.ndarray):
        factor = np.asarray(factor, dtype=chunk.dtype)
    chunk *= factor
