"""Zero-copy chunk kernels for the functional engine.

The baseline chunked engine (Fig. 1 mechanics) applies a cross-chunk gate
by *gathering* the paired chunks into a fresh ``2x``-sized buffer with
``np.concatenate``, running the dense kernel on it, and scattering the
result back.  Per pair group that is two full copies of the data on top of
the arithmetic - pure memory traffic the GPU recipes in the paper never
pay, because a real simulator indexes amplitude pairs in place.

This module provides the copy-avoiding equivalents, all operating directly
on the chunk storage:

* :func:`apply_pair` - the 2x2 amplitude-pair kernel for a single-qubit
  gate whose qubit selects the chunk index (the dominant cross-chunk
  case): both chunk arrays are updated in place, no concatenation, no
  temporary double-size buffer.
* :func:`apply_single_qubit_fused` - when *every* chunk group is live, the
  per-group pair updates fuse into one batched ``(2,2) @ (groups, 2, w)``
  matmul over the contiguous backing buffer into a scratch buffer (the
  caller swaps buffers afterwards - zero copy-back).  Slabs of the batch
  axis can be dispatched to different workers.
* :func:`chunk_diagonal_factor` / :func:`apply_diagonal_chunk` - diagonal
  gates never pair chunks at all: each amplitude is multiplied by a phase
  selected by its own index bits, so every chunk updates in place with a
  multiplier vector derived from the chunk index.  Bit-identical to the
  gathered path (the same complex multiplier hits the same amplitude).

All kernels are shape-agnostic numpy; the worker pool in
:mod:`repro.statevector.parallel` distributes them across chunk groups.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.gates import Gate
from repro.errors import SimulationError

#: Installed :class:`~repro.obs.counters.CounterRegistry` (or None).  A
#: module-level hook rather than a parameter so the hot kernel call sites
#: stay signature-stable; dispatchers count per *gate* (batched), never per
#: chunk, so the disabled cost is one None-check per gate.
_kernel_counters = None


def set_kernel_counters(registry):
    """Install the registry kernel invocations count into; returns the old one.

    Pass ``None`` to disable counting.  Callers restore the previous
    registry when done (the simulator does this around each run).
    """
    global _kernel_counters
    previous = _kernel_counters
    _kernel_counters = registry
    return previous


def count_kernel(kind: str, n: int = 1) -> None:
    """Record ``n`` kernel invocations of ``kind`` (no-op when uninstalled)."""
    registry = _kernel_counters
    if registry is not None:
        registry.count(f"kernels.{kind}", n)


def apply_pair(low: np.ndarray, high: np.ndarray, matrix: np.ndarray) -> None:
    """Update an amplitude-pair of chunks with a 2x2 unitary, in place.

    ``low``/``high`` hold the amplitudes whose pairing index bit is 0/1;
    the arrays are updated element-wise (Equation 8 of the paper with the
    pair stride equal to a whole chunk), touching no buffer larger than a
    single chunk.
    """
    if matrix.shape != (2, 2):
        raise SimulationError(f"pair kernel needs a 2x2 matrix, got {matrix.shape}")
    matrix = np.asarray(matrix, dtype=low.dtype)
    new_low = matrix[0, 0] * low
    new_low += matrix[0, 1] * high
    new_high = matrix[1, 1] * high
    new_high += matrix[1, 0] * low
    low[...] = new_low
    high[...] = new_high


#: Amplitudes each fused matmul call touches: ~4 MiB of complex128, sized
#: so one tile's read+write traffic stays cache-resident (measured fastest
#: across qubit positions at 2^20-2^22 amplitudes).
_TILE_AMPS = 1 << 18


def apply_single_qubit_fused(
    source: np.ndarray,
    dest: np.ndarray,
    matrix: np.ndarray,
    qubit: int,
    part: int = 0,
    parts: int = 1,
) -> None:
    """Batched pair update of a whole state vector, written to ``dest``.

    Viewing the ``2^n`` backing buffer as ``(above, 2, below)`` with the
    target ``qubit`` on the middle axis turns every amplitude pair of the
    gate into one column of a batched matmul - a single BLAS-backed call
    replaces the per-group gather/compute/scatter loop.  ``dest`` must be
    a distinct buffer of the same size; the caller swaps the two
    afterwards instead of copying back.

    Args:
        source: Contiguous amplitude buffer (read).
        dest: Contiguous output buffer of identical size (written).
        matrix: The 2x2 gate unitary.
        qubit: Global target qubit index.
        part: This worker's slab index in ``[0, parts)``.
        parts: Number of slabs the batch axis is split into; slab
            boundaries are chosen so every worker owns a contiguous,
            disjoint range and the union covers the whole state.
    """
    below = 1 << qubit
    above = source.size >> (qubit + 1)
    matrix = np.asarray(matrix, dtype=source.dtype)
    src = source.reshape(above, 2, below)
    dst = dest.reshape(above, 2, below)
    if above >= parts:
        start = part * above // parts
        stop = (part + 1) * above // parts
        row_amps = 2 * below
        if row_amps <= _TILE_AMPS:
            step = max(1, _TILE_AMPS // row_amps)
            for row in range(start, stop, step):
                end = min(row + step, stop)
                np.matmul(matrix, src[row:end], out=dst[row:end])
        else:
            # A single batch row overflows the tile budget (low `above`,
            # huge `below`): tile along the column axis within each row.
            col_step = _TILE_AMPS // 2
            for row in range(start, stop):
                for col in range(0, below, col_step):
                    end = min(col + col_step, below)
                    np.matmul(
                        matrix,
                        src[row : row + 1, :, col:end],
                        out=dst[row : row + 1, :, col:end],
                    )
        return
    # Too few batch rows (qubit near the top): split the column axis instead.
    start = part * below // parts
    stop = (part + 1) * below // parts
    step = max(1, _TILE_AMPS // (2 * above))
    for col in range(start, stop, step):
        end = min(col + step, stop)
        np.matmul(matrix, src[:, :, col:end], out=dst[:, :, col:end])


def chunk_diagonal_factor(
    gate: Gate,
    chunk_bits: int,
    chunk_index: int,
    cache: dict[int, np.ndarray | complex] | None = None,
) -> np.ndarray | complex:
    """The per-amplitude multiplier of a diagonal gate, restricted to a chunk.

    A diagonal gate multiplies amplitude ``i`` by ``d[local(i)]`` where
    ``local(i)`` collects the bits of ``i`` at the gate's qubits.  Within
    one chunk the bits at qubits ``>= chunk_bits`` are fixed by the chunk
    index, so the multiplier is a function of the within-chunk offset only:
    a vector over the chunk (or a scalar when every gate qubit is outside).
    Chunks sharing the same outside-bit pattern share the factor; pass a
    ``cache`` dict (keyed on the pattern) to build each one once per gate.
    """
    diagonal = gate.diagonal()
    inside = [(pos, q) for pos, q in enumerate(gate.qubits) if q < chunk_bits]
    pattern = 0
    for pos, q in enumerate(gate.qubits):
        if q >= chunk_bits:
            pattern |= (chunk_index >> (q - chunk_bits) & 1) << pos
    if cache is not None and pattern in cache:
        return cache[pattern]
    if not inside:
        factor: np.ndarray | complex = complex(diagonal[pattern])
    else:
        offsets = np.arange(1 << chunk_bits)
        local = np.full(1 << chunk_bits, pattern, dtype=np.intp)
        for pos, q in inside:
            local |= (offsets >> q & 1) << pos
        factor = diagonal[local]
    if cache is not None:
        cache[pattern] = factor
    return factor


def apply_diagonal_chunk(
    chunk: np.ndarray,
    gate: Gate,
    chunk_bits: int,
    chunk_index: int,
    cache: dict[int, np.ndarray | complex] | None = None,
) -> None:
    """Apply a diagonal gate to one chunk in place - no pairing, no gather."""
    factor = chunk_diagonal_factor(gate, chunk_bits, chunk_index, cache)
    if isinstance(factor, np.ndarray):
        factor = np.asarray(factor, dtype=chunk.dtype)
    chunk *= factor
