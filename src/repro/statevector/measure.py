"""Measurement utilities: sampling, marginals, expectation values.

The paper only measures at the end of circuits (Section II-B), so these are
terminal-state operations over a :class:`~repro.statevector.state.StateVector`
or a raw amplitude array.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def _amplitudes_of(state) -> np.ndarray:
    amplitudes = getattr(state, "amplitudes", state)
    amplitudes = np.asarray(amplitudes)
    if amplitudes.ndim != 1:
        raise SimulationError("expected a 1-D amplitude vector")
    return amplitudes


def probabilities(state) -> np.ndarray:
    """``|a_i|^2`` for every basis state."""
    return np.abs(_amplitudes_of(state)) ** 2


def sample_counts(state, shots: int, seed: int = 0) -> dict[int, int]:
    """Sample ``shots`` basis-state measurements; returns index -> count."""
    if shots <= 0:
        raise SimulationError(f"shots must be positive, got {shots}")
    probs = probabilities(state)
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise SimulationError(f"state is not normalised (sum p = {total:.6f})")
    rng = np.random.default_rng(seed)
    outcomes = rng.choice(probs.size, size=shots, p=probs / total)
    values, counts = np.unique(outcomes, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def marginal_probability(state, qubit: int) -> float:
    """Probability of measuring ``1`` on ``qubit``."""
    amplitudes = _amplitudes_of(state)
    n = int(amplitudes.size).bit_length() - 1
    if not 0 <= qubit < n:
        raise SimulationError(f"qubit {qubit} out of range for {n}-qubit state")
    indices = np.arange(amplitudes.size)
    mask = (indices >> qubit & 1).astype(bool)
    return float(np.sum(np.abs(amplitudes[mask]) ** 2))


def expectation_z(state, qubit: int) -> float:
    """Expectation value of Pauli-Z on ``qubit``: ``p0 - p1``."""
    p1 = marginal_probability(state, qubit)
    return 1.0 - 2.0 * p1


def most_probable(state) -> int:
    """Basis index with the largest probability."""
    return int(np.argmax(probabilities(state)))
