"""Dense and chunked Schroedinger-style state-vector simulation, plus
density matrices, Pauli observables, and compressed persistence."""

from repro.statevector.apply import (
    apply_controlled,
    apply_diagonal,
    apply_gate,
    apply_matrix,
)
from repro.statevector.chunks import ChunkedStateVector, chunk_pair_groups
from repro.statevector.density import (
    DensityMatrix,
    KrausChannel,
    amplitude_damping,
    depolarizing,
    phase_damping,
)
from repro.statevector.expectation import (
    Observable,
    PauliString,
    apply_pauli,
    expectation_pauli,
    ising_energy,
)
from repro.statevector.io import dump_state, load_state, roundtrip_bytes
from repro.statevector.measure import (
    expectation_z,
    marginal_probability,
    most_probable,
    probabilities,
    sample_counts,
)
from repro.statevector.state import StateVector, simulate

__all__ = [
    "ChunkedStateVector",
    "DensityMatrix",
    "KrausChannel",
    "Observable",
    "PauliString",
    "StateVector",
    "amplitude_damping",
    "apply_controlled",
    "apply_diagonal",
    "apply_gate",
    "apply_matrix",
    "apply_pauli",
    "chunk_pair_groups",
    "depolarizing",
    "dump_state",
    "expectation_pauli",
    "expectation_z",
    "ising_energy",
    "load_state",
    "marginal_probability",
    "most_probable",
    "phase_damping",
    "probabilities",
    "roundtrip_bytes",
    "sample_counts",
    "simulate",
]
