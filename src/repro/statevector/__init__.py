"""Dense and chunked Schroedinger-style state-vector simulation, plus
density matrices, Pauli observables, and compressed persistence."""

from repro.statevector.apply import (
    apply_controlled,
    apply_diagonal,
    apply_gate,
    apply_matrix,
)
from repro.statevector.chunks import ChunkedStateVector, chunk_pair_groups
from repro.statevector.density import (
    DensityMatrix,
    KrausChannel,
    amplitude_damping,
    depolarizing,
    phase_damping,
)
from repro.statevector.expectation import (
    Observable,
    PauliString,
    apply_pauli,
    expectation_pauli,
    ising_energy,
)
from repro.statevector.io import dump_state, load_state, roundtrip_bytes
from repro.statevector.kernels import (
    apply_diagonal_chunk,
    apply_pair,
    apply_single_qubit_fused,
    chunk_diagonal_factor,
)
from repro.statevector.measure import (
    expectation_z,
    marginal_probability,
    most_probable,
    probabilities,
    sample_counts,
)
from repro.statevector.parallel import (
    AUTO_PARALLEL_THRESHOLD,
    ChunkWorkerPool,
    ParallelChunkEngine,
    resolve_workers,
    worker_assignment,
)
from repro.statevector.state import StateVector, simulate

__all__ = [
    "AUTO_PARALLEL_THRESHOLD",
    "ChunkWorkerPool",
    "ChunkedStateVector",
    "DensityMatrix",
    "KrausChannel",
    "Observable",
    "ParallelChunkEngine",
    "PauliString",
    "StateVector",
    "amplitude_damping",
    "apply_controlled",
    "apply_diagonal",
    "apply_diagonal_chunk",
    "apply_gate",
    "apply_matrix",
    "apply_pair",
    "apply_pauli",
    "apply_single_qubit_fused",
    "chunk_diagonal_factor",
    "chunk_pair_groups",
    "depolarizing",
    "dump_state",
    "expectation_pauli",
    "expectation_z",
    "ising_energy",
    "load_state",
    "marginal_probability",
    "most_probable",
    "phase_damping",
    "probabilities",
    "resolve_workers",
    "roundtrip_bytes",
    "sample_counts",
    "simulate",
    "worker_assignment",
]
