"""Parallel chunk execution: a persistent worker pool over chunk groups.

Every gate's chunk groups (see
:func:`~repro.statevector.chunks.chunk_pair_groups`) are independent - they
touch disjoint chunks - so they can execute concurrently.  This module
provides the engine that does so with *threads*: the hot kernels (BLAS
matmuls in :func:`~repro.statevector.apply.apply_matrix`, large-array
ufuncs in the zero-copy kernels) all release the GIL, so chunk workers
genuinely overlap on multicore hosts.

Ownership mirrors the multi-GPU discipline of
:mod:`repro.core.multigpu`: group ``i`` of a gate belongs to worker
``i % workers``, exactly the paper's Fig. 18 round-robin (worker = GPU).
The functional and timed engines therefore share one partitioning story -
:func:`worker_assignment` returns the very
:class:`~repro.core.multigpu.GroupAssignment` the timed model schedules.

The only deliberate deviation: when *every* group of a single-qubit gate
is live, the per-group pair updates fuse into one tiled in-place sweep
(:func:`~repro.statevector.kernels.apply_single_qubit_inplace`) split
into one contiguous slab per worker - the same disjoint coverage,
coalesced for memory bandwidth with no second full-size buffer.

Numerics: with ``workers == 1`` the serial engine runs the exact
baseline arithmetic (bit-identical results, so determinism mode and
checkpoint resume are untouched).  With ``workers > 1`` the zero-copy
kernels reorder floating-point operations; results agree with the serial
engine to machine precision (``atol <= 1e-12``) but not bit-for-bit.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.circuits.gates import Gate
from repro.errors import SimulationError
from repro.statevector.apply import apply_gate
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.statevector.fusion import GateSlab
from repro.statevector.kernels import (
    apply_diagonal_chunk,
    apply_pair,
    apply_single_qubit_inplace,
    chunk_diagonal_factor,
    count_kernel,
    kernel_work,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.statevector.chunks import ChunkedStateVector

#: Below this many amplitudes ``workers="auto"`` stays serial: the state is
#: too small for threading to beat the bit-exact baseline path.
AUTO_PARALLEL_THRESHOLD = 1 << 18

#: Ceiling on auto-selected workers; explicit ``workers=`` may exceed it.
MAX_AUTO_WORKERS = 4

#: Adaptive work-size floors (touched amplitudes x fused gate count): a
#: dispatch moving less work than this runs the serial kernels inline on
#: the coordinator thread instead of fanning out.  Diagonal sweeps are a
#: single element-wise multiply - almost pure memory traffic - so they
#: need far more work than the dense kernels before threads pay off (the
#: kernel bench showed serial ``diagonal_rz`` beating parallel up to
#: multi-million-amplitude states).
SERIAL_INLINE_DIAGONAL_WORK = 1 << 23

#: Dense-kernel inline floor; see :data:`SERIAL_INLINE_DIAGONAL_WORK`.
SERIAL_INLINE_DENSE_WORK = 1 << 19


def inline_serial_work(gate, groups, chunk_bits: int) -> bool:
    """True when ``gate`` over ``groups`` is too small to parallelize.

    The work estimate is ``touched amplitudes x fused gates`` (a slab
    amortizes its sweep over every member), compared against the per-kind
    floor above.  The inline path runs the *identical* serial kernels, so
    below-floor dispatches match the serial engine bit for bit.
    """
    touched = sum(len(members) for members in groups) << chunk_bits
    fused = len(gate.gates) if isinstance(gate, GateSlab) else 1
    floor = (
        SERIAL_INLINE_DIAGONAL_WORK if gate.is_diagonal else SERIAL_INLINE_DENSE_WORK
    )
    return touched * fused < floor


def resolve_workers(workers: int | str | None, num_amplitudes: int | None = None) -> int:
    """Turn a ``workers`` knob into a concrete worker count.

    ``None`` or ``"auto"`` selects ``min(cpu_count, 4)`` for states of at
    least :data:`AUTO_PARALLEL_THRESHOLD` amplitudes and ``1`` otherwise
    (small states stay on the bit-exact serial path).  Integers pass
    through validated.

    Raises:
        SimulationError: On a non-positive or non-integer worker count.
    """
    if workers is None or workers == "auto":
        if num_amplitudes is not None and num_amplitudes < AUTO_PARALLEL_THRESHOLD:
            return 1
        return max(1, min(MAX_AUTO_WORKERS, os.cpu_count() or 1))
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise SimulationError(f"workers must be a positive int or 'auto', got {workers!r}")
    if workers < 1:
        raise SimulationError(f"workers must be a positive int or 'auto', got {workers}")
    return workers


def worker_assignment(num_qubits: int, chunk_bits: int, gate: Gate, workers: int):
    """The multi-GPU round-robin assignment with workers standing in for GPUs.

    Returns :class:`~repro.core.multigpu.GroupAssignment` - the functional
    engine's ownership is definitionally the timed engine's partitioning.
    """
    # Imported lazily: repro.core's package __init__ imports the simulator,
    # which imports this package - a module-level import would cycle.
    from repro.core.multigpu import assign_round_robin

    return assign_round_robin(num_qubits, chunk_bits, gate, workers)


class ChunkWorkerPool:
    """A persistent pool of chunk-worker threads.

    One pool lives for the whole engine (and thus across every gate of
    every circuit the engine runs): thread startup is paid once, not per
    gate.  Tasks are plain callables over disjoint chunk sets, so no
    locking is needed; :meth:`run_tasks` blocks until all complete and
    re-raises the first failure.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise SimulationError("a worker pool needs at least 2 workers")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="chunk-worker"
        )

    def run_tasks(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Execute ``tasks`` concurrently; the calling thread joins the barrier."""
        if self._pool is None:
            raise SimulationError("worker pool is closed")
        if not tasks:
            return
        if len(tasks) == 1:
            tasks[0]()
            return
        futures = [self._pool.submit(task) for task in tasks[1:]]
        tasks[0]()  # the coordinator works too instead of idling at the barrier
        for future in futures:
            future.result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ParallelChunkEngine:
    """Executes chunk groups of each gate concurrently with zero-copy kernels.

    Args:
        workers: Worker threads (``>= 2``; use the serial path in
            :class:`~repro.statevector.chunks.ChunkedStateVector` for 1).
        tracer: Optional :class:`~repro.obs.Tracer`.  When tracing is
            enabled each worker's share of a gate becomes a
            ``chunk_group`` span on that worker thread's lane, parented to
            the coordinator's open gate span; counters (``pool.tasks``,
            ``kernels.*``) are kept whenever a real tracer is supplied,
            even with spans disabled.

    The engine owns one persistent resource: the thread pool.  Close
    the engine (or use it as a context manager) when done; a closed
    engine raises on use.
    """

    def __init__(self, workers: int, tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.workers = resolve_workers(workers)
        if self.workers < 2:
            raise SimulationError(
                f"ParallelChunkEngine needs workers >= 2, got {self.workers}"
            )
        self._pool = ChunkWorkerPool(self.workers)
        # The fused whole-state kernel is pure memory-bandwidth work: more
        # slabs than physical cores only adds handoff overhead, so its
        # fan-out is capped at the host's parallelism even when the group
        # round-robin uses the full worker count.
        self._fused_parts = max(1, min(self.workers, os.cpu_count() or 1))

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down."""
        self._pool.close()

    def __enter__(self) -> "ParallelChunkEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- application ---------------------------------------------------------

    def apply_groups(
        self,
        state: "ChunkedStateVector",
        gate: Gate,
        groups: Sequence[tuple[int, ...]],
    ) -> None:
        """Apply ``gate`` to the listed chunk groups of ``state``.

        Dispatch, in order of preference:

        * below the adaptive work floor (:func:`inline_serial_work`) - the
          serial kernels run inline on the coordinator (bit-identical to
          ``workers=1``; fan-out would cost more than the arithmetic);
        * diagonal gate (or slab) - per-chunk in-place multiply (no
          pairing at all), member chunks round-robin across workers;
        * single-qubit gate or slab fully inside the chunk - when every
          group is live, one tiled in-place sweep over the whole backing
          (L2-sized matmul tiles through the shared scratch), one slab
          per worker; the per-chunk tiled in-place kernel round-robin
          otherwise;
        * other gates fully inside the chunk - per-chunk dense kernel,
          round-robin;
        * single-qubit gate with every group live - the same tiled
          in-place sweep, one contiguous slab per worker;
        * single-qubit cross-chunk gate (some groups pruned) - the 2x2
          amplitude-pair kernel per group, round-robin;
        * multi-qubit cross-chunk gate - gather/scatter per group (the
          baseline arithmetic), round-robin.  Rare: it needs two or more
          gate qubits at or above ``chunk_bits``.

        Fusion slabs (:class:`~repro.statevector.fusion.GateSlab`) flow
        through the same branches by duck-typing :class:`Gate`.
        """
        if not groups:
            return
        chunk_bits = state.chunk_bits
        if inline_serial_work(gate, groups, chunk_bits):
            state.apply_groups(gate, groups, None)
            return
        outside = [q for q in gate.qubits if q >= chunk_bits]
        itemsize = np.dtype(state.dtype).itemsize
        if gate.is_diagonal:
            member_count = sum(len(g) for g in groups)
            count_kernel("diagonal", member_count)
            with kernel_work("diagonal", member_count << chunk_bits, itemsize):
                self._apply_diagonal(state, gate, groups)
        elif not outside:
            if gate.num_qubits == 1:
                matrix = gate.matrix()
                qubit = gate.qubits[0]
                if len(groups) == state.num_chunks:
                    count_kernel("inside_fused", self._fused_parts)
                    amps = state.num_chunks << chunk_bits
                    with kernel_work("inside_fused", amps, itemsize):
                        self._apply_fused(state, gate)
                else:
                    count_kernel("dense", len(groups))
                    chunks = state.chunks
                    with kernel_work("dense", len(groups) << chunk_bits, itemsize):
                        self._round_robin(
                            [group[0] for group in groups],
                            lambda m: apply_single_qubit_inplace(
                                chunks[m], matrix, qubit
                            ),
                        )
            else:
                count_kernel("dense", len(groups))
                members = [group[0] for group in groups]
                chunks = state.chunks
                with kernel_work("dense", len(groups) << chunk_bits, itemsize):
                    self._round_robin(members, lambda m: apply_gate(chunks[m], gate))
        elif gate.num_qubits == 1:
            if len(groups) == state.num_chunks // 2:
                count_kernel("fused", self._fused_parts)
                amps = state.num_chunks << chunk_bits
                with kernel_work("fused", amps, itemsize):
                    self._apply_fused(state, gate)
            else:
                count_kernel("pair", len(groups))
                matrix = gate.matrix()
                chunks = state.chunks
                with kernel_work("pair", (2 * len(groups)) << chunk_bits, itemsize):
                    self._round_robin(
                        list(groups),
                        lambda g: apply_pair(chunks[g[0]], chunks[g[1]], matrix),
                    )
        else:
            count_kernel("gather", len(groups))
            gathered = sum(len(g) for g in groups) << chunk_bits
            with kernel_work("gather", gathered, itemsize):
                self._apply_gathered(state, gate, groups, outside)

    # -- kernel drivers ------------------------------------------------------

    def _round_robin(self, items: list, task) -> None:
        """Run ``task`` over ``items``, item ``i`` owned by worker ``i % workers``.

        The modulo ownership mirrors
        :func:`~repro.core.multigpu.assign_round_robin` exactly.
        """
        tracer = self.tracer
        # Worker spans run on pool threads, so the coordinator's open gate
        # span is captured here and passed explicitly as their parent.
        parent = tracer.current_parent() if tracer.enabled else None

        def worker(index: int, owned: list) -> Callable[[], None]:
            def run() -> None:
                for item in owned:
                    task(item)

            if not tracer.enabled:
                return run

            def traced() -> None:
                with tracer.span(
                    "chunk_group",
                    stage="compute",
                    parent=parent,
                    worker=index,
                    chunks=len(owned),
                ):
                    run()

            return traced

        slices = [items[w :: self.workers] for w in range(self.workers)]
        tasks = [worker(w, owned) for w, owned in enumerate(slices) if owned]
        if tracer is not NULL_TRACER:
            tracer.counters.count("pool.tasks", len(tasks))
        self._pool.run_tasks(tasks)

    def _apply_diagonal(self, state, gate: Gate, groups) -> None:
        members = [member for group in groups for member in group]
        chunk_bits = state.chunk_bits
        chunks = state.chunks
        # Precompute the (at most 2^k) distinct factors serially so worker
        # threads never race on the cache dict.
        cache: dict[int, np.ndarray | complex] = {}
        for member in members:
            chunk_diagonal_factor(gate, chunk_bits, member, cache)
        self._round_robin(
            members,
            lambda m: apply_diagonal_chunk(chunks[m], gate, chunk_bits, m, cache),
        )

    def _apply_fused(self, state, gate: Gate) -> None:
        backing = state.backing
        matrix = gate.matrix()
        qubit = gate.qubits[0]
        parts = self._fused_parts
        tracer = self.tracer
        parent = tracer.current_parent() if tracer.enabled else None

        def slab(p: int) -> Callable[[], None]:
            def run() -> None:
                apply_single_qubit_inplace(backing, matrix, qubit, part=p, parts=parts)

            if not tracer.enabled:
                return run

            def traced() -> None:
                with tracer.span(
                    "fused_slab", stage="compute", parent=parent, worker=p, parts=parts
                ):
                    run()

            return traced

        if tracer is not NULL_TRACER:
            tracer.counters.count("pool.tasks", parts)
        if parts == 1:
            # One slab covers the whole state: run it on the calling
            # thread instead of paying a pool handoff (a context-switch
            # round-trip that can dwarf the sweep on small hosts).
            slab(0)()
        else:
            self._pool.run_tasks([slab(part) for part in range(parts)])

    def _apply_gathered(self, state, gate: Gate, groups, outside) -> None:
        """Baseline gather/compute/scatter per group, parallel across groups."""
        chunk_bits = state.chunk_bits
        chunks = state.chunks
        mapping = {q: q for q in gate.qubits if q < chunk_bits}
        for rank, q in enumerate(sorted(outside)):
            mapping[q] = chunk_bits + rank
        remapped = gate.remapped(mapping)
        chunk_size = state.chunk_size

        def one_group(members: tuple[int, ...]) -> None:
            gathered = np.concatenate([chunks[m] for m in members])
            apply_gate(gathered, remapped)
            for position, member in enumerate(members):
                start = position << chunk_bits
                chunks[member][...] = gathered[start : start + chunk_size]

        self._round_robin(list(groups), one_group)
