"""Dense (monolithic) state-vector simulator.

This is the functional reference engine: exact Schroedinger-style simulation
with a single in-memory ``complex128`` vector.  It is used to validate the
chunked engine, to generate the amplitude snapshots of the paper's Fig. 7 and
Fig. 10, and to measure per-family GFC compression ratios at tractable sizes.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import SimulationError
from repro.statevector.apply import apply_gate


class StateVector:
    """A ``2^n`` complex amplitude vector with gate application.

    Args:
        num_qubits: Register width ``n``.
        initial: Optional initial amplitudes (copied); defaults to
            ``|0...0>``.
    """

    #: Refuse to allocate beyond this many qubits (2^28 amplitudes = 4 GiB).
    MAX_DENSE_QUBITS = 28

    def __init__(self, num_qubits: int, initial: np.ndarray | None = None) -> None:
        if num_qubits <= 0:
            raise SimulationError(f"num_qubits must be positive, got {num_qubits}")
        if num_qubits > self.MAX_DENSE_QUBITS:
            raise SimulationError(
                f"dense simulation of {num_qubits} qubits needs "
                f"{16 * 2**num_qubits / 2**30:.0f} GiB; use the structural "
                "(timed) simulator for large circuits"
            )
        self.num_qubits = num_qubits
        if initial is None:
            self.amplitudes = np.zeros(1 << num_qubits, dtype=np.complex128)
            self.amplitudes[0] = 1.0
        else:
            if initial.shape != (1 << num_qubits,):
                raise SimulationError(
                    f"initial state has {initial.shape}, expected {(1 << num_qubits,)}"
                )
            self.amplitudes = np.asarray(initial, dtype=np.complex128).copy()

    def copy(self) -> "StateVector":
        return StateVector(self.num_qubits, self.amplitudes)

    def apply(self, gate: Gate) -> "StateVector":
        """Apply one gate in place and return ``self`` for chaining."""
        for q in gate.qubits:
            if q >= self.num_qubits:
                raise SimulationError(
                    f"gate {gate} exceeds register width {self.num_qubits}"
                )
        apply_gate(self.amplitudes, gate)
        return self

    def run(self, circuit: QuantumCircuit) -> "StateVector":
        """Apply every gate of ``circuit`` in order."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError(
                f"circuit width {circuit.num_qubits} != state width {self.num_qubits}"
            )
        for gate in circuit:
            self.apply(gate)
        return self

    # -- queries ---------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities ``|a_i|^2`` over the full basis."""
        return np.abs(self.amplitudes) ** 2

    def norm(self) -> float:
        """Euclidean norm of the state (1.0 for any valid evolution)."""
        return float(np.linalg.norm(self.amplitudes))

    def fidelity(self, other: "StateVector") -> float:
        """``|<self|other>|^2`` - 1.0 iff equal up to global phase."""
        if other.num_qubits != self.num_qubits:
            raise SimulationError("fidelity between different widths")
        return float(np.abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)

    def nonzero_fraction(self, tolerance: float = 1e-14) -> float:
        """Fraction of amplitudes with magnitude above ``tolerance``."""
        return float(np.mean(np.abs(self.amplitudes) > tolerance))

    # -- mid-circuit operations -------------------------------------------

    def measure(self, qubit: int, rng: np.random.Generator | None = None) -> int:
        """Projective measurement of ``qubit`` with collapse; returns 0/1.

        The paper's workloads measure only at the end (Section II-B), but
        the engine supports mid-circuit measurement for general use.
        """
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        if rng is None:
            rng = np.random.default_rng()
        indices = np.arange(self.amplitudes.size)
        one_mask = (indices >> qubit & 1).astype(bool)
        p_one = float(np.sum(np.abs(self.amplitudes[one_mask]) ** 2))
        outcome = int(rng.random() < p_one)
        keep = one_mask if outcome else ~one_mask
        probability = p_one if outcome else 1.0 - p_one
        if probability <= 0:
            raise SimulationError("measurement collapsed to zero norm")
        self.amplitudes[~keep] = 0.0
        self.amplitudes /= np.sqrt(probability)
        return outcome

    def reset(self, qubit: int, rng: np.random.Generator | None = None) -> "StateVector":
        """Measure-and-flip reset: leave ``qubit`` in ``|0>``."""
        outcome = self.measure(qubit, rng)
        if outcome:
            self.apply(Gate("x", (qubit,)))
        return self


def simulate(circuit: QuantumCircuit) -> StateVector:
    """Run ``circuit`` from ``|0...0>`` and return the final state."""
    return StateVector(circuit.num_qubits).run(circuit)
