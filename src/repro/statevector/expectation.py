"""Pauli-string observables and expectation values.

Chemistry workloads (the paper's ``hchain`` motivation) evaluate energies
as ``sum_k c_k <psi| P_k |psi>`` over Pauli strings ``P_k``.  This module
evaluates such observables exactly against a state vector without building
any ``2^n x 2^n`` matrices: each string is applied as a sequence of
single-qubit kernels to a scratch copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.statevector.apply import apply_gate
from repro.circuits.gates import Gate

_VALID = frozenset("IXYZ")


@dataclass(frozen=True)
class PauliString:
    """A Pauli operator on named qubits, e.g. ``Z0 Z3 X5``.

    Attributes:
        paulis: Mapping qubit -> one of ``"X"``, ``"Y"``, ``"Z"`` (identity
            qubits are simply omitted).
    """

    paulis: tuple[tuple[int, str], ...]

    def __post_init__(self) -> None:
        seen = set()
        for qubit, label in self.paulis:
            if label not in _VALID or label == "I":
                raise SimulationError(f"bad Pauli label {label!r} on qubit {qubit}")
            if qubit < 0:
                raise SimulationError(f"negative qubit {qubit}")
            if qubit in seen:
                raise SimulationError(f"qubit {qubit} repeated in Pauli string")
            seen.add(qubit)

    @classmethod
    def parse(cls, text: str) -> "PauliString":
        """Parse ``"Z0 Z1 X4"``-style notation (identity = empty string)."""
        pairs = []
        for token in text.split():
            label, index = token[0].upper(), token[1:]
            if not index.isdigit():
                raise SimulationError(f"cannot parse Pauli term {token!r}")
            pairs.append((int(index), label))
        return cls(tuple(pairs))

    @property
    def support(self) -> tuple[int, ...]:
        return tuple(sorted(q for q, _ in self.paulis))

    def min_width(self) -> int:
        return 1 + max((q for q, _ in self.paulis), default=-1)

    def __str__(self) -> str:
        if not self.paulis:
            return "I"
        return " ".join(f"{label}{qubit}" for qubit, label in sorted(self.paulis))


def apply_pauli(amplitudes: np.ndarray, string: PauliString) -> np.ndarray:
    """Return ``P |psi>`` (a new array; ``amplitudes`` is untouched)."""
    result = np.array(amplitudes, dtype=np.complex128, copy=True)
    n = int(result.size).bit_length() - 1
    if string.min_width() > n:
        raise SimulationError(
            f"Pauli string {string} exceeds state width {n}"
        )
    for qubit, label in string.paulis:
        apply_gate(result, Gate(label.lower(), (qubit,)))
    return result


def expectation_pauli(amplitudes: np.ndarray, string: PauliString) -> float:
    """``<psi| P |psi>`` - always real for Hermitian ``P``."""
    transformed = apply_pauli(amplitudes, string)
    value = np.vdot(np.asarray(amplitudes, dtype=np.complex128), transformed)
    return float(value.real)


@dataclass(frozen=True)
class Observable:
    """A weighted sum of Pauli strings: ``sum_k coefficient_k * P_k``.

    Attributes:
        terms: ``(coefficient, string)`` pairs; an empty string means the
            identity (a constant energy shift).
    """

    terms: tuple[tuple[float, PauliString], ...]

    @classmethod
    def from_dict(cls, mapping: dict[str, float]) -> "Observable":
        """Build from ``{"Z0 Z1": -1.0, "X0": 0.5, "": 2.0}`` notation."""
        return cls(
            tuple((coeff, PauliString.parse(text)) for text, coeff in mapping.items())
        )

    def expectation(self, amplitudes: np.ndarray) -> float:
        """``sum_k c_k <psi| P_k |psi>``."""
        return sum(
            coeff * expectation_pauli(amplitudes, string)
            for coeff, string in self.terms
        )

    def min_width(self) -> int:
        return max((s.min_width() for _, s in self.terms), default=0)


def ising_energy(
    amplitudes: np.ndarray,
    edges: list[tuple[int, int]],
    coupling: float = 1.0,
    field: float = 0.0,
) -> float:
    """Energy of a transverse-field-Ising-style observable.

    ``H = coupling * sum_(i,j) Z_i Z_j + field * sum_i X_i`` over the state;
    the MaxCut cost the paper's qaoa benchmark optimises is the ``ZZ`` part.
    """
    num_qubits = int(np.asarray(amplitudes).size).bit_length() - 1
    energy = 0.0
    for a, b in edges:
        energy += coupling * expectation_pauli(
            amplitudes, PauliString(((a, "Z"), (b, "Z")))
        )
    if field:
        for q in range(num_qubits):
            energy += field * expectation_pauli(amplitudes, PauliString(((q, "X"),)))
    return energy
