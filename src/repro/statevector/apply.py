"""Gate-application kernels for dense state vectors.

These are the numpy analogues of the CUDA kernels described in Section II-A
of the paper: a gate on qubit ``j`` pairs amplitudes whose indices differ
only in bit ``j`` (Equation 8) and updates every pair with the same 2x2
matrix.  Qubit 0 is the least significant index bit.

Three kernels are provided, mirroring what a production simulator
specialises:

* :func:`apply_matrix` - general ``k``-qubit unitary via axis reshaping,
* :func:`apply_diagonal` - diagonal unitaries touch each amplitude once
  (half the memory traffic, no pairing),
* :func:`apply_controlled` - controlled gates update only the slice where
  all controls are 1.

All kernels update the array in place and accept vectors holding any number
of amplitudes that is a power of two at least ``2^k`` - the chunked engine
reuses them on single chunks.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.gates import Gate
from repro.errors import SimulationError


def _num_qubits_of(state: np.ndarray) -> int:
    if state.size == 0:
        raise SimulationError(
            "state vector is empty: a state needs at least 2^0 = 1 amplitude"
        )
    n = int(state.size).bit_length() - 1
    if state.size != 1 << n:
        raise SimulationError(f"state size {state.size} is not a power of two")
    return n


def apply_matrix(state: np.ndarray, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
    """Apply a ``2^k x 2^k`` unitary to ``qubits`` of ``state``, in place.

    Args:
        state: Complex amplitude vector of length ``2^n``.
        matrix: Unitary with the first qubit in ``qubits`` as the least
            significant matrix axis.
        qubits: Distinct target qubits, each ``< n``.
    """
    n = _num_qubits_of(state)
    k = len(qubits)
    if matrix.shape != (1 << k, 1 << k):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not match {k} qubits"
        )
    for q in qubits:
        if not 0 <= q < n:
            raise SimulationError(f"qubit {q} out of range for {n}-qubit state")

    # Match the state's precision (no-op for the complex128 baseline);
    # mixed-dtype matmul would upcast, round twice, and run slower.
    matrix = np.asarray(matrix, dtype=state.dtype)
    # View the vector as an n-dimensional tensor.  numpy's C order makes axis
    # 0 the most significant bit, so qubit q is axis (n - 1 - q).
    tensor = state.reshape((2,) * n)
    # Move target axes to the front, most significant target first so that
    # flattening them yields the matrix's basis ordering (qubits[0] = LSB).
    axes = [n - 1 - q for q in reversed(qubits)]
    moved = np.moveaxis(tensor, axes, range(k))
    folded = moved.reshape(1 << k, -1)  # copies when the view is staggered
    result = matrix @ folded
    moved[...] = result.reshape(moved.shape)  # writes through the view


def apply_diagonal(state: np.ndarray, diagonal: np.ndarray, qubits: tuple[int, ...]) -> None:
    """Apply a diagonal unitary given by its ``2^k`` diagonal entries, in place."""
    n = _num_qubits_of(state)
    k = len(qubits)
    if diagonal.shape != (1 << k,):
        raise SimulationError(
            f"diagonal length {diagonal.shape} does not match {k} qubits"
        )
    diagonal = np.asarray(diagonal, dtype=state.dtype)
    tensor = state.reshape((2,) * n)
    axes = [n - 1 - q for q in reversed(qubits)]
    moved = np.moveaxis(tensor, axes, range(k))
    moved *= diagonal.reshape((2,) * k + (1,) * (n - k))


def apply_controlled(
    state: np.ndarray,
    matrix: np.ndarray,
    controls: tuple[int, ...],
    targets: tuple[int, ...],
) -> None:
    """Apply ``matrix`` on ``targets`` where every control qubit is 1, in place."""
    n = _num_qubits_of(state)
    matrix = np.asarray(matrix, dtype=state.dtype)
    tensor = state.reshape((2,) * n)
    selector: list = [slice(None)] * n
    for c in controls:
        if not 0 <= c < n:
            raise SimulationError(f"control qubit {c} out of range")
        selector[n - 1 - c] = 1
    view = tensor[tuple(selector)]
    # Remaining axes describe the non-control qubits in descending
    # significance; recompute target positions among them.
    remaining = [q for q in reversed(range(n)) if q not in controls]
    sub_axes = [remaining.index(t) for t in reversed(targets)]
    moved = np.moveaxis(view, sub_axes, range(len(targets)))
    folded = moved.reshape(1 << len(targets), -1)
    result = matrix @ folded
    moved[...] = result.reshape(moved.shape)


def apply_gate(state: np.ndarray, gate: Gate) -> None:
    """Apply ``gate`` to ``state`` in place, dispatching to the best kernel."""
    if gate.is_diagonal:
        # The memoized diagonal avoids building the full 2^k x 2^k matrix
        # just to read its diagonal, once per call.
        apply_diagonal(state, gate.diagonal(), gate.qubits)
    elif gate.name in ("cx", "cy"):
        base = gate.matrix()[np.ix_([1, 3], [1, 3])]
        apply_controlled(state, base, gate.qubits[:1], gate.qubits[1:])
    elif gate.name == "ccx":
        apply_controlled(
            state,
            np.array([[0, 1], [1, 0]], dtype=np.complex128),
            gate.qubits[:2],
            gate.qubits[2:],
        )
    else:
        apply_matrix(state, gate.matrix(), gate.qubits)
