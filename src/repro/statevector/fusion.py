"""Gate-fusion slabs for the chunked statevector engine.

The kernel benchmarks show where the chunked engine still loses to the
paper's recipe: every gate pays one full sweep over the state, so a run of
``k`` cheap gates costs ``k`` passes of memory traffic even though the
arithmetic per amplitude is trivial.  Gate fusion — the standard fix in
Qsim/Aer and the gate-fusion study the issue cites — contracts adjacent
gates into one *slab* that the dispatcher applies in a single tiled pass.

Two slab kinds are produced by :func:`fuse_slabs`:

* **dense** slabs contract consecutive gates on *overlapping* qubits into
  one small unitary (via :class:`~repro.circuits.fusion.FusedBlock`), up
  to ``max_width`` qubits.  Disjoint gates deliberately do not fuse — a
  wider matrix over unrelated qubits adds traffic instead of saving it.
* **diagonal** slabs batch maximal runs of consecutive diagonal gates
  (diagonals always commute, and their product is again diagonal) into a
  single precombined multiplier, regardless of qubit overlap: one
  in-place multiply sweep replaces ``k`` sweeps.

A :class:`GateSlab` duck-types :class:`~repro.circuits.gates.Gate` — it
exposes ``name``/``qubits``/``num_qubits``/``is_diagonal``/``matrix()``/
``diagonal()``/``remapped()`` — so the serial chunk path, the parallel
engine, and the pruning tracker consume slabs through the existing gate
dispatch without modification.  Single-gate groups are emitted as the
bare :class:`Gate`, which keeps ``fusion="off"``-style circuits (nothing
fusible) byte-identical to the unfused path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.circuits.fusion import FusedBlock
from repro.circuits.gates import Gate
from repro.errors import SimulationError

#: Widest dense slab (union of member qubits).  Matches the Qsim default;
#: beyond ~4 qubits the fused matrix itself stops fitting in registers and
#: the matmul cost beats the saved traffic.
MAX_FUSION_WIDTH = 4

#: Widest diagonal slab.  The combined multiplier is a ``2^width`` vector
#: built once per slab; 8 qubits (256 entries) is still negligible.
MAX_DIAGONAL_WIDTH = 8

#: When ``chunk_bits`` is known, cap the *outside* (chunk-selecting)
#: qubits a diagonal slab may union.  The chunk kernels memoize one factor
#: vector per outside-bit pattern, so ``2^outside`` patterns can each
#: materialise a chunk-sized vector — four keeps that cache bounded.
MAX_DIAGONAL_OUTSIDE = 4


@dataclass(frozen=True)
class GateSlab:
    """A fused group of consecutive gates applied as one pass.

    Attributes:
        gates: Member gates in circuit order.
        qubits: Sorted union of the members' qubits.
        kind: ``"dense"`` (contracted unitary) or ``"diagonal"``
            (precombined multiplier; every member is diagonal).
    """

    gates: tuple[Gate, ...]
    qubits: tuple[int, ...]
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("dense", "diagonal"):
            raise SimulationError(f"unknown slab kind {self.kind!r}")
        if not self.gates:
            raise SimulationError("a slab needs at least one gate")
        union = tuple(sorted({q for gate in self.gates for q in gate.qubits}))
        if self.qubits != union:
            raise SimulationError(
                f"slab qubits {self.qubits} != sorted member union {union}"
            )
        if self.kind == "diagonal" and not all(g.is_diagonal for g in self.gates):
            raise SimulationError("diagonal slab contains a non-diagonal gate")

    @property
    def name(self) -> str:
        prefix = "dslab" if self.kind == "diagonal" else "slab"
        return f"{prefix}[{len(self.gates)}]"

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def width(self) -> int:
        return len(self.qubits)

    @property
    def is_diagonal(self) -> bool:
        return self.kind == "diagonal"

    def matrix(self) -> np.ndarray:
        """The contracted ``2^width x 2^width`` unitary (memoized, read-only).

        Basis convention matches :class:`Gate`: ``qubits[0]`` is the least
        significant axis.
        """
        cached = self.__dict__.get("_matrix")
        if cached is None:
            cached = FusedBlock(gates=self.gates, qubits=self.qubits).matrix()
            cached.setflags(write=False)
            object.__setattr__(self, "_matrix", cached)
        return cached

    def diagonal(self) -> np.ndarray:
        """The combined ``2^width`` multiplier of a diagonal slab.

        Each member's diagonal is gathered onto the slab's qubit union and
        the entries multiplied — the single vector a one-sweep multiply
        needs.  Memoized and read-only, like :meth:`Gate.diagonal`.
        """
        if self.kind != "diagonal":
            raise SimulationError(f"slab {self.name!r} is not diagonal")
        cached = self.__dict__.get("_diagonal")
        if cached is None:
            position = {q: k for k, q in enumerate(self.qubits)}
            indices = np.arange(1 << self.width)
            combined = np.ones(1 << self.width, dtype=np.complex128)
            for gate in self.gates:
                local = np.zeros_like(indices)
                for bit, q in enumerate(gate.qubits):
                    local |= ((indices >> position[q]) & 1) << bit
                combined *= gate.diagonal()[local]
            combined.setflags(write=False)
            cached = combined
            object.__setattr__(self, "_diagonal", cached)
        return cached

    def remapped(self, mapping: dict[int, int]) -> "GateSlab":
        """Slab acting on ``mapping[q]`` for each qubit ``q``.

        The contracted matrix/diagonal are rebuilt from the remapped
        members, so any injective mapping is correct (the gather path uses
        an order-preserving one, which also preserves the basis layout).
        """
        return GateSlab(
            gates=tuple(gate.remapped(mapping) for gate in self.gates),
            qubits=tuple(sorted(mapping[q] for q in self.qubits)),
            kind=self.kind,
        )

    def __str__(self) -> str:
        members = ", ".join(g.name for g in self.gates)
        return f"{self.name} {list(self.qubits)} <- [{members}]"


#: What the fusion pass emits: bare gates for singletons, slabs otherwise.
FusedGate = Union[Gate, GateSlab]


def slab_members(op: FusedGate) -> tuple[Gate, ...]:
    """The original gates an op stands for (itself, for a bare gate)."""
    if isinstance(op, GateSlab):
        return op.gates
    return (op,)


def fuse_slabs(
    gates: Iterable[Gate],
    *,
    max_width: int = MAX_FUSION_WIDTH,
    max_diagonal_width: int = MAX_DIAGONAL_WIDTH,
    chunk_bits: int | None = None,
) -> list[FusedGate]:
    """Group a gate stream into fusion slabs, preserving circuit order.

    Two-level greedy pass: maximal runs of *consecutive* diagonal gates
    (length >= 2 within the width caps) become diagonal slabs; everything
    else flows through a dense fuser that contracts overlapping-qubit
    neighbours up to ``max_width`` (a lone diagonal between dense gates
    may join a dense slab).  Concatenating :func:`slab_members` over the
    result reproduces the input stream exactly.

    Args:
        gates: Gate stream (a :class:`QuantumCircuit` iterates as one).
        max_width: Dense slab qubit-union cap.
        max_diagonal_width: Diagonal slab qubit-union cap.
        chunk_bits: When given, diagonal slabs additionally cap the number
            of qubits at or above ``chunk_bits`` (see
            :data:`MAX_DIAGONAL_OUTSIDE`) so the per-pattern factor cache
            in the chunk kernels stays bounded.

    Returns:
        Ops in execution order: :class:`GateSlab` for fused groups,
        the bare :class:`Gate` for singletons.
    """
    if max_width < 1:
        raise SimulationError("max_width must be >= 1")
    if max_diagonal_width < 1:
        raise SimulationError("max_diagonal_width must be >= 1")

    out: list[FusedGate] = []
    dense: list[Gate] = []
    dense_qubits: set[int] = set()
    diag: list[Gate] = []
    diag_qubits: set[int] = set()

    def flush_dense() -> None:
        nonlocal dense, dense_qubits
        if len(dense) == 1:
            out.append(dense[0])
        elif dense:
            out.append(
                GateSlab(
                    gates=tuple(dense),
                    qubits=tuple(sorted(dense_qubits)),
                    kind="dense",
                )
            )
        dense = []
        dense_qubits = set()

    def push_dense(gate: Gate) -> None:
        nonlocal dense, dense_qubits
        union = dense_qubits | set(gate.qubits)
        touches = bool(dense_qubits & set(gate.qubits)) or not dense
        if touches and len(union) <= max_width:
            dense.append(gate)
            dense_qubits = union
        else:
            flush_dense()
            dense = [gate]
            dense_qubits = set(gate.qubits)

    def flush_diag() -> None:
        """Retire the pending diagonal run (slab if >= 2, else dense feed)."""
        nonlocal diag, diag_qubits
        run, diag, diag_qubits = diag, [], set()
        if len(run) >= 2:
            flush_dense()
            out.append(
                GateSlab(
                    gates=tuple(run),
                    qubits=tuple(sorted({q for g in run for q in g.qubits})),
                    kind="diagonal",
                )
            )
        elif run:
            push_dense(run[0])

    def diag_accepts(gate: Gate) -> bool:
        union = diag_qubits | set(gate.qubits)
        if len(union) > max_diagonal_width:
            return False
        if chunk_bits is not None:
            outside = sum(1 for q in union if q >= chunk_bits)
            if outside > MAX_DIAGONAL_OUTSIDE:
                return False
        return True

    for gate in gates:
        if gate.is_diagonal:
            if not diag_accepts(gate):
                flush_diag()
            diag.append(gate)
            diag_qubits |= set(gate.qubits)
        else:
            flush_diag()
            push_dense(gate)
    flush_diag()
    flush_dense()
    return out


def fused_sweep_count(
    gates: Sequence[Gate],
    *,
    max_width: int = MAX_FUSION_WIDTH,
    max_diagonal_width: int = MAX_DIAGONAL_WIDTH,
) -> int:
    """Number of state sweeps after fusion (= ``len(fuse_slabs(...))``)."""
    return len(
        fuse_slabs(
            gates, max_width=max_width, max_diagonal_width=max_diagonal_width
        )
    )
