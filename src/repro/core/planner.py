"""Execution planning: pick the best engine/version for a workload.

A downstream user's first question is "how should I run this circuit on
this machine?".  The planner answers it by pricing the candidates:

* every Q-GPU version (plus the diagonal-aware extension) via the timed
  executor,
* the CPU-OpenMP path,
* and - for circuits the polynomial engines accept - flags when the
  stabilizer engine applies (Clifford circuits are free lunch).

Returns a ranked plan with modelled times, so callers can trade the
recommendation's assumptions explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.comparisons.models import estimate_cpu_openmp
from repro.core.simulator import QGpuSimulator
from repro.core.versions import ALL_VERSIONS, QGPU, VersionConfig
from repro.errors import SimulationError
from repro.hardware.specs import MachineSpec, PAPER_MACHINE
from repro.stabilizer import is_clifford_circuit

#: The diagonal-aware extension, included as a candidate.
QGPU_DIAGONAL_AWARE = VersionConfig(
    "Q-GPU+diag", dynamic_allocation=True, overlap=True, pruning=True,
    reorder_strategy="forward_looking", compression=True,
    diagonal_aware_pruning=True,
)
#: The basis-tracking extension (subsumes diagonal-aware), also a candidate.
QGPU_BASIS_TRACKING = VersionConfig(
    "Q-GPU+basis", dynamic_allocation=True, overlap=True, pruning=True,
    reorder_strategy="forward_looking", compression=True,
    basis_tracking_pruning=True,
)


@dataclass(frozen=True)
class PlanEntry:
    """One priced execution candidate."""

    label: str
    seconds: float
    kind: str  # "qgpu-version" | "cpu" | "note"


@dataclass(frozen=True)
class ExecutionPlan:
    """Ranked execution candidates for one circuit on one machine.

    Attributes:
        circuit_name: The workload.
        machine_name: The target machine.
        entries: Candidates sorted fastest first.
        clifford: Whether the polynomial stabilizer engine applies.
    """

    circuit_name: str
    machine_name: str
    entries: tuple[PlanEntry, ...]
    clifford: bool

    @property
    def best(self) -> PlanEntry:
        return self.entries[0]

    def speedup_over(self, label: str) -> float:
        """Best time vs a named candidate."""
        for entry in self.entries:
            if entry.label == label:
                return entry.seconds / self.best.seconds
        raise SimulationError(f"no candidate named {label!r} in the plan")

    def render(self) -> str:
        lines = [f"plan for {self.circuit_name} on {self.machine_name}:"]
        if self.clifford:
            lines.append(
                "  note: circuit is Clifford - the stabilizer engine "
                "simulates it in polynomial time/space"
            )
        for rank, entry in enumerate(self.entries, start=1):
            marker = "->" if rank == 1 else "  "
            lines.append(f"  {marker} {entry.label:<12} {entry.seconds:12.2f} s")
        return "\n".join(lines)


def plan_execution(
    circuit: QuantumCircuit,
    machine: MachineSpec = PAPER_MACHINE,
    include_extensions: bool = True,
) -> ExecutionPlan:
    """Price all candidates and rank them.

    Raises:
        SimulationError: If no candidate fits the machine (state exceeds
            host memory for every engine).
    """
    entries: list[PlanEntry] = []
    for version in ALL_VERSIONS:
        try:
            timing = QGpuSimulator(machine=machine, version=version).estimate(circuit)
        except SimulationError:
            continue
        entries.append(PlanEntry(version.name, timing.total_seconds, "qgpu-version"))
    if include_extensions:
        for extension in (QGPU_DIAGONAL_AWARE, QGPU_BASIS_TRACKING):
            try:
                timing = QGpuSimulator(
                    machine=machine, version=extension
                ).estimate(circuit)
            except SimulationError:
                continue
            entries.append(
                PlanEntry(extension.name, timing.total_seconds, "qgpu-version")
            )
    try:
        cpu = estimate_cpu_openmp(circuit, machine=machine)
        entries.append(PlanEntry("CPU-OpenMP", cpu.total_seconds, "cpu"))
    except SimulationError:
        pass
    if not entries:
        raise SimulationError(
            f"{circuit.name} fits no engine on {machine.name} "
            "(state exceeds host memory)"
        )
    entries.sort(key=lambda e: e.seconds)
    return ExecutionPlan(
        circuit_name=circuit.name,
        machine_name=machine.name,
        entries=tuple(entries),
        clifford=is_clifford_circuit(circuit),
    )
