"""Chunk-granular executor: the streaming runtime as an explicit task graph.

The production :class:`~repro.core.executor.TimedExecutor` prices gates with
closed-form pipeline formulas because 34-qubit runs involve ~8192 chunks x
~1800 gates.  This module builds the *same* execution at full chunk
granularity - one H2D copy, one kernel and one D2H copy task **per live
chunk batch**, wired with the double-buffer dependencies - and runs it on
the discrete-event engine.

Uses:

* **validation** - at scaled-down sizes the detailed makespan must agree
  with the closed-form executor (tested to a few percent, the pipeline
  fill/drain difference);
* **inspection** - the resulting :class:`~repro.hardware.events.TimelineResult`
  renders as a Gantt chart or chrome trace at chunk resolution, showing
  exactly which chunks each optimization skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.core.involvement import InvolvementTracker
from repro.core.pruning import iter_live_chunks
from repro.core.reorder import reorder
from repro.core.versions import VersionConfig
from repro.errors import SimulationError
from repro.hardware.events import EventTimeline, TimelineResult
from repro.hardware.machine import Machine
from repro.hardware.specs import AMP_BYTES


@dataclass
class DetailedRun:
    """Outcome of a chunk-granular execution.

    Attributes:
        timeline: The event-engine result (per-task starts/finishes).
        makespan: Total modelled seconds.
        chunk_copies: H2D chunk-batch copies issued.
        chunks_pruned: Chunk transfers Algorithm 1 skipped.
        gates: Gates executed.
    """

    timeline: TimelineResult
    makespan: float
    chunk_copies: int
    chunks_pruned: int
    gates: int


class DetailedExecutor:
    """Builds and runs chunk-level task graphs for the streaming versions.

    Args:
        machine: Hardware model supplying bandwidths and kernel times.
        chunk_bits: Within-chunk qubits.
        capacity_bytes: GPU buffer capacity override - scale this *down*
            together with the circuit width so streaming occurs at
            tractable task counts (the default uses the real device).

    Only dynamic-allocation versions are supported (the static baseline has
    no streaming pipeline to inspect).
    """

    def __init__(
        self,
        machine: Machine,
        chunk_bits: int,
        capacity_bytes: int | None = None,
    ) -> None:
        self.machine = machine
        self.chunk_bits = chunk_bits
        self.capacity_bytes = (
            capacity_bytes
            if capacity_bytes is not None
            else machine.gpu_capacity_bytes()
        )
        if self.capacity_bytes < (AMP_BYTES << chunk_bits):
            raise SimulationError("capacity smaller than one chunk")

    def execute(
        self,
        circuit: QuantumCircuit,
        version: VersionConfig,
        compression_ratio: float = 1.0,
    ) -> DetailedRun:
        if not version.dynamic_allocation:
            raise SimulationError(
                "the detailed executor models the streaming versions only"
            )
        n = circuit.num_qubits
        if n < self.chunk_bits:
            raise SimulationError("circuit narrower than a chunk")
        if n - self.chunk_bits > 10:
            raise SimulationError(
                "detailed execution beyond 1024 chunks is impractical; "
                "scale the workload down"
            )
        ordered = reorder(circuit, version.reorder_strategy)
        chunk_bytes = AMP_BYTES << self.chunk_bits
        chunk_amps = 1 << self.chunk_bits
        num_chunks = 1 << (n - self.chunk_bits)
        buffer_bytes = self.capacity_bytes // 2 if version.overlap else self.capacity_bytes
        batch_chunks = max(1, buffer_bytes // chunk_bytes)
        ratio = compression_ratio if version.compression else 1.0
        link_bw = self.machine.spec.link.bandwidth_per_direction
        latency = self.machine.spec.link.latency

        timeline = EventTimeline()
        tracker = InvolvementTracker(n)
        previous_in: str | None = None
        previous_comp: str | None = None
        previous_out: str | None = None
        out_ring: list[str] = []
        chunk_copies = 0
        chunks_pruned = 0

        for gate_index, gate in enumerate(ordered):
            if version.pruning:
                tracker.involve(
                    gate, diagonal_aware=version.diagonal_aware_pruning
                )
                live = list(
                    iter_live_chunks(n, self.chunk_bits, tracker.mask)
                )
                chunks_pruned += num_chunks - len(live)
            else:
                live = list(range(num_chunks))

            batches = [
                live[start : start + batch_chunks]
                for start in range(0, len(live), batch_chunks)
            ]
            for batch_index, batch in enumerate(batches):
                batch_bytes = len(batch) * chunk_bytes * ratio
                label = f"g{gate_index}b{batch_index}"
                in_name, comp_name, out_name = (
                    f"{label}/in", f"{label}/comp", f"{label}/out",
                )

                in_deps = []
                if version.overlap:
                    if previous_in:
                        in_deps.append(previous_in)
                    if len(out_ring) >= 2:
                        in_deps.append(out_ring[-2])
                else:
                    if previous_out:
                        in_deps.append(previous_out)
                timeline.add(
                    in_name, "h2d",
                    batch_bytes / link_bw + latency, tuple(set(in_deps)),
                )
                chunk_copies += 1

                kernel = self.machine.gpu_compute_time(
                    len(batch) * chunk_amps, gate.num_qubits, gate.is_diagonal
                )
                codec = (
                    self.machine.codec_time(2 * len(batch) * chunk_bytes)
                    if version.compression
                    else 0.0
                )
                comp_deps = [in_name] + ([previous_comp] if previous_comp else [])
                timeline.add(comp_name, "gpu", kernel + codec, tuple(comp_deps))

                out_deps = [comp_name] + ([previous_out] if previous_out else [])
                timeline.add(
                    out_name, "d2h",
                    batch_bytes / link_bw + latency, tuple(out_deps),
                )
                previous_in, previous_comp, previous_out = (
                    in_name, comp_name, out_name,
                )
                out_ring.append(out_name)

        result = timeline.run() if len(timeline) else TimelineResult({}, 0.0, {})
        return DetailedRun(
            timeline=result,
            makespan=result.makespan,
            chunk_copies=chunk_copies,
            chunks_pruned=chunks_pruned,
            gates=len(ordered),
        )
