"""Chunk-granular executor: the streaming runtime as an explicit task graph.

The production :class:`~repro.core.executor.TimedExecutor` prices gates with
closed-form pipeline formulas because 34-qubit runs involve ~8192 chunks x
~1800 gates.  This module builds the *same* execution at full chunk
granularity - one H2D copy, one kernel and one D2H copy task **per live
chunk batch**, wired with the double-buffer dependencies - and runs it on
the discrete-event engine.

Uses:

* **validation** - at scaled-down sizes the detailed makespan must agree
  with the closed-form executor (tested to a few percent, the pipeline
  fill/drain difference);
* **inspection** - the resulting :class:`~repro.hardware.events.TimelineResult`
  renders as a Gantt chart or chrome trace at chunk resolution, showing
  exactly which chunks each optimization skipped.

Multi-GPU machines execute the paper's Fig. 18 discipline at the same
granularity: each gate's chunk groups are assigned round-robin via
:func:`~repro.core.multigpu.assign_round_robin`, every device gets its own
``gpu{d}:h2d`` / ``gpu{d}:gpu`` / ``gpu{d}:d2h`` resource lanes, and a chunk
whose ownership moves between gates relays through host memory - the new
owner's H2D waits on the old owner's D2H, never on a peer link.  Every
transfer task carries ``meta`` annotations (device, link id, bytes) so the
exported trace supports the fleet analytics in :mod:`repro.obs.fleet`, and
the run accounts bytes per endpoint pair and per link for the
communication-matrix identity those analytics are checked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.core.involvement import InvolvementTracker
from repro.core.multigpu import assign_round_robin
from repro.core.pruning import iter_live_chunks
from repro.core.reorder import reorder
from repro.core.versions import VersionConfig
from repro.errors import SimulationError
from repro.hardware.events import EventTimeline, TimelineResult
from repro.hardware.machine import Machine
from repro.hardware.specs import AMP_BYTES
from repro.hardware.topology import HOST


@dataclass
class DetailedRun:
    """Outcome of a chunk-granular execution.

    Attributes:
        timeline: The event-engine result (per-task starts/finishes).
        makespan: Total modelled seconds.
        chunk_copies: H2D chunk-batch copies issued.
        chunks_pruned: Chunk transfers Algorithm 1 skipped.
        gates: Gates executed.
        devices: Devices the run streamed over.
        transfers: Bytes moved per ``(src, dst)`` endpoint pair - the
            ground truth the fleet comm matrix must reproduce exactly.
        link_bytes: Bytes carried per topology link id (both directions).
    """

    timeline: TimelineResult
    makespan: float
    chunk_copies: int
    chunks_pruned: int
    gates: int
    devices: int = 1
    transfers: dict[tuple[str, str], float] = field(default_factory=dict)
    link_bytes: dict[str, float] = field(default_factory=dict)

    @property
    def bytes_h2d(self) -> float:
        """Total bytes streamed host-to-device."""
        return sum(b for (src, _), b in self.transfers.items() if src == HOST)

    @property
    def bytes_d2h(self) -> float:
        """Total bytes streamed device-to-host."""
        return sum(b for (_, dst), b in self.transfers.items() if dst == HOST)

    def comm_matrix(self) -> dict[str, dict[str, float]]:
        """Endpoint-to-endpoint byte matrix (``{src: {dst: bytes}}``)."""
        matrix: dict[str, dict[str, float]] = {}
        for (src, dst), moved in sorted(self.transfers.items()):
            matrix.setdefault(src, {})[dst] = moved
        return matrix


class DetailedExecutor:
    """Builds and runs chunk-level task graphs for the streaming versions.

    Args:
        machine: Hardware model supplying bandwidths and kernel times.
        chunk_bits: Within-chunk qubits.
        capacity_bytes: Per-device GPU buffer capacity override - scale
            this *down* together with the circuit width so streaming
            occurs at tractable task counts (the default uses the real
            device).
        devices: Device count override; defaults to the machine's GPU
            count.  With more than one device each gate's chunk groups
            are assigned round-robin (Fig. 18) and every device gets its
            own transfer/compute lanes.

    Only dynamic-allocation versions are supported (the static baseline has
    no streaming pipeline to inspect).
    """

    def __init__(
        self,
        machine: Machine,
        chunk_bits: int,
        capacity_bytes: int | None = None,
        devices: int | None = None,
    ) -> None:
        self.machine = machine
        self.chunk_bits = chunk_bits
        self.capacity_bytes = (
            capacity_bytes
            if capacity_bytes is not None
            else machine.gpu_capacity_bytes()
        )
        if self.capacity_bytes < (AMP_BYTES << chunk_bits):
            raise SimulationError("capacity smaller than one chunk")
        self.devices = devices if devices is not None else len(machine.spec.gpus)
        if self.devices < 1:
            raise SimulationError("need at least one device")

    def execute(
        self,
        circuit: QuantumCircuit,
        version: VersionConfig,
        compression_ratio: float = 1.0,
    ) -> DetailedRun:
        if not version.dynamic_allocation:
            raise SimulationError(
                "the detailed executor models the streaming versions only"
            )
        n = circuit.num_qubits
        if n < self.chunk_bits:
            raise SimulationError("circuit narrower than a chunk")
        if n - self.chunk_bits > 10:
            raise SimulationError(
                "detailed execution beyond 1024 chunks is impractical; "
                "scale the workload down"
            )
        devices = self.devices
        spec = self.machine.spec
        if devices != len(spec.gpus):
            spec = spec.with_gpu_count(devices)
        topology = spec.interconnect()
        dev_names = topology.devices

        ordered = reorder(circuit, version.reorder_strategy)
        chunk_bytes = AMP_BYTES << self.chunk_bits
        chunk_amps = 1 << self.chunk_bits
        num_chunks = 1 << (n - self.chunk_bits)
        buffer_bytes = self.capacity_bytes // 2 if version.overlap else self.capacity_bytes
        batch_chunks = max(1, buffer_bytes // chunk_bytes)
        ratio = compression_ratio if version.compression else 1.0

        timeline = EventTimeline()
        tracker = InvolvementTracker(n)
        previous_in: dict[int, str | None] = {d: None for d in range(devices)}
        previous_comp: dict[int, str | None] = {d: None for d in range(devices)}
        previous_out: dict[int, str | None] = {d: None for d in range(devices)}
        out_ring: dict[int, list[str]] = {d: [] for d in range(devices)}
        #: chunk index -> (owner device, D2H task that last wrote it back).
        last_writer: dict[int, tuple[int, str]] = {}
        transfers: dict[tuple[str, str], float] = {}
        link_bytes: dict[str, float] = {}
        chunk_copies = 0
        chunks_pruned = 0

        def account(src: str, dst: str, link_id: str, moved: float) -> None:
            transfers[(src, dst)] = transfers.get((src, dst), 0.0) + moved
            link_bytes[link_id] = link_bytes.get(link_id, 0.0) + moved

        for gate_index, gate in enumerate(ordered):
            if version.pruning:
                tracker.involve(
                    gate, diagonal_aware=version.diagonal_aware_pruning
                )
                live = list(
                    iter_live_chunks(n, self.chunk_bits, tracker.mask)
                )
                chunks_pruned += num_chunks - len(live)
            else:
                live = list(range(num_chunks))

            if devices == 1:
                owned = {0: live}
            else:
                assignment = assign_round_robin(
                    n, self.chunk_bits, gate, devices
                )
                live_set = set(live)
                owned = {
                    d: [
                        index
                        for group, owner in zip(
                            assignment.groups, assignment.owners
                        )
                        if owner == d
                        for index in group
                        if index in live_set
                    ]
                    for d in range(devices)
                }

            for dev in range(devices):
                chunks = owned[dev]
                if not chunks:
                    continue
                dev_name = dev_names[dev]
                host_link = topology.host_link(dev_name)
                link_bw = host_link.spec.bandwidth_per_direction
                latency = host_link.spec.latency
                h2d_res, gpu_res, d2h_res = (
                    ("h2d", "gpu", "d2h")
                    if devices == 1
                    else (
                        f"{dev_name}:h2d",
                        f"{dev_name}:gpu",
                        f"{dev_name}:d2h",
                    )
                )
                batches = [
                    chunks[start : start + batch_chunks]
                    for start in range(0, len(chunks), batch_chunks)
                ]
                for batch_index, batch in enumerate(batches):
                    batch_bytes = len(batch) * chunk_bytes * ratio
                    moved = (
                        int(batch_bytes)
                        if batch_bytes == int(batch_bytes)
                        else batch_bytes
                    )
                    label = (
                        f"g{gate_index}b{batch_index}"
                        if devices == 1
                        else f"g{gate_index}d{dev}b{batch_index}"
                    )
                    in_name, comp_name, out_name = (
                        f"{label}/in", f"{label}/comp", f"{label}/out",
                    )

                    in_deps = []
                    if version.overlap:
                        if previous_in[dev]:
                            in_deps.append(previous_in[dev])
                        if len(out_ring[dev]) >= 2:
                            in_deps.append(out_ring[dev][-2])
                    else:
                        if previous_out[dev]:
                            in_deps.append(previous_out[dev])
                    # A chunk changing owners relays through host memory:
                    # the new owner's copy-in waits for the old owner's
                    # copy-out (Fig. 18 - no peer-to-peer traffic).
                    for index in batch:
                        writer = last_writer.get(index)
                        if writer is not None and writer[0] != dev:
                            in_deps.append(writer[1])
                    timeline.add(
                        in_name, h2d_res,
                        batch_bytes / link_bw + latency, tuple(set(in_deps)),
                        meta={
                            "device": dev_name,
                            "link": host_link.link_id,
                            "src": HOST,
                            "dst": dev_name,
                            "bytes": moved,
                            "chunks": len(batch),
                        },
                    )
                    account(HOST, dev_name, host_link.link_id, moved)
                    chunk_copies += 1

                    kernel = self.machine.gpu_compute_time(
                        len(batch) * chunk_amps, gate.num_qubits, gate.is_diagonal
                    )
                    codec = (
                        self.machine.codec_time(2 * len(batch) * chunk_bytes)
                        if version.compression
                        else 0.0
                    )
                    comp_deps = [in_name] + (
                        [previous_comp[dev]] if previous_comp[dev] else []
                    )
                    timeline.add(
                        comp_name, gpu_res, kernel + codec, tuple(comp_deps),
                        meta={"device": dev_name, "chunks": len(batch)},
                    )

                    out_deps = [comp_name] + (
                        [previous_out[dev]] if previous_out[dev] else []
                    )
                    timeline.add(
                        out_name, d2h_res,
                        batch_bytes / link_bw + latency, tuple(out_deps),
                        meta={
                            "device": dev_name,
                            "link": host_link.link_id,
                            "src": dev_name,
                            "dst": HOST,
                            "bytes": moved,
                            "chunks": len(batch),
                        },
                    )
                    account(dev_name, HOST, host_link.link_id, moved)
                    previous_in[dev], previous_comp[dev], previous_out[dev] = (
                        in_name, comp_name, out_name,
                    )
                    out_ring[dev].append(out_name)
                    for index in batch:
                        last_writer[index] = (dev, out_name)

        result = timeline.run() if len(timeline) else TimelineResult({}, 0.0, {})
        return DetailedRun(
            timeline=result,
            makespan=result.makespan,
            chunk_copies=chunk_copies,
            chunks_pruned=chunks_pruned,
            gates=len(ordered),
            devices=devices,
            transfers=transfers,
            link_bytes=link_bytes,
        )
