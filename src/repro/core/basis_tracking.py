"""Basis-tracking pruning: a three-state generalisation of Algorithm 1.

Algorithm 1 tracks one bit per qubit - *involved or not* - and treats any
touched qubit as free.  But many touches do not create superposition:

* ``X`` on a basis qubit just flips it (``hchain``'s Hartree-Fock
  preparation, ``bv``'s ancilla prep),
* ``CX`` with a control fixed at ``|0>`` is the identity; with a control
  fixed at ``|1>`` it is an ``X`` on the target,
* diagonal gates only rotate phases (the diagonal-aware extension).

This tracker keeps one of three states per qubit - ``FIXED0``, ``FIXED1``
or ``FREE`` - and updates it with exact rules for the library gate set,
falling back to ``FREE`` whenever soundness cannot be proven.  The live
set is then *amplitudes whose fixed bits match*: ``2^(#free)`` of them,
at indices ``{i : i & fixed_mask == fixed_value}``.

Soundness is verified in the test suite the same way Algorithm 1 is: every
chunk this tracker prunes is exactly zero in a real simulation, for every
benchmark family, at every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.circuits.gates import Gate
from repro.errors import SimulationError


class QubitState(Enum):
    FIXED0 = 0
    FIXED1 = 1
    FREE = 2


#: Single-qubit gates that permute the computational basis (keep basis
#: states basis states).  ``x`` flips; ``id``/diagonals do nothing.
_BASIS_FLIPS = {"x", "y"}  # y = iXZ: flips the basis bit (phase is global here)


@dataclass
class BasisTracker:
    """Per-qubit basis knowledge over an ``n``-qubit register.

    Attributes:
        num_qubits: Register width.
        states: Current knowledge per qubit (all ``FIXED0`` initially).
    """

    num_qubits: int
    states: list[QubitState] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise SimulationError("num_qubits must be positive")
        if not self.states:
            self.states = [QubitState.FIXED0] * self.num_qubits

    # -- queries -----------------------------------------------------------

    @property
    def free_count(self) -> int:
        return sum(1 for s in self.states if s is QubitState.FREE)

    @property
    def live_amplitudes(self) -> int:
        """Exactly ``2^(#free)`` amplitudes can be non-zero."""
        return 1 << self.free_count

    def fixed_masks(self) -> tuple[int, int]:
        """``(fixed_mask, fixed_value)``: live indices satisfy
        ``index & fixed_mask == fixed_value``."""
        mask = value = 0
        for q, state in enumerate(self.states):
            if state is QubitState.FREE:
                continue
            mask |= 1 << q
            if state is QubitState.FIXED1:
                value |= 1 << q
        return mask, value

    def chunk_is_pruned(self, chunk_index: int, chunk_bits: int) -> bool:
        """True when no live amplitude falls inside the chunk."""
        mask, value = self.fixed_masks()
        high_mask = mask >> chunk_bits
        high_value = value >> chunk_bits
        return (chunk_index & high_mask) != high_value

    # -- evolution ------------------------------------------------------------

    def observe(self, gate: Gate) -> "BasisTracker":
        """Update knowledge after ``gate``; returns ``self``.

        Exact for the library gate set; unknown structure degrades every
        participating qubit to ``FREE`` (always sound).
        """
        for q in gate.qubits:
            if q >= self.num_qubits:
                raise SimulationError(f"gate {gate} exceeds register width")
        name = gate.name

        if gate.is_diagonal:
            # Phases only: a zero amplitude stays zero, a fixed bit stays
            # fixed.  (Global phase on fixed-1 qubits is unobservable.)
            return self

        if gate.num_qubits == 1:
            q = gate.qubits[0]
            if name in _BASIS_FLIPS:
                self._flip(q)
            else:  # h, sx, sy, rx, ry, u: creates superposition in general
                self.states[q] = QubitState.FREE
            return self

        if name in ("cx", "cy"):
            control, target = gate.qubits
            control_state = self.states[control]
            if control_state is QubitState.FIXED0:
                return self  # identity
            if control_state is QubitState.FIXED1:
                self._flip(target)
                return self
            # Free control: the target entangles unless it is already free.
            self.states[target] = QubitState.FREE
            return self

        if name == "swap":
            a, b = gate.qubits
            self.states[a], self.states[b] = self.states[b], self.states[a]
            return self

        if name == "ccx":
            c0, c1, target = gate.qubits
            s0, s1 = self.states[c0], self.states[c1]
            if QubitState.FIXED0 in (s0, s1):
                return self  # identity
            if s0 is QubitState.FIXED1 and s1 is QubitState.FIXED1:
                self._flip(target)
                return self
            self.states[target] = QubitState.FREE
            return self

        # Unknown multi-qubit structure: degrade everything it touches.
        for q in gate.qubits:
            self.states[q] = QubitState.FREE
        return self

    def _flip(self, qubit: int) -> None:
        state = self.states[qubit]
        if state is QubitState.FIXED0:
            self.states[qubit] = QubitState.FIXED1
        elif state is QubitState.FIXED1:
            self.states[qubit] = QubitState.FIXED0
        # FREE stays FREE.

    def live_amplitudes_with(self, gate: Gate) -> int:
        """Amplitudes the gate's update must touch: union of the live sets
        before and after observing the gate (computed on a copy)."""
        peek = BasisTracker(self.num_qubits, list(self.states))
        peek.observe(gate)
        # Union of two affine subspaces of sizes 2^f and 2^f' is at most
        # their sum; for the flip/identity cases the sets coincide or
        # translate, so the larger of the two free counts bounds the touch
        # set tightly except for flips (same size, disjoint): double then.
        before, after = self.live_amplitudes, peek.live_amplitudes
        if after == before and peek.states != self.states:
            return 2 * before  # a flip moves the live set: touch both
        return max(before, after)
