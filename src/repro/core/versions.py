"""The six stacked execution versions evaluated in the paper (Section V).

Each version is a :class:`VersionConfig` switching on one more optimization
than the previous, exactly as the evaluation stacks them:

========== ========== ======= ======= ================ ===========
name       allocation overlap pruning reorder          compression
========== ========== ======= ======= ================ ===========
Baseline   static     -       -       original         -
Naive      dynamic    -       -       original         -
Overlap    dynamic    yes     -       original         -
Pruning    dynamic    yes     yes     original         -
Reorder    dynamic    yes     yes     forward-looking  -
Q-GPU      dynamic    yes     yes     forward-looking  yes
========== ========== ======= ======= ================ ===========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class VersionConfig:
    """Feature switches for one execution version.

    Attributes:
        name: Display name used in reports and figures.
        dynamic_allocation: ``False`` = the QISKit-Aer static chunk split
            with reactive exchange (Section III-B); ``True`` = chunks
            stream through the GPU.
        overlap: Double-buffered bidirectional streaming (Section IV-A).
            Requires ``dynamic_allocation``.
        pruning: Zero-amplitude chunk pruning via Algorithm 1 (Section IV-B).
        reorder_strategy: ``"original"``, ``"greedy"`` or
            ``"forward_looking"`` (Section IV-C).
        compression: GFC compression of streamed chunks (Section IV-D).
        live_residency: Extension beyond the paper (ablation): keep the
            pruned live set cached in GPU memory across gates while it
            fits, instead of streaming it from the host every gate as the
            paper's circular-buffer design does.
        diagonal_aware_pruning: Extension beyond the paper (ablation):
            diagonal gates cannot create new non-zero amplitudes, so they
            neither involve new qubits nor touch the uninvolved slices -
            a strictly tighter (still sound) version of Algorithm 1.
        basis_tracking_pruning: Extension beyond the paper (ablation): track
            three states per qubit (fixed-0 / fixed-1 / free) so basis
            permutations (X, fixed-control CX/CCX) and diagonal gates never
            inflate the live set (see :mod:`repro.core.basis_tracking`).
            Subsumes ``diagonal_aware_pruning``.
    """

    name: str
    dynamic_allocation: bool
    overlap: bool
    pruning: bool
    reorder_strategy: str = "original"
    compression: bool = False
    live_residency: bool = False
    diagonal_aware_pruning: bool = False
    basis_tracking_pruning: bool = False

    def __post_init__(self) -> None:
        if self.overlap and not self.dynamic_allocation:
            raise SimulationError("overlap requires dynamic allocation")
        if self.reorder_strategy not in ("original", "greedy", "forward_looking"):
            raise SimulationError(
                f"unknown reorder strategy {self.reorder_strategy!r}"
            )


BASELINE = VersionConfig("Baseline", dynamic_allocation=False, overlap=False, pruning=False)
NAIVE = VersionConfig("Naive", dynamic_allocation=True, overlap=False, pruning=False)
OVERLAP = VersionConfig("Overlap", dynamic_allocation=True, overlap=True, pruning=False)
PRUNING = VersionConfig("Pruning", dynamic_allocation=True, overlap=True, pruning=True)
REORDER = VersionConfig(
    "Reorder", dynamic_allocation=True, overlap=True, pruning=True,
    reorder_strategy="forward_looking",
)
QGPU = VersionConfig(
    "Q-GPU", dynamic_allocation=True, overlap=True, pruning=True,
    reorder_strategy="forward_looking", compression=True,
)

#: The paper's six versions, in Fig. 12's stacking order.
ALL_VERSIONS: tuple[VersionConfig, ...] = (
    BASELINE, NAIVE, OVERLAP, PRUNING, REORDER, QGPU,
)

VERSIONS_BY_NAME: dict[str, VersionConfig] = {v.name: v for v in ALL_VERSIONS}
