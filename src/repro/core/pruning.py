"""Zero state-amplitude pruning - Algorithm 1 of the paper.

A chunk of ``2^chunkSize`` amplitudes is indexed by the high ``n - chunkSize``
qubit bits.  If the chunk index has a 1 in a position whose qubit is not yet
involved, every amplitude in the chunk is zero and the chunk is *pruned*: it
is neither transferred to the GPU nor updated (a zero vector is unchanged by
any unitary).

Two implementations are provided:

* :func:`iter_live_chunks` - a faithful transcription of Algorithm 1,
  including its early-exit (``iChunk' > involvement``) and skip
  (``iChunk' & involvement != iChunk'``) tests, used on the functional
  chunked engine and in tests;
* :func:`live_chunk_count` - the closed form ``2^(involved high bits)``
  used by the timed executor, validated against the former.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SimulationError


def iter_live_chunks(
    num_qubits: int, chunk_bits: int, involvement: int
) -> Iterator[int]:
    """Yield the chunk indices Algorithm 1 does *not* prune, in order.

    Args:
        num_qubits: Register width ``n``.
        chunk_bits: ``chunkSize`` - low bits addressing within a chunk.
        involvement: Involvement bitmask over all ``n`` qubits.
    """
    if not 0 < chunk_bits <= num_qubits:
        raise SimulationError(f"chunk_bits {chunk_bits} out of range")
    if involvement >> num_qubits:
        raise SimulationError("involvement mask wider than the register")
    num_chunks = 1 << (num_qubits - chunk_bits)
    for chunk_index in range(num_chunks):
        shifted = chunk_index << chunk_bits  # iChunk' - aligned to qubits
        if shifted > involvement:
            # All remaining indices are larger still: every one of them has
            # a 1 above the involvement prefix, hence only zero amplitudes.
            break
        if shifted & involvement != shifted:
            continue  # some chunk-index 1-bit sits at an uninvolved qubit
        yield chunk_index


def live_chunk_count(num_qubits: int, chunk_bits: int, involvement: int) -> int:
    """Closed form for the number of live (unpruned) chunks.

    A chunk is live iff its index bits are a subset of the involvement bits
    above ``chunk_bits``; there are ``2^popcount(involvement >> chunk_bits)``
    such subsets.
    """
    if not 0 < chunk_bits <= num_qubits:
        raise SimulationError(f"chunk_bits {chunk_bits} out of range")
    high_involved = (involvement >> chunk_bits).bit_count()
    return 1 << high_involved


def live_amplitude_count(num_qubits: int, involvement: int) -> int:
    """Amplitudes that can be non-zero: ``2^popcount(involvement)``."""
    if involvement >> num_qubits:
        raise SimulationError("involvement mask wider than the register")
    return 1 << involvement.bit_count()


def chunk_is_pruned(chunk_index: int, chunk_bits: int, involvement: int) -> bool:
    """Pruning test of Algorithm 1, line 7, for one chunk."""
    shifted = chunk_index << chunk_bits
    return shifted & involvement != shifted
