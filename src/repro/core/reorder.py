"""Dependency-aware gate reordering - Algorithms 2 and 3 of the paper.

Both heuristics traverse the gate-dependency DAG in topological order and
choose, at each step, an executable gate that delays qubit involvement:

* **Greedy** (Algorithm 2): pick the ready gate introducing the fewest new
  qubits.
* **Forward-looking** (Algorithm 3): rank each ready gate by
  ``costCurrent + costLookAhead`` - the new qubits it introduces plus the
  minimum new qubits any gate ready *after* it would introduce.  This looks
  one step past ties and finds orders greedy misses (the paper's Fig. 8c).

The paper's pseudocode initialises both running minima to 0, which would
never admit a positive cost; the intended infinity-initialisation is used
here.  Ties are broken by original circuit position, making the pass
deterministic (the paper picks randomly among equals).

Reordering never violates a dependency edge, so the simulated final state is
bit-identical to the original order (validated in the test suite).
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import GateDag
from repro.errors import CircuitError


def _new_qubit_cost(qubits: tuple[int, ...], involved: set[int]) -> int:
    """Number of ``qubits`` not yet in ``involved`` (Algorithm 3 lines 3-6)."""
    return sum(1 for q in qubits if q not in involved)


def reorder_greedy(circuit: QuantumCircuit, commute_diagonals: bool = False) -> QuantumCircuit:
    """Greedy reordering (Algorithm 2).

    Args:
        circuit: Circuit to reorder.
        commute_diagonals: Build the DAG with the diagonal-commutation
            relaxation (ablation option; the paper uses the conservative
            DAG).

    Returns:
        A new circuit whose gate order respects every dependency.
    """
    dag = GateDag(circuit, commute_diagonals=commute_diagonals)
    pending = {node.index: len(node.predecessors) for node in dag}
    ready = dag.roots()
    involved: set[int] = set()
    order: list[int] = []

    while ready:
        best_index = None
        best_cost = None
        for index in ready:
            cost = _new_qubit_cost(dag.nodes[index].gate.qubits, involved)
            if best_cost is None or cost < best_cost or (
                cost == best_cost and index < best_index
            ):
                best_cost = cost
                best_index = index
        ready.remove(best_index)
        order.append(best_index)
        involved.update(dag.nodes[best_index].gate.qubits)
        for successor in sorted(dag.nodes[best_index].successors):
            pending[successor] -= 1
            if pending[successor] == 0:
                ready.append(successor)

    if len(order) != len(dag):  # pragma: no cover - DAG is acyclic by build
        raise CircuitError("reordering failed to schedule every gate")
    return circuit.with_gates(
        (dag.nodes[index].gate for index in order), suffix=""
    )


def _look_ahead_cost(
    dag: GateDag,
    candidate: int,
    ready: list[int],
    pending: dict[int, int],
    involved: set[int],
) -> tuple[int, int]:
    """Cost of Algorithm 3: new qubits now plus the cheapest next step.

    Returns ``(total cost, current cost)``: ties on the total prefer the
    gate that is free *right now* (the paper's Fig. 8c trace executes the
    zero-cost CNOT before an equal-total Hadamard).  Operates on copies;
    caller state is untouched.
    """
    gate = dag.nodes[candidate].gate
    cost_current = _new_qubit_cost(gate.qubits, involved)
    involved_after = involved | set(gate.qubits)

    next_ready = [index for index in ready if index != candidate]
    for successor in dag.nodes[candidate].successors:
        if pending[successor] == 1:
            next_ready.append(successor)

    cost_look_ahead = 0
    if next_ready:
        cost_look_ahead = min(
            _new_qubit_cost(dag.nodes[index].gate.qubits, involved_after)
            for index in next_ready
        )
    return cost_current + cost_look_ahead, cost_current


def reorder_forward_looking(
    circuit: QuantumCircuit, commute_diagonals: bool = False
) -> QuantumCircuit:
    """Forward-looking reordering (Algorithm 3)."""
    dag = GateDag(circuit, commute_diagonals=commute_diagonals)
    pending = {node.index: len(node.predecessors) for node in dag}
    ready = dag.roots()
    involved: set[int] = set()
    order: list[int] = []

    while ready:
        best_index = None
        best_cost = None
        for index in ready:
            cost = _look_ahead_cost(dag, index, ready, pending, involved)
            if best_cost is None or cost < best_cost or (
                cost == best_cost and index < best_index
            ):
                best_cost = cost
                best_index = index
        ready.remove(best_index)
        order.append(best_index)
        involved.update(dag.nodes[best_index].gate.qubits)
        for successor in sorted(dag.nodes[best_index].successors):
            pending[successor] -= 1
            if pending[successor] == 0:
                ready.append(successor)

    if len(order) != len(dag):  # pragma: no cover - DAG is acyclic by build
        raise CircuitError("reordering failed to schedule every gate")
    return circuit.with_gates(
        (dag.nodes[index].gate for index in order), suffix=""
    )


STRATEGIES = {
    "original": lambda circuit, commute_diagonals=False: circuit,
    "greedy": reorder_greedy,
    "forward_looking": reorder_forward_looking,
}


def reorder(
    circuit: QuantumCircuit, strategy: str = "forward_looking",
    commute_diagonals: bool = False,
) -> QuantumCircuit:
    """Reorder ``circuit`` with the named strategy.

    Args:
        circuit: Circuit to reorder.
        strategy: ``"original"`` (no-op), ``"greedy"`` or
            ``"forward_looking"`` (the Q-GPU default, Section V).
        commute_diagonals: DAG relaxation flag (ablation).
    """
    if strategy not in STRATEGIES:
        raise CircuitError(
            f"unknown reorder strategy {strategy!r}; pick one of {sorted(STRATEGIES)}"
        )
    return STRATEGIES[strategy](circuit, commute_diagonals=commute_diagonals)
