"""Public facade: the Q-GPU simulator.

:class:`QGpuSimulator` bundles the two halves of the reproduction:

* :meth:`QGpuSimulator.run` - *functional* simulation at tractable widths:
  applies the version's reordering, executes on the chunked engine, and
  skips chunk groups that Algorithm 1 proves all-zero.  Returns the exact
  final state plus pruning statistics, and is bit-identical to a dense
  unoptimized simulation (the paper's "pruning and reordering do not affect
  the simulation results").
* :meth:`QGpuSimulator.estimate` - *timed* simulation at any width: runs the
  machine-model executor and returns a :class:`~repro.core.executor.TimedResult`.

Both halves accept a :class:`~repro.reliability.faults.FaultPlan` and a
:class:`~repro.reliability.policy.RecoveryPolicy`: the functional engine
injects real corruption into chunk transfers (detected by CRC32 guards
and recovered by retrying from the pristine source, so a recovered run
stays bit-identical), while the timed engine charges retry and backoff
time on the modelled link.  :meth:`QGpuSimulator.run` can also write
periodic checkpoints and resume from one bit-exactly.

Typical use::

    sim = QGpuSimulator()                     # paper's P100 server, Q-GPU
    state = sim.run(circuit).state            # exact amplitudes
    timing = sim.estimate(circuit)            # modelled seconds at any n
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.compression.profile import family_ratio
from repro.core.basis_tracking import BasisTracker
from repro.core.executor import TimedExecutor, TimedResult
from repro.core.involvement import InvolvementTracker
from repro.core.pruning import chunk_is_pruned
from repro.core.reorder import reorder
from repro.core.versions import QGPU, VersionConfig
from repro.errors import (
    AnalysisError,
    CheckpointError,
    FaultInjectionError,
    SimulationError,
)
from repro.hardware.machine import Machine
from repro.hardware.specs import AMP_BYTES, MachineSpec, PAPER_MACHINE
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.reliability.cancellation import CancellationToken
from repro.reliability.checkpoint import load_checkpoint, save_checkpoint
from repro.reliability.faults import FaultKind, FaultPlan
from repro.reliability.integrity import ChunkTransferGuard, check_norm
from repro.reliability.policy import DEFAULT_POLICY, RecoveryPolicy, ReliabilityReport
from repro.statevector.apply import apply_gate
from repro.statevector.chunks import ChunkedStateVector, chunk_pair_groups
from repro.statevector.fusion import slab_members
from repro.statevector.kernels import set_kernel_counters
from repro.statevector.parallel import ParallelChunkEngine, resolve_workers


@dataclass
class FunctionalResult:
    """Outcome of a functional (exact) Q-GPU run.

    Attributes:
        state: Final state - a :class:`ChunkedStateVector` for dense runs,
            or a :class:`~repro.planner.engines.BackendExecution` when the
            planner routed the circuit to another engine (both expose
            ``to_dense()`` where representable).
        circuit_name: Name of the executed circuit.
        version: Version name used.
        chunk_updates_total: Chunk-group updates the unoptimized engine
            would perform.
        chunk_updates_skipped: Updates skipped because Algorithm 1 proved
            every member chunk zero.
        reliability: Fault/recovery accounting (present on every run; all
            zeros when no plan or guard was active).
        interrupted_at: Gate cursor where ``stop_after`` halted the run
            (None = ran to completion).
        backend: Backend that produced the state.
        precision: Numeric precision the returned state was computed at
            (``"double"`` after a norm-guard fallback, even if single was
            requested).
        norm_deviation: ``|1 - sum |amp|^2|`` measured after a
            single-precision dense run (None on double-only runs).
        precision_fallback: A single-precision run violated the norm
            bound and was deterministically re-run in complex128.
        truncation_error: Accumulated MPS truncation error (0.0 for exact
            backends).
    """

    state: ChunkedStateVector
    circuit_name: str
    version: str
    chunk_updates_total: int = 0
    chunk_updates_skipped: int = 0
    reliability: ReliabilityReport | None = None
    interrupted_at: int | None = None
    backend: str = "statevector"
    precision: str = "double"
    norm_deviation: float | None = None
    precision_fallback: bool = False
    truncation_error: float = 0.0

    @property
    def amplitudes(self) -> np.ndarray:
        return self.state.to_dense()

    @property
    def pruned_fraction(self) -> float:
        """Fraction of chunk-group updates pruning eliminated."""
        if self.chunk_updates_total == 0:
            return 0.0
        return self.chunk_updates_skipped / self.chunk_updates_total


def circuit_family(circuit: QuantumCircuit) -> str:
    """The benchmark family encoded in a ``family_n`` circuit name."""
    return circuit.name.rsplit("_", 1)[0]


class QGpuSimulator:
    """The Q-GPU quantum circuit simulator (functional + performance model).

    Args:
        machine: Hardware model to time against (default: the paper's P100
            server).
        version: Execution version (default: full Q-GPU).
        chunk_bits: Within-chunk qubits for the functional engine; the timed
            engine uses Aer's default unless overridden.
        fault_plan: Deterministic fault plan injected into both engines
            (None = fault-free).
        reliability_policy: Detection/recovery policy applied when faults
            or integrity guards are active.
        workers: Chunk-worker threads for the functional engine.  The
            default ``"auto"`` keeps small states on the bit-exact serial
            path and sizes a thread pool to the host for large ones;
            ``1`` forces serial everywhere; ``N > 1`` forces a pool of
            ``N``.  Fault-guarded runs always execute serially (the
            transfer guard is stateful), whatever this says.
        tracer: Optional :class:`~repro.obs.Tracer`.  Every :meth:`run`
            becomes a nested span tree (run / reorder / per-gate apply /
            transfers / checkpoints) and run statistics land in the
            tracer's counters.  Default: the shared disabled tracer
            (near-zero overhead).
        backend: Execution backend - ``"statevector"`` (default, the
            dense chunked engine and the only pre-planner behaviour), a
            forced ``"stabilizer"`` / ``"sparse"`` / ``"mps"``, or
            ``"auto"`` to let :mod:`repro.planner` pick per circuit.
        precision: ``"double"`` (default, bit-exact complex128),
            ``"single"`` (the dense engine's complex64 fast path, guarded
            by a norm-deviation bound with deterministic complex128
            fallback), or ``"auto"`` (planner decides).
        max_bond: MPS bond cap for planned/forced MPS runs and the
            planner's pricing.
        single_norm_bound: Norm-deviation ceiling accepted from a
            single-precision run before falling back to double.
        fusion: ``"on"`` (default) contracts consecutive gates into
            slabs (:func:`repro.statevector.fusion.fuse_slabs`) before
            the statevector gate loop - fewer full-state sweeps, results
            within ``atol <= 1e-12`` of the unfused path.  ``"off"``
            applies gates one by one, bit-identical to the pre-fusion
            engine.  Fusion is bypassed automatically (as if ``"off"``)
            for fault-guarded, checkpointing, resumed, or ``stop_after``
            runs, whose per-gate semantics must stay exact.
    """

    def __init__(
        self,
        machine: MachineSpec = PAPER_MACHINE,
        version: VersionConfig = QGPU,
        chunk_bits: int | None = None,
        fault_plan: FaultPlan | None = None,
        reliability_policy: RecoveryPolicy = DEFAULT_POLICY,
        workers: int | str | None = "auto",
        tracer: Tracer | None = None,
        backend: str = "statevector",
        precision: str = "double",
        max_bond: int = 64,
        single_norm_bound: float | None = None,
        fusion: str = "on",
    ) -> None:
        # Imported lazily everywhere in this module: repro.planner imports
        # repro.core.involvement, whose package __init__ imports this
        # module - a top-level import would cycle.
        from repro.planner import (
            BACKEND_CHOICES,
            DEFAULT_NORM_BOUND,
            PRECISION_CHOICES,
        )

        if chunk_bits is not None and chunk_bits <= 0:
            raise SimulationError(
                f"chunk_bits must be a positive number of within-chunk "
                f"qubits, got {chunk_bits}"
            )
        if backend not in BACKEND_CHOICES:
            raise SimulationError(
                f"unknown backend {backend!r} "
                f"(choose from {sorted(BACKEND_CHOICES)})"
            )
        if precision not in PRECISION_CHOICES:
            raise SimulationError(
                f"unknown precision {precision!r} "
                f"(choose from {sorted(PRECISION_CHOICES)})"
            )
        if max_bond < 1:
            raise SimulationError(f"max_bond must be >= 1, got {max_bond}")
        if fusion not in ("on", "off"):
            raise SimulationError(
                f"fusion must be 'on' or 'off', got {fusion!r}"
            )
        resolve_workers(workers, 1)  # validate eagerly; resolved per run
        self.machine = Machine(machine)
        self.machine_spec = machine
        self.version = version
        self.chunk_bits = chunk_bits
        self.fault_plan = fault_plan
        self.reliability_policy = reliability_policy
        self.workers = workers
        self.fusion = fusion
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.backend = backend
        self.precision = precision
        self.max_bond = max_bond
        self.single_norm_bound = (
            single_norm_bound if single_norm_bound is not None else DEFAULT_NORM_BOUND
        )

    # -- functional ---------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        *,
        checkpoint_every: int | None = None,
        checkpoint_path: str | Path | None = None,
        resume_from: str | Path | None = None,
        stop_after: int | None = None,
        workers: int | str | None = None,
        fusion: str | None = None,
        cancel: CancellationToken | None = None,
    ) -> FunctionalResult:
        """Exact simulation with the version's reordering and pruning.

        Args:
            circuit: Circuit to simulate.
            workers: Per-run override of the constructor's ``workers``
                knob (None = use the constructor's setting).
            fusion: Per-run override of the constructor's ``fusion`` knob
                (None = use the constructor's setting).
            cancel: Optional cooperative cancellation token.  The gate
                loop polls it before every applied gate (which also
                heartbeats the token), so a cancelled run stops within
                one gate's work and raises
                :class:`~repro.errors.JobCancelled`.
            checkpoint_every: Write a checkpoint after every N applied
                gates (requires ``checkpoint_path``).
            checkpoint_path: File the (single, atomically replaced)
                checkpoint is written to.
            resume_from: Checkpoint file to resume from; the prefix of the
                circuit up to the stored cursor is replayed through the
                pruning trackers but not re-applied, so the continued run
                is bit-identical to an uninterrupted one.
            stop_after: Halt after this many gates have been applied
                (simulates a crash for checkpoint testing; the result's
                ``interrupted_at`` records the cursor).

        Raises:
            SimulationError: For widths beyond the functional limit or
                inconsistent options.
            CheckpointError: Unusable or mismatched resume checkpoint.
            IntegrityError: A guard detected corruption and the policy
                forbids recovery.
            FaultInjectionError: An injected fault exhausted its retries.
            AnalysisError: ``backend="auto"`` and no backend can execute
                this circuit on this machine.
        """
        tracer = self.tracer
        backend, precision = self._route(circuit, tracer)
        previous_counters = (
            set_kernel_counters(
                tracer.counters, timing=not tracer.clock.deterministic
            )
            if tracer is not NULL_TRACER
            else None
        )
        run_span = (
            tracer.span(
                "run",
                circuit=circuit.name,
                version=self.version.name,
                backend=backend,
            )
            if tracer.enabled
            else None
        )
        try:
            if run_span is not None:
                with run_span:
                    return self._execute(
                        circuit,
                        tracer,
                        backend,
                        precision,
                        checkpoint_every=checkpoint_every,
                        checkpoint_path=checkpoint_path,
                        resume_from=resume_from,
                        stop_after=stop_after,
                        workers=workers,
                        fusion=fusion,
                        cancel=cancel,
                    )
            return self._execute(
                circuit,
                tracer,
                backend,
                precision,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume_from=resume_from,
                stop_after=stop_after,
                workers=workers,
                fusion=fusion,
                cancel=cancel,
            )
        finally:
            if tracer is not NULL_TRACER:
                set_kernel_counters(*previous_counters)

    # -- planner routing ----------------------------------------------------

    def resolve_backend(self, circuit: QuantumCircuit) -> tuple[str, str]:
        """The (backend, precision) this simulator would run ``circuit`` on.

        Deterministic and side-effect free; ``"auto"`` knobs are resolved
        through :func:`repro.planner.plan`.
        """
        if self.backend != "auto" and self.precision != "auto":
            return self.backend, self.precision
        chosen = self.plan(circuit)
        return chosen.backend, chosen.precision

    def plan(self, circuit: QuantumCircuit):
        """The full :class:`~repro.planner.BackendPlan` for ``circuit``."""
        from repro.planner import PlannerConfig, plan as plan_circuit

        config = PlannerConfig(
            machine=self.machine_spec,
            backend=self.backend,
            precision=self.precision,
            max_bond=self.max_bond,
        )
        return plan_circuit(circuit, config)

    def _route(self, circuit: QuantumCircuit, tracer: Tracer) -> tuple[str, str]:
        """Resolve the run's backend/precision, tracing auto decisions."""
        if self.backend != "auto" and self.precision != "auto":
            return self.backend, self.precision
        if tracer.enabled:
            with tracer.span("plan", stage="plan", circuit=circuit.name):
                chosen = self.plan(circuit)
        else:
            chosen = self.plan(circuit)
        if tracer is not NULL_TRACER:
            tracer.counters.count(f"planner.selected.{chosen.backend}")
        return chosen.backend, chosen.precision

    def _execute(
        self,
        circuit: QuantumCircuit,
        tracer: Tracer,
        backend: str,
        precision: str,
        *,
        checkpoint_every: int | None,
        checkpoint_path: str | Path | None,
        resume_from: str | Path | None,
        stop_after: int | None,
        workers: int | str | None,
        fusion: str | None,
        cancel: CancellationToken | None,
    ) -> FunctionalResult:
        if backend != "statevector":
            return self._run_nondense(
                circuit,
                tracer,
                backend,
                checkpoint_every=checkpoint_every,
                resume_from=resume_from,
                stop_after=stop_after,
                cancel=cancel,
            )
        if precision == "single":
            return self._run_single(
                circuit,
                tracer,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume_from=resume_from,
                stop_after=stop_after,
                workers=workers,
                fusion=fusion,
                cancel=cancel,
            )
        return self._run(
            circuit,
            tracer,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            resume_from=resume_from,
            stop_after=stop_after,
            workers=workers,
            fusion=fusion,
            cancel=cancel,
        )

    def _run_nondense(
        self,
        circuit: QuantumCircuit,
        tracer: Tracer,
        backend: str,
        *,
        checkpoint_every: int | None,
        resume_from: str | Path | None,
        stop_after: int | None,
        cancel: CancellationToken | None,
    ) -> FunctionalResult:
        """Execute on the tableau / hash-map / MPS engine."""
        from repro.planner import run_backend

        if checkpoint_every is not None or resume_from is not None:
            raise SimulationError(
                f"backend {backend!r} does not support checkpoint/resume; "
                "use the statevector backend"
            )
        if stop_after is not None:
            raise SimulationError(
                f"backend {backend!r} does not support partial runs "
                "(stop_after)"
            )
        if self.fault_plan is not None and self.fault_plan.active:
            raise SimulationError(
                f"backend {backend!r} does not support fault injection; "
                "use the statevector backend"
            )
        if cancel is not None:
            cancel.poll()
        if tracer.enabled:
            with tracer.span(
                f"backend:{backend}", stage="compute", circuit=circuit.name
            ):
                execution = run_backend(
                    circuit, backend, max_bond=self.max_bond
                )
        else:
            execution = run_backend(circuit, backend, max_bond=self.max_bond)
        if cancel is not None:
            cancel.poll()
        if tracer is not NULL_TRACER:
            tracer.counters.count("runs.completed")
        return FunctionalResult(
            state=execution,
            circuit_name=circuit.name,
            version=self.version.name,
            reliability=ReliabilityReport(),
            backend=backend,
            precision="double",
            truncation_error=execution.truncation_error,
        )

    def _run_single(
        self,
        circuit: QuantumCircuit,
        tracer: Tracer,
        *,
        checkpoint_every: int | None,
        checkpoint_path: str | Path | None,
        resume_from: str | Path | None,
        stop_after: int | None,
        workers: int | str | None,
        fusion: str | None,
        cancel: CancellationToken | None,
    ) -> FunctionalResult:
        """The complex64 fast path with the norm-guard double fallback."""
        from repro.planner import norm_deviation

        if checkpoint_every is not None or resume_from is not None:
            raise SimulationError(
                "single precision does not support checkpoint/resume "
                "(checkpoints are complex128); use precision='double'"
            )
        if self.fault_plan is not None and self.fault_plan.active:
            raise SimulationError(
                "single precision does not support fault injection; "
                "use precision='double'"
            )
        result = self._run(
            circuit,
            tracer,
            checkpoint_every=None,
            checkpoint_path=None,
            resume_from=None,
            stop_after=stop_after,
            workers=workers,
            fusion=fusion,
            cancel=cancel,
            dtype=np.complex64,
        )
        result.precision = "single"
        if result.interrupted_at is not None:
            # A partial state is not norm-1; the guard only covers
            # completed runs.
            return result
        deviation = norm_deviation(result.state.backing)
        result.norm_deviation = deviation
        if deviation <= self.single_norm_bound:
            return result
        # Rounding exceeded the bound: deterministic full re-run at
        # double precision (no partial reuse - reproducibility beats
        # salvaging a degraded state).
        if tracer is not NULL_TRACER:
            tracer.counters.count("planner.fallbacks")
        retried = self._run(
            circuit,
            tracer,
            checkpoint_every=None,
            checkpoint_path=None,
            resume_from=None,
            stop_after=stop_after,
            workers=workers,
            fusion=fusion,
            cancel=cancel,
        )
        retried.precision = "double"
        retried.precision_fallback = True
        retried.norm_deviation = deviation
        return retried

    def _run(
        self,
        circuit: QuantumCircuit,
        tracer: Tracer,
        *,
        checkpoint_every: int | None,
        checkpoint_path: str | Path | None,
        resume_from: str | Path | None,
        stop_after: int | None,
        workers: int | str | None,
        fusion: str | None = None,
        cancel: CancellationToken | None = None,
        dtype=np.complex128,
    ) -> FunctionalResult:
        n = circuit.num_qubits
        chunk_bits = self.chunk_bits if self.chunk_bits is not None else max(1, min(10, n - 2))
        if chunk_bits > n:
            raise SimulationError(f"chunk_bits {chunk_bits} exceeds width {n}")
        if checkpoint_every is not None:
            if checkpoint_every <= 0:
                raise SimulationError(
                    f"checkpoint_every must be positive, got {checkpoint_every}"
                )
            if checkpoint_path is None:
                raise SimulationError("checkpoint_every requires checkpoint_path")

        policy = self.reliability_policy
        report = ReliabilityReport()
        with tracer.span("reorder", stage="transpile", strategy=self.version.reorder_strategy):
            ordered = reorder(circuit, self.version.reorder_strategy)

        start_cursor = 0
        if resume_from is not None:
            with tracer.span("resume", stage="checkpoint"):
                checkpoint = load_checkpoint(resume_from)
            if checkpoint.num_qubits != n:
                raise CheckpointError(
                    f"checkpoint width {checkpoint.num_qubits} != circuit width {n}"
                )
            if checkpoint.circuit_name and checkpoint.circuit_name != circuit.name:
                raise CheckpointError(
                    f"checkpoint is for circuit {checkpoint.circuit_name!r}, "
                    f"not {circuit.name!r}"
                )
            if checkpoint.version_name and checkpoint.version_name != self.version.name:
                raise CheckpointError(
                    f"checkpoint is for version {checkpoint.version_name!r}, "
                    f"not {self.version.name!r}"
                )
            if checkpoint.gate_cursor > len(ordered):
                raise CheckpointError(
                    f"checkpoint cursor {checkpoint.gate_cursor} exceeds "
                    f"circuit length {len(ordered)}"
                )
            # Cross-check the stored involvement mask against a replay of
            # the circuit prefix: a mismatch means the checkpoint belongs
            # to a different circuit/cursor than it claims.
            replayed = InvolvementTracker(n)
            for gate in ordered[: checkpoint.gate_cursor]:
                replayed.involve(
                    gate, diagonal_aware=self.version.diagonal_aware_pruning
                )
            if checkpoint.involvement_mask not in (0, replayed.mask):
                raise CheckpointError(
                    "checkpoint involvement mask does not match the replayed "
                    "circuit prefix - wrong circuit or corrupted metadata"
                )
            state = checkpoint.state
            start_cursor = checkpoint.gate_cursor
            report.resumed_from_gate = start_cursor
        else:
            state = self._allocate_state(n, chunk_bits, report, dtype)

        guard: ChunkTransferGuard | None = None
        if self.fault_plan is not None and self.fault_plan.active:
            guard = ChunkTransferGuard(
                self.fault_plan,
                policy,
                compression=self.version.compression,
                report=report,
                tracer=tracer,
            )

        # Guarded runs stay serial: the transfer guard mutates shared fault
        # and CRC state per transfer, and injection order must be
        # deterministic for recovery to be reproducible.
        requested = workers if workers is not None else self.workers
        resolved = 1 if guard is not None else resolve_workers(requested, 1 << n)
        engine = ParallelChunkEngine(resolved, tracer) if resolved > 1 else None

        # Fusion contracts gate runs into slabs before the sweep loop.  It
        # is bypassed whenever per-gate semantics must stay exact: guarded
        # runs (injection order is per original gate), checkpoint/resume
        # (the cursor counts original gates), and stop_after partial runs.
        fusion_mode = fusion if fusion is not None else self.fusion
        use_fusion = (
            fusion_mode == "on"
            and guard is None
            and checkpoint_every is None
            and resume_from is None
            and stop_after is None
        )
        if use_fusion:
            from repro.statevector.fusion import GateSlab, fuse_slabs

            with tracer.span("fuse", stage="fuse", gates=len(ordered)):
                ops: list = fuse_slabs(list(ordered), chunk_bits=state.chunk_bits)
            if tracer is not NULL_TRACER:
                slabs = [op for op in ops if isinstance(op, GateSlab)]
                if slabs:
                    tracer.counters.count("fusion.slabs", len(slabs))
                    tracer.counters.count(
                        "fusion.gates_fused", sum(len(s.gates) for s in slabs)
                    )
                    if tracer.histograms:
                        widths = tracer.counters.histogram("fused_slab_width")
                        for slab in slabs:
                            widths.observe(len(slab.qubits))
        else:
            ops = list(ordered)

        tracker = InvolvementTracker(n)
        basis = BasisTracker(n) if self.version.basis_tracking_pruning else None
        total_updates = 0
        skipped_updates = 0
        interrupted_at: int | None = None

        if cancel is not None:
            cancel.poll()
        try:
            for index, gate in enumerate(ops):
                if cancel is not None:
                    cancel.poll()
                applying = index >= start_cursor
                # A slab stands for its member gates: trackers observe
                # each member (slabs only move amplitude within a group,
                # so pruning with the post-slab mask stays exact).
                for member in slab_members(gate):
                    if basis is not None:
                        basis.observe(member)
                    tracker.involve(
                        member, diagonal_aware=self.version.diagonal_aware_pruning
                    )
                groups = chunk_pair_groups(n, state.chunk_bits, gate.qubits)
                total_updates += len(groups)
                if self.version.pruning:
                    def pruned(member: int) -> bool:
                        if basis is not None:
                            return basis.chunk_is_pruned(member, state.chunk_bits)
                        return chunk_is_pruned(member, state.chunk_bits, tracker.mask)

                    live_groups = []
                    for members in groups:
                        if all(pruned(m) for m in members):
                            skipped_updates += 1
                        else:
                            live_groups.append(members)
                    groups = live_groups
                if not applying:
                    continue
                if guard is not None:
                    guard.begin_gate(index)
                if tracer.enabled and tracer.histograms and groups:
                    members = sum(len(g) for g in groups)
                    tracer.counters.histogram("chunk_bytes").observe(
                        members * (AMP_BYTES << state.chunk_bits)
                    )
                if tracer.enabled:
                    with tracer.span(
                        f"apply:{gate.name}",
                        stage="compute",
                        gate=index,
                        groups=len(groups),
                    ):
                        self._apply_groups(state, gate, groups, guard, engine, tracer)
                else:
                    self._apply_groups(state, gate, groups, guard, engine, tracer)
                cursor = index + 1
                if policy.norm_check_every and cursor % policy.norm_check_every == 0:
                    with tracer.span("norm_check", stage="integrity", gate=index):
                        check_norm(
                            state.chunks,
                            policy.norm_tolerance,
                            where=f"{circuit.name} after gate {index}",
                        )
                if (
                    checkpoint_every is not None
                    and cursor % checkpoint_every == 0
                    and cursor < len(ordered)
                ):
                    with tracer.span("checkpoint", stage="checkpoint", cursor=cursor):
                        save_checkpoint(
                            checkpoint_path,
                            state,
                            gate_cursor=cursor,
                            involvement_mask=tracker.mask,
                            circuit_name=circuit.name,
                            version_name=self.version.name,
                        )
                    report.checkpoints_written += 1
                if stop_after is not None and cursor >= stop_after:
                    interrupted_at = cursor
                    break
        finally:
            if engine is not None:
                engine.close()

        if tracer is not NULL_TRACER:
            counters = tracer.counters
            counters.count("chunk_updates.total", total_updates)
            counters.count("chunk_updates.skipped", skipped_updates)
            counters.count("runs.completed" if interrupted_at is None else "runs.interrupted")
            if report.checkpoints_written:
                counters.count("checkpoints.written", report.checkpoints_written)

        return FunctionalResult(
            state=state,
            circuit_name=circuit.name,
            version=self.version.name,
            chunk_updates_total=total_updates,
            chunk_updates_skipped=skipped_updates,
            reliability=report,
            interrupted_at=interrupted_at,
        )

    def _allocate_state(
        self,
        n: int,
        chunk_bits: int,
        report: ReliabilityReport,
        dtype=np.complex128,
    ) -> ChunkedStateVector:
        """Allocate the chunked state, degrading chunk size on injected OOM."""
        plan = self.fault_plan
        policy = self.reliability_policy
        bits = chunk_bits
        for attempt in range(policy.max_alloc_attempts):
            if plan is not None and plan.oom_fault(attempt):
                report.record_fault(FaultKind.OOM.value)
                if policy.halve_chunk_on_oom and bits > 1:
                    bits -= 1  # halve the chunk size and retry
                    report.degraded_chunk_bits = bits
                continue
            return ChunkedStateVector(n, bits, dtype=dtype)
        raise FaultInjectionError(
            f"state allocation failed {policy.max_alloc_attempts} times "
            f"(last attempted chunk_bits={bits})"
        )

    @staticmethod
    def _apply_groups(
        state: ChunkedStateVector,
        gate,
        groups: list[tuple[int, ...]],
        guard: ChunkTransferGuard | None = None,
        engine: ParallelChunkEngine | None = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        """Apply ``gate`` to the listed chunk groups only.

        Unguarded runs delegate to the state's group application (serial
        bit-exact path, or the ``engine``'s worker pool when one is
        given).  With a ``guard``, every chunk buffer crosses the
        simulated link twice (H2D before the update, D2H after), so
        injected transfer faults corrupt real data and recovery is
        exercised end-to-end; guarded application is always serial.  Each
        direction of a guarded transfer becomes an ``h2d``/``d2h`` span
        nested in the caller's gate span.
        """
        if guard is None:
            state.apply_groups(gate, groups, engine)
            return
        outside = [q for q in gate.qubits if q >= state.chunk_bits]
        if not outside:
            for (index,) in groups:
                with tracer.span("h2d", stage="h2d", chunk=index):
                    on_device = guard.transfer(state.chunks[index], f"h2d chunk {index}")
                apply_gate(on_device, gate)
                with tracer.span("d2h", stage="d2h", chunk=index):
                    state.chunks[index][...] = guard.transfer(
                        on_device, f"d2h chunk {index}"
                    )
            return
        mapping = {q: q for q in gate.qubits if q < state.chunk_bits}
        for rank, q in enumerate(sorted(outside)):
            mapping[q] = state.chunk_bits + rank
        remapped = gate.remapped(mapping)
        for members in groups:
            gathered = np.concatenate([state.chunks[m] for m in members])
            with tracer.span("h2d", stage="h2d", group=members[0]):
                on_device = guard.transfer(gathered, f"h2d group {members[0]}")
            apply_gate(on_device, remapped)
            with tracer.span("d2h", stage="d2h", group=members[0]):
                gathered = guard.transfer(on_device, f"d2h group {members[0]}")
            for position, member in enumerate(members):
                start = position << state.chunk_bits
                state.chunks[member][...] = gathered[start : start + state.chunk_size]

    # -- timed ---------------------------------------------------------------

    def estimate_cost(
        self, circuit: QuantumCircuit, compression_ratio: float = 1.0
    ) -> float:
        """Cheap modelled-seconds estimate for scheduling decisions.

        Unlike :meth:`estimate`, this never measures a compression profile
        (which runs real functional simulations): the caller supplies the
        ratio, defaulting to raw storage.  The shortest-estimated-job-first
        scheduler in :mod:`repro.service` prices every queued job with this
        hook, so it must stay closed-form fast at any width.

        Circuits this simulator routes to the dense chunked engine are
        priced by the timed DES model; circuits routed elsewhere (a
        forced or auto-selected tableau / hash-map / MPS backend)
        delegate to the planner's calibrated per-backend estimator - the
        DES model knows nothing about those engines and silently pricing
        them as dense is exactly the wrong answer this used to give.

        Raises:
            SimulationError: If the state fits no engine on this machine.
            AnalysisError: ``backend="auto"`` and nothing can execute the
                circuit.
        """
        backend, _precision = self.resolve_backend(circuit)
        if backend == "statevector":
            return self.estimate(
                circuit, compression_ratio=compression_ratio
            ).total_seconds
        from repro.planner import analyze_circuit, backend_cost

        features = analyze_circuit(circuit, bond_cap=self.max_bond)
        cost = backend_cost(features, backend, self.machine_spec, "double")
        if not cost.feasible:
            raise AnalysisError(
                f"backend {backend!r} cannot run {circuit.name}: {cost.reason}"
            )
        return cost.seconds

    def estimate(
        self,
        circuit: QuantumCircuit,
        compression_ratio: float | None = None,
    ) -> TimedResult:
        """Model the wall-clock execution of ``circuit`` on this machine.

        With a fault plan attached, the timeline charges retransmission
        and exponential backoff on every injected transfer/codec fault,
        itemized in ``TimedResult.retry_seconds``.

        Args:
            circuit: Circuit at any width the host can hold.
            compression_ratio: Override the measured per-family GFC ratio
                (useful for sensitivity studies); by default the ratio is
                measured on real amplitudes at a tractable width for this
                circuit's family.

        Raises:
            AnalysisError: The circuit routes to a non-dense backend -
                the DES timeline models the dense chunked engine only, so
                a timed result here would be a wrong-engine answer.  Use
                :meth:`estimate_cost` or :func:`repro.planner.plan` for
                per-backend pricing.
        """
        backend, _precision = self.resolve_backend(circuit)
        if backend != "statevector":
            raise AnalysisError(
                f"the timed DES model prices the dense chunked engine, but "
                f"{circuit.name} routes to the {backend!r} backend; use "
                f"estimate_cost() or repro.planner.plan() instead"
            )
        if compression_ratio is None:
            compression_ratio = (
                family_ratio(circuit_family(circuit))
                if self.version.compression
                else 1.0
            )
        executor = TimedExecutor(
            self.machine,
            **({"chunk_bits": self.chunk_bits} if self.chunk_bits is not None else {}),
            fault_plan=self.fault_plan,
            reliability_policy=self.reliability_policy,
        )
        return executor.execute(circuit, self.version, compression_ratio)
