"""Public facade: the Q-GPU simulator.

:class:`QGpuSimulator` bundles the two halves of the reproduction:

* :meth:`QGpuSimulator.run` - *functional* simulation at tractable widths:
  applies the version's reordering, executes on the chunked engine, and
  skips chunk groups that Algorithm 1 proves all-zero.  Returns the exact
  final state plus pruning statistics, and is bit-identical to a dense
  unoptimized simulation (the paper's "pruning and reordering do not affect
  the simulation results").
* :meth:`QGpuSimulator.estimate` - *timed* simulation at any width: runs the
  machine-model executor and returns a :class:`~repro.core.executor.TimedResult`.

Typical use::

    sim = QGpuSimulator()                     # paper's P100 server, Q-GPU
    state = sim.run(circuit).state            # exact amplitudes
    timing = sim.estimate(circuit)            # modelled seconds at any n
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.compression.profile import family_ratio
from repro.core.basis_tracking import BasisTracker
from repro.core.executor import TimedExecutor, TimedResult
from repro.core.involvement import InvolvementTracker
from repro.core.pruning import chunk_is_pruned
from repro.core.reorder import reorder
from repro.core.versions import QGPU, VersionConfig
from repro.errors import SimulationError
from repro.hardware.machine import Machine
from repro.hardware.specs import MachineSpec, PAPER_MACHINE
from repro.statevector.apply import apply_gate
from repro.statevector.chunks import ChunkedStateVector, chunk_pair_groups


@dataclass
class FunctionalResult:
    """Outcome of a functional (exact) Q-GPU run.

    Attributes:
        state: Final chunked state (``state.to_dense()`` for the vector).
        circuit_name: Name of the executed circuit.
        version: Version name used.
        chunk_updates_total: Chunk-group updates the unoptimized engine
            would perform.
        chunk_updates_skipped: Updates skipped because Algorithm 1 proved
            every member chunk zero.
    """

    state: ChunkedStateVector
    circuit_name: str
    version: str
    chunk_updates_total: int = 0
    chunk_updates_skipped: int = 0

    @property
    def amplitudes(self) -> np.ndarray:
        return self.state.to_dense()

    @property
    def pruned_fraction(self) -> float:
        """Fraction of chunk-group updates pruning eliminated."""
        if self.chunk_updates_total == 0:
            return 0.0
        return self.chunk_updates_skipped / self.chunk_updates_total


def circuit_family(circuit: QuantumCircuit) -> str:
    """The benchmark family encoded in a ``family_n`` circuit name."""
    return circuit.name.rsplit("_", 1)[0]


class QGpuSimulator:
    """The Q-GPU quantum circuit simulator (functional + performance model).

    Args:
        machine: Hardware model to time against (default: the paper's P100
            server).
        version: Execution version (default: full Q-GPU).
        chunk_bits: Within-chunk qubits for the functional engine; the timed
            engine uses Aer's default unless overridden.
    """

    def __init__(
        self,
        machine: MachineSpec = PAPER_MACHINE,
        version: VersionConfig = QGPU,
        chunk_bits: int | None = None,
    ) -> None:
        self.machine = Machine(machine)
        self.version = version
        self.chunk_bits = chunk_bits

    # -- functional ---------------------------------------------------------

    def run(self, circuit: QuantumCircuit) -> FunctionalResult:
        """Exact simulation with the version's reordering and pruning.

        Raises:
            SimulationError: For widths beyond the functional limit.
        """
        n = circuit.num_qubits
        chunk_bits = self.chunk_bits if self.chunk_bits is not None else max(1, min(10, n - 2))
        if chunk_bits > n:
            raise SimulationError(f"chunk_bits {chunk_bits} exceeds width {n}")
        ordered = reorder(circuit, self.version.reorder_strategy)
        state = ChunkedStateVector(n, chunk_bits)
        tracker = InvolvementTracker(n)
        basis = BasisTracker(n) if self.version.basis_tracking_pruning else None
        total_updates = 0
        skipped_updates = 0

        for gate in ordered:
            if basis is not None:
                basis.observe(gate)
            tracker.involve(
                gate, diagonal_aware=self.version.diagonal_aware_pruning
            )
            groups = chunk_pair_groups(n, chunk_bits, gate.qubits)
            total_updates += len(groups)
            if self.version.pruning:
                def pruned(member: int) -> bool:
                    if basis is not None:
                        return basis.chunk_is_pruned(member, chunk_bits)
                    return chunk_is_pruned(member, chunk_bits, tracker.mask)

                live_groups = []
                for members in groups:
                    if all(pruned(m) for m in members):
                        skipped_updates += 1
                    else:
                        live_groups.append(members)
                groups = live_groups
            self._apply_groups(state, gate, groups)

        return FunctionalResult(
            state=state,
            circuit_name=circuit.name,
            version=self.version.name,
            chunk_updates_total=total_updates,
            chunk_updates_skipped=skipped_updates,
        )

    @staticmethod
    def _apply_groups(
        state: ChunkedStateVector, gate, groups: list[tuple[int, ...]]
    ) -> None:
        """Apply ``gate`` to the listed chunk groups only."""
        outside = [q for q in gate.qubits if q >= state.chunk_bits]
        if not outside:
            for (index,) in groups:
                apply_gate(state.chunks[index], gate)
            return
        mapping = {q: q for q in gate.qubits if q < state.chunk_bits}
        for rank, q in enumerate(sorted(outside)):
            mapping[q] = state.chunk_bits + rank
        remapped = gate.remapped(mapping)
        for members in groups:
            gathered = np.concatenate([state.chunks[m] for m in members])
            apply_gate(gathered, remapped)
            for position, member in enumerate(members):
                start = position << state.chunk_bits
                state.chunks[member][...] = gathered[start : start + state.chunk_size]

    # -- timed ---------------------------------------------------------------

    def estimate(
        self,
        circuit: QuantumCircuit,
        compression_ratio: float | None = None,
    ) -> TimedResult:
        """Model the wall-clock execution of ``circuit`` on this machine.

        Args:
            circuit: Circuit at any width the host can hold.
            compression_ratio: Override the measured per-family GFC ratio
                (useful for sensitivity studies); by default the ratio is
                measured on real amplitudes at a tractable width for this
                circuit's family.
        """
        if compression_ratio is None:
            compression_ratio = (
                family_ratio(circuit_family(circuit))
                if self.version.compression
                else 1.0
            )
        executor = (
            TimedExecutor(self.machine, chunk_bits=self.chunk_bits)
            if self.chunk_bits is not None
            else TimedExecutor(self.machine)
        )
        return executor.execute(circuit, self.version, compression_ratio)
