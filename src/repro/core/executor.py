"""The timed executor: runs a circuit's chunk schedule on the machine model.

For every gate the executor derives the same quantities the real Q-GPU
runtime's scheduler derives - which chunks are live, which must move, what
the GPU and CPU each compute - and converts them to seconds with the
calibrated machine model.  The per-version disciplines follow the paper:

* **Baseline** (static allocation, Section III-B): the first chunks fill the
  GPU, the rest stay on the host; gates touching qubits above the chunk
  boundary trigger reactive, serialised chunk exchanges (Fig. 1, Case 2).
* **Naive** (Section III-D): every gate streams the full state vector
  through the GPU over a single stream (H2D, kernel, D2H serialise).
* **Overlap** (Section IV-A): two streams over two buffer halves; H2D, the
  kernel and D2H of consecutive batches overlap
  (:func:`~repro.hardware.pipeline.double_buffered_roundtrip`).
* **Pruning / Reorder** (Sections IV-B/C): only live chunks (Algorithm 1)
  are streamed and updated; while the live state fits on the GPU nothing
  moves at all.  Reordering is applied to the circuit before execution.
* **Compression** (Section IV-D): streamed bytes shrink by the measured
  per-family GFC ratio; the codec occupies the GPU alongside the kernel.

Multi-GPU machines follow Fig. 18: chunk groups are assigned round-robin,
each GPU streams its share over its own link, and the makespan is the
slowest GPU's pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.fusion import fuse
from repro.core.basis_tracking import BasisTracker
from repro.core.involvement import InvolvementTracker
from repro.core.reorder import reorder
from repro.core.versions import VersionConfig
from repro.errors import FaultInjectionError, IntegrityError, SimulationError
from repro.reliability.faults import FaultPlan
from repro.reliability.policy import DEFAULT_POLICY, RecoveryPolicy
from repro.hardware.machine import Machine
from repro.hardware.pipeline import (
    StageTimes,
    double_buffered_roundtrip,
    serial_roundtrip,
)
from repro.hardware.specs import AMP_BYTES

#: Default within-chunk qubits; QISKit-Aer uses 2^21-amplitude (32 MiB)
#: chunks, giving the paper's 8192 chunks at 34 qubits.
DEFAULT_CHUNK_BITS = 21
#: Upper bound on the number of chunks the dispatcher manages (the paper's
#: observed maximum); wider registers get proportionally larger chunks.
MAX_CHUNK_COUNT_BITS = 13
#: Reactive (baseline) chunk exchange moves each chunk through a staging
#: slot because the statically allocated GPU is full: evict + fill.
REACTIVE_STAGING_FACTOR = 2.0
#: Host-side synchronisation per reactively exchanged chunk (stream sync +
#: dispatcher bookkeeping), part of Fig. 2's "exchange and synchronisation".
REACTIVE_SYNC_SECONDS = 0.5e-3


@dataclass(frozen=True)
class FusedOp:
    """A fused multi-gate pass, duck-typed like a gate for the executor.

    QISKit-Aer's default gate fusion (enabled in both the paper's baseline
    and Q-GPU) multiplies adjacent overlapping gates into one wider pass,
    cutting the number of full-state traversals.  Fusion cancels out of
    baseline-normalized comparisons, so the standard benches run unfused;
    the fusion ablation bench measures its absolute effect.
    """

    name: str
    qubits: tuple[int, ...]
    is_diagonal: bool

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @classmethod
    def from_block(cls, block) -> "FusedOp":
        return cls(
            name=f"fused[{len(block.gates)}]",
            qubits=block.qubits,
            is_diagonal=all(g.is_diagonal for g in block.gates),
        )

    @classmethod
    def from_slab(cls, slab) -> "FusedOp":
        """Timed-model stand-in for a functional-engine fusion slab.

        Mirrors :meth:`from_block` for
        :class:`~repro.statevector.fusion.GateSlab` - the DES timeline
        charges one sweep per slab, exactly what the chunked engine pays.
        """
        return cls(
            name=slab.name,
            qubits=slab.qubits,
            is_diagonal=slab.is_diagonal,
        )


@dataclass
class GateTiming:
    """Per-gate timing and accounting record."""

    index: int
    name: str
    seconds: float
    cpu_seconds: float = 0.0
    gpu_seconds: float = 0.0
    transfer_seconds: float = 0.0
    codec_seconds: float = 0.0
    retry_seconds: float = 0.0
    bytes_h2d: float = 0.0
    bytes_d2h: float = 0.0
    live_fraction: float = 1.0
    faults: int = 0


@dataclass
class TimedResult:
    """Modelled end-to-end execution of one circuit under one version.

    Attributes:
        circuit_name: Name of the executed circuit.
        version: The version's display name.
        machine: The machine's display name.
        num_qubits: Register width.
        total_seconds: Modelled wall-clock time.
        cpu_seconds: Host compute time (chunk updates on the CPU).
        gpu_seconds: GPU kernel busy time.
        transfer_seconds: Time *exposed* by data movement - the part of the
            makespan not covered by compute (what Fig. 13 plots).
        codec_seconds: GPU time spent in GFC compress/decompress.
        retry_seconds: Time spent retransmitting faulted transfers and
            waiting out retry backoff (zero on a fault-free timeline).
        bytes_h2d: Bytes moved host-to-device (post-compression).
        bytes_d2h: Bytes moved device-to-host (post-compression).
        gpu_flops: Floating-point operations executed on the GPU.
        gpu_bytes_touched: DRAM traffic of the GPU kernels (for rooflines).
        faults_injected: Injected faults charged to this timeline.
        compression_disabled_at: Gate index where repeated codec faults
            disabled compression (None = never).
        per_gate: Per-gate records, in execution order.
    """

    circuit_name: str
    version: str
    machine: str
    num_qubits: int
    total_seconds: float = 0.0
    cpu_seconds: float = 0.0
    gpu_seconds: float = 0.0
    transfer_seconds: float = 0.0
    codec_seconds: float = 0.0
    retry_seconds: float = 0.0
    bytes_h2d: float = 0.0
    bytes_d2h: float = 0.0
    gpu_flops: float = 0.0
    gpu_bytes_touched: float = 0.0
    faults_injected: int = 0
    compression_disabled_at: int | None = None
    per_gate: list[GateTiming] = field(default_factory=list)

    def add(self, timing: GateTiming) -> None:
        self.per_gate.append(timing)
        self.total_seconds += timing.seconds
        self.cpu_seconds += timing.cpu_seconds
        self.gpu_seconds += timing.gpu_seconds
        self.transfer_seconds += timing.transfer_seconds
        self.codec_seconds += timing.codec_seconds
        self.retry_seconds += timing.retry_seconds
        self.bytes_h2d += timing.bytes_h2d
        self.bytes_d2h += timing.bytes_d2h
        self.faults_injected += timing.faults

    def to_csv(self) -> str:
        """Per-gate records as CSV text (for offline analysis/plotting)."""
        header = (
            "index,name,seconds,cpu_seconds,gpu_seconds,transfer_seconds,"
            "codec_seconds,retry_seconds,bytes_h2d,bytes_d2h,live_fraction,faults"
        )
        lines = [header]
        for g in self.per_gate:
            lines.append(
                f"{g.index},{g.name},{g.seconds!r},{g.cpu_seconds!r},"
                f"{g.gpu_seconds!r},{g.transfer_seconds!r},{g.codec_seconds!r},"
                f"{g.retry_seconds!r},{g.bytes_h2d!r},{g.bytes_d2h!r},"
                f"{g.live_fraction!r},{g.faults}"
            )
        return "\n".join(lines) + "\n"

    def breakdown(self) -> dict[str, float]:
        """Fractions of total time: cpu / gpu / transfer / codec / retry / other."""
        total = self.total_seconds or 1.0
        cpu = self.cpu_seconds / total
        gpu = self.gpu_seconds / total
        transfer = self.transfer_seconds / total
        codec = self.codec_seconds / total
        retry = self.retry_seconds / total
        return {
            "cpu": cpu,
            "gpu": min(gpu, 1.0),
            "transfer": transfer,
            "codec": codec,
            "retry": retry,
            "other": max(
                0.0, 1.0 - cpu - min(gpu, 1.0) - transfer - codec - retry
            ),
        }


class TimedExecutor:
    """Executes circuits against one machine model.

    Args:
        machine: Target machine.
        chunk_bits: Within-chunk qubits (default: Aer's 2^21 amplitudes).
        fault_plan: Deterministic fault plan charged against the timeline
            (None = fault-free): transfer/codec faults cost retransmission
            plus exponential backoff, link degradation stretches streaming.
        reliability_policy: Retry budget and backoff schedule.
    """

    def __init__(
        self,
        machine: Machine,
        chunk_bits: int = DEFAULT_CHUNK_BITS,
        fault_plan: FaultPlan | None = None,
        reliability_policy: RecoveryPolicy = DEFAULT_POLICY,
    ) -> None:
        self.machine = machine
        self.chunk_bits = chunk_bits
        self.fault_plan = fault_plan if fault_plan is not None and fault_plan.active else None
        self.reliability_policy = reliability_policy

    # -- public API ---------------------------------------------------------

    def execute(
        self,
        circuit: QuantumCircuit,
        version: VersionConfig,
        compression_ratio: float = 1.0,
        fusion_max_qubits: int = 0,
        fusion_slabs: bool = False,
    ) -> TimedResult:
        """Model the execution of ``circuit`` under ``version``.

        Args:
            circuit: Circuit to execute (reordering is applied here when the
                version calls for it).
            version: Execution version (see :mod:`repro.core.versions`).
            compression_ratio: Measured GFC compressed/uncompressed ratio
                for this circuit's family; only used when
                ``version.compression`` is set.
            fusion_max_qubits: When positive, apply Aer-style gate fusion
                up to this block width before executing (ablation; fusion
                cancels out of baseline-normalized figures).
            fusion_slabs: Model the functional engine's slab fusion
                (:func:`repro.statevector.fusion.fuse_slabs`) instead:
                the timeline charges one sweep per slab, matching the
                fused sweep count the chunked engine actually executes.
                Mutually exclusive with ``fusion_max_qubits``.

        Raises:
            SimulationError: When the state vector exceeds host memory (the
                same failure the paper reports for hchain_34/qaoa_32 on the
                A100 server).
        """
        n = circuit.num_qubits
        state_bytes = AMP_BYTES << n
        if not self.machine.fits_in_host(state_bytes):
            raise SimulationError(
                f"{circuit.name}: state vector needs "
                f"{state_bytes / 2**30:.0f} GiB but host has "
                f"{self.machine.spec.host_memory_bytes / 2**30:.0f} GiB"
            )
        if not 0.0 < compression_ratio <= 1.0:
            raise SimulationError(
                f"compression ratio must be in (0, 1], got {compression_ratio}"
            )

        if fusion_max_qubits and fusion_slabs:
            raise SimulationError(
                "fusion_max_qubits and fusion_slabs are mutually exclusive"
            )
        ordered = reorder(circuit, version.reorder_strategy)
        ops: list = list(ordered)
        if fusion_max_qubits:
            ops = [
                FusedOp.from_block(block)
                for block in fuse(ordered, fusion_max_qubits)
            ]
        elif fusion_slabs:
            # Imported lazily: repro.statevector pulls in the functional
            # engine stack, which this timed model does not otherwise need.
            from repro.statevector.fusion import GateSlab, fuse_slabs

            ops = [
                FusedOp.from_slab(op) if isinstance(op, GateSlab) else op
                for op in fuse_slabs(list(ordered))
            ]
        result = TimedResult(
            circuit_name=circuit.name,
            version=version.name,
            machine=self.machine.spec.name,
            num_qubits=n,
        )
        if version.dynamic_allocation:
            self._execute_streaming(ops, n, version, compression_ratio, result)
        else:
            self._execute_static(ops, n, result)
        return result

    # -- static baseline ------------------------------------------------------

    def _effective_chunk_bits(self, n: int) -> int:
        """Chunk size: Aer's default, grown so chunk count stays bounded."""
        bits = max(self.chunk_bits, n - MAX_CHUNK_COUNT_BITS)
        return min(bits, n)

    def _execute_static(self, ops: list, n: int, result: TimedResult) -> None:
        machine = self.machine
        state_bytes = AMP_BYTES << n
        capacity = machine.total_gpu_capacity_bytes()
        num_gpus = machine.num_gpus

        if state_bytes <= capacity:
            self._execute_resident(ops, n, result)
            return

        m = self._effective_chunk_bits(n)
        chunk_bytes = AMP_BYTES << m
        chunk_amps = 1 << m
        num_chunks = 1 << (n - m)
        gpu_chunks = min(num_chunks, capacity // chunk_bytes)
        cpu_chunks = num_chunks - gpu_chunks
        indices = np.arange(num_chunks, dtype=np.int64)

        for index, gate in enumerate(ops):
            outside = sorted(q - m for q in gate.qubits if q >= m)
            if not outside:
                # Case 1: every chunk updates where it lives.
                gpu_amps = gpu_chunks * chunk_amps
                cpu_amps = cpu_chunks * chunk_amps
                moved_chunks = 0
            else:
                outside_mask = 0
                for bit in outside:
                    outside_mask |= 1 << bit
                bases = indices[(indices & outside_mask) == 0]
                selectors = np.zeros(1 << len(outside), dtype=np.int64)
                for position, bit in enumerate(outside):
                    selectors |= (
                        (np.arange(1 << len(outside)) >> position & 1) << bit
                    )
                members = bases[:, None] | selectors[None, :]
                on_gpu = members < gpu_chunks
                gpu_members = on_gpu.sum(axis=1)
                group_size = members.shape[1]
                all_cpu = int((gpu_members == 0).sum())
                all_gpu = int((gpu_members == group_size).sum())
                mixed = members.shape[0] - all_cpu - all_gpu
                moved_chunks = int(
                    (~on_gpu[(gpu_members > 0) & (gpu_members < group_size)]).sum()
                )
                gpu_amps = (all_gpu + mixed) * group_size * chunk_amps
                cpu_amps = all_cpu * group_size * chunk_amps

            diagonal = gate.is_diagonal
            k = gate.num_qubits
            gpu_time = (
                machine.gpu_compute_time(gpu_amps / num_gpus, k, diagonal)
                if gpu_amps
                else 0.0
            )
            cpu_time = machine.cpu_compute_time(cpu_amps, chunked=True)
            moved_bytes = moved_chunks * chunk_bytes
            # Reactive exchange: H2D, update, D2H serialise; the GPU is
            # full under static allocation, so staging a CPU chunk first
            # evicts a resident one (doubling the traffic), and every
            # exchanged chunk pays a host-side synchronisation.  With
            # multiple GPUs the moved chunks split across per-GPU links.
            transfer_time = (
                2 * REACTIVE_STAGING_FACTOR
                * machine.transfer_time(moved_bytes / num_gpus, num_transfers=moved_chunks)
                + moved_chunks * REACTIVE_SYNC_SECONDS
            )
            result.add(
                GateTiming(
                    index=index,
                    name=gate.name,
                    seconds=cpu_time + gpu_time + transfer_time,
                    cpu_seconds=cpu_time,
                    gpu_seconds=gpu_time,
                    transfer_seconds=transfer_time,
                    bytes_h2d=moved_bytes,
                    bytes_d2h=moved_bytes,
                )
            )
            result.gpu_flops += machine.gate_flops(gpu_amps, k, diagonal)
            result.gpu_bytes_touched += 2 * AMP_BYTES * gpu_amps

        # Terminal measurement: the GPU-resident fraction returns to host.
        final_bytes = gpu_chunks * chunk_bytes
        final_time = self.machine.transfer_time(final_bytes / num_gpus, 1)
        result.add(
            GateTiming(
                index=len(ops),
                name="<readout>",
                seconds=final_time,
                transfer_seconds=final_time,
                bytes_d2h=final_bytes,
            )
        )

    # -- GPU-resident fast path ------------------------------------------------

    def _execute_resident(self, ops: list, n: int, result: TimedResult) -> None:
        """Whole state in GPU memory: compute only, plus terminal readout."""
        machine = self.machine
        amps = 1 << n
        num_gpus = machine.num_gpus
        for index, gate in enumerate(ops):
            gpu_time = machine.gpu_compute_time(
                amps / num_gpus, gate.num_qubits, gate.is_diagonal
            )
            result.add(
                GateTiming(index=index, name=gate.name, seconds=gpu_time,
                           gpu_seconds=gpu_time)
            )
            result.gpu_flops += machine.gate_flops(amps, gate.num_qubits, gate.is_diagonal)
            result.gpu_bytes_touched += 2 * AMP_BYTES * amps
        final_bytes = AMP_BYTES * amps
        final_time = machine.transfer_time(final_bytes / num_gpus, 1)
        result.add(
            GateTiming(
                index=len(ops), name="<readout>", seconds=final_time,
                transfer_seconds=final_time, bytes_d2h=final_bytes,
            )
        )

    # -- fault charging ----------------------------------------------------------

    @staticmethod
    def _charge_faults(
        plan: FaultPlan,
        policy: RecoveryPolicy,
        gate_index: int,
        batches: int,
        stage: StageTimes,
        codec_per_batch: float,
        compression_on: bool,
    ) -> tuple[float, int, int]:
        """Retry/backoff seconds the fault plan costs one gate's stream.

        Every faulted batch is retransmitted (H2D + D2H again) after an
        exponential-backoff wait; a codec fault redecodes and refetches.
        Returns ``(retry_seconds, faults, codec_faults)``.

        Raises:
            IntegrityError: A fault fired and the policy forbids retry.
            FaultInjectionError: A batch stayed faulted past the retry
                budget.
        """
        retry_seconds = 0.0
        faults = 0
        codec_faults = 0
        for batch in range(batches):
            attempt = 0
            while True:
                event = plan.transfer_fault(gate_index, batch, attempt)
                if event is None:
                    break
                faults += 1
                if policy.on_fault == "raise":
                    raise IntegrityError(
                        f"gate {gate_index} batch {batch}: {event.kind.value} "
                        "detected and policy forbids retry"
                    )
                attempt += 1
                if attempt >= policy.max_transfer_attempts:
                    raise FaultInjectionError(
                        f"gate {gate_index} batch {batch}: transfer still "
                        f"faulted after {policy.max_transfer_attempts} attempts"
                    )
                retry_seconds += (
                    stage.h2d + stage.d2h + policy.backoff_seconds(attempt)
                )
            if not compression_on:
                continue
            attempt = 0
            while True:
                event = plan.codec_fault(gate_index, batch, attempt)
                if event is None:
                    break
                faults += 1
                codec_faults += 1
                if policy.on_fault == "raise":
                    raise IntegrityError(
                        f"gate {gate_index} batch {batch}: codec decode fault "
                        "detected and policy forbids retry"
                    )
                attempt += 1
                if attempt >= policy.max_transfer_attempts:
                    raise FaultInjectionError(
                        f"gate {gate_index} batch {batch}: codec still "
                        f"failing after {policy.max_transfer_attempts} attempts"
                    )
                # Redecode after refetching the compressed batch.
                retry_seconds += (
                    codec_per_batch + stage.h2d + policy.backoff_seconds(attempt)
                )
        return retry_seconds, faults, codec_faults

    # -- dynamic streaming versions ---------------------------------------------

    def _execute_streaming(
        self,
        ops: list,
        n: int,
        version: VersionConfig,
        compression_ratio: float,
        result: TimedResult,
    ) -> None:
        machine = self.machine
        num_gpus = machine.num_gpus
        capacity = machine.gpu_capacity_bytes()
        total_capacity = machine.total_gpu_capacity_bytes()
        # Overlapped streaming halves each GPU's buffer; naive streaming
        # fills the whole device per batch.
        buffer_bytes = capacity // 2 if version.overlap else capacity
        plan = self.fault_plan
        policy = self.reliability_policy
        # Graceful degradation: repeated codec faults disable compression
        # for the remainder of the run.
        compression_on = version.compression
        codec_faults = 0
        tracker = InvolvementTracker(n)
        link_bw = machine.spec.link.bandwidth_per_direction
        latency = machine.spec.link.latency
        # The paper's design streams live chunks from host memory on every
        # gate (circular buffers, Fig. 5/6); only a state vector that fits
        # entirely in device memory stays resident.  The live_residency
        # ablation additionally caches the pruned live set while it fits.
        whole_state_resident = (AMP_BYTES << n) <= total_capacity
        resident_live_bytes = 0.0

        basis = (
            BasisTracker(n) if version.basis_tracking_pruning else None
        )
        for index, gate in enumerate(ops):
            if version.pruning and basis is not None:
                live_amps = basis.live_amplitudes_with(gate)
                basis.observe(gate)
                fixed_mask, _ = basis.fixed_masks()
                high_bits = (
                    ~fixed_mask & ((1 << n) - 1)
                ) >> self._effective_chunk_bits(n)
                trailing = (~high_bits & (high_bits + 1)).bit_length() - 1
                copy_runs = 1 << max(0, high_bits.bit_count() - trailing)
            elif version.pruning:
                live_amps = tracker.live_amplitudes_with(
                    gate, diagonal_aware=version.diagonal_aware_pruning
                )
                tracker.involve(
                    gate, diagonal_aware=version.diagonal_aware_pruning
                )
                # Live chunks are contiguous in host memory only while the
                # involved chunk-index bits form a low run; otherwise each
                # maximal run needs its own DMA, adding per-copy latency.
                high_bits = tracker.mask >> self._effective_chunk_bits(n)
                trailing = (~high_bits & (high_bits + 1)).bit_length() - 1
                copy_runs = 1 << max(0, high_bits.bit_count() - trailing)
            else:
                live_amps = 1 << n
                copy_runs = 1
            live_fraction = live_amps / (1 << n)
            live_bytes = AMP_BYTES * live_amps
            k = gate.num_qubits
            diagonal = gate.is_diagonal
            kernel_time = machine.gpu_compute_time(live_amps / num_gpus, k, diagonal)
            result.gpu_flops += machine.gate_flops(live_amps, k, diagonal)
            result.gpu_bytes_touched += 2 * AMP_BYTES * live_amps

            resident = whole_state_resident or (
                version.live_residency and live_bytes <= total_capacity
            )
            if resident:
                # Resident across GPUs; newly live chunks are zero-filled
                # on device (cudaMemset), so nothing moves.
                resident_live_bytes = live_bytes
                result.add(
                    GateTiming(
                        index=index, name=gate.name, seconds=kernel_time,
                        gpu_seconds=kernel_time, live_fraction=live_fraction,
                    )
                )
                continue

            if resident_live_bytes:
                # Transition out of the resident regime: from now on chunks
                # stream; the previously resident set joins the stream for
                # free (it is already on device for the first pass).
                resident_live_bytes = 0.0

            ratio = compression_ratio if compression_on else 1.0
            per_gpu_bytes = live_bytes / num_gpus
            batches = max(1, math.ceil(per_gpu_bytes / buffer_bytes))
            batch_bytes = per_gpu_bytes / batches
            stream_bytes = batch_bytes * ratio
            copies_per_batch = max(1.0, copy_runs / num_gpus / batches)
            codec_per_batch = (
                machine.codec_time(2 * batch_bytes) if compression_on else 0.0
            )
            slowdown = plan.link_degradation(index) if plan is not None else 1.0
            stage = StageTimes(
                h2d=stream_bytes / link_bw * slowdown + latency * copies_per_batch,
                compute=kernel_time / batches + codec_per_batch,
                d2h=stream_bytes / link_bw * slowdown + latency * copies_per_batch,
            )
            if version.overlap:
                seconds = double_buffered_roundtrip(batches, stage)
            else:
                seconds = serial_roundtrip(batches, stage)
            gate_faults = 1 if slowdown > 1.0 else 0
            retry_seconds = 0.0
            if plan is not None:
                retried, faulted, codec_faulted = self._charge_faults(
                    plan, policy, index, batches, stage, codec_per_batch,
                    compression_on,
                )
                retry_seconds = retried
                gate_faults += faulted
                codec_faults += codec_faulted
                if (
                    compression_on
                    and codec_faults >= policy.codec_fault_limit
                ):
                    compression_on = False
                    result.compression_disabled_at = index
            seconds += retry_seconds
            compute_busy = batches * stage.compute
            transfer_exposed = max(0.0, seconds - retry_seconds - compute_busy)
            codec_seconds = batches * codec_per_batch
            result.add(
                GateTiming(
                    index=index,
                    name=gate.name,
                    seconds=seconds,
                    gpu_seconds=kernel_time,
                    transfer_seconds=transfer_exposed,
                    codec_seconds=codec_seconds,
                    retry_seconds=retry_seconds,
                    bytes_h2d=stream_bytes * batches * num_gpus,
                    bytes_d2h=stream_bytes * batches * num_gpus,
                    live_fraction=live_fraction,
                    faults=gate_faults,
                )
            )

        if resident_live_bytes:
            # Terminal readout of the still-resident live set.
            final_time = machine.transfer_time(resident_live_bytes / num_gpus, 1)
            result.add(
                GateTiming(
                    index=len(ops), name="<readout>", seconds=final_time,
                    transfer_seconds=final_time, bytes_d2h=resident_live_bytes,
                )
            )
