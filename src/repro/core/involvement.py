"""Qubit-involvement tracking (paper Section IV-B).

Starting from ``|0...0>``, a qubit's state stays ``|0>`` until some gate
acts on it; while qubit ``k`` is uninvolved, every amplitude whose index has
bit ``k`` set is exactly zero.  Q-GPU tracks involvement as a bitmask
(``involvement`` in Algorithm 1): bit ``k`` is 1 once any executed gate has
touched qubit ``k``.  With ``p`` involved qubits only ``2^p`` amplitudes can
be non-zero - everything else is prunable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import SimulationError


def qubit_mask(qubits: tuple[int, ...]) -> int:
    """Bitmask with a 1 at each listed qubit position."""
    mask = 0
    for q in qubits:
        mask |= 1 << q
    return mask


@dataclass
class InvolvementTracker:
    """Mutable involvement bitmask over ``num_qubits`` qubits.

    Attributes:
        num_qubits: Register width.
        mask: Current involvement bits (bit ``k`` set once qubit ``k`` has
            been acted on).
    """

    num_qubits: int
    mask: int = 0

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise SimulationError("num_qubits must be positive")
        if self.mask >> self.num_qubits:
            raise SimulationError("involvement mask wider than the register")

    def involve(self, gate: Gate, diagonal_aware: bool = False) -> int:
        """Mark the gate's qubits involved; returns the updated mask.

        Args:
            gate: The gate being executed.
            diagonal_aware: Extension beyond the paper's Algorithm 1 - a
                diagonal gate multiplies amplitudes by phases and can never
                turn a zero amplitude non-zero, so it need not involve new
                qubits.  This keeps the zero-pruning sound while tracking a
                strictly smaller mask (dramatic for cp-heavy circuits like
                qft).
        """
        if qubit_mask(gate.qubits) >> self.num_qubits:
            raise SimulationError(f"gate {gate} exceeds register width")
        if diagonal_aware and gate.is_diagonal:
            return self.mask
        self.mask |= qubit_mask(gate.qubits)
        return self.mask

    def is_involved(self, qubit: int) -> bool:
        return bool(self.mask >> qubit & 1)

    @property
    def involved_count(self) -> int:
        """Number of involved qubits (``popcount`` of the mask)."""
        return self.mask.bit_count()

    @property
    def live_amplitudes(self) -> int:
        """Upper bound on non-zero amplitudes: ``2^involved_count``."""
        return 1 << self.involved_count

    def live_amplitudes_with(self, gate: Gate, diagonal_aware: bool = False) -> int:
        """Live amplitudes *after* additionally involving ``gate``'s qubits.

        This is the amplitude count a gate's update must touch: the union of
        source-live and destination-live index sets.  With
        ``diagonal_aware``, a diagonal gate touches only the currently live
        set (its uninvolved-qubit slices stay zero and are skipped).
        """
        if diagonal_aware and gate.is_diagonal:
            return 1 << self.mask.bit_count()
        return 1 << (self.mask | qubit_mask(gate.qubits)).bit_count()

    def dynamic_chunk_bits(self, max_chunk_bits: int) -> int:
        """Chunk size selection of Algorithm 1 (line 2).

        The chunk covers the contiguous run of involved low qubits (the
        "least non-zero bit" rule), so no chunk mixes live and guaranteed-
        zero amplitudes at the low end; capped at the configured maximum and
        at least 1.
        """
        trailing_ones = 0
        mask = self.mask
        while mask & 1 and trailing_ones < max_chunk_bits:
            trailing_ones += 1
            mask >>= 1
        return max(1, min(trailing_ones, max_chunk_bits, self.num_qubits))


def involvement_trace(circuit: QuantumCircuit) -> list[int]:
    """Involvement mask after each gate, in execution order (Fig. 9 data)."""
    tracker = InvolvementTracker(circuit.num_qubits)
    trace: list[int] = []
    for gate in circuit:
        tracker.involve(gate)
        trace.append(tracker.mask)
    return trace


def live_fraction_trace(circuit: QuantumCircuit) -> list[float]:
    """Per-gate live-amplitude fraction ``2^involved / 2^n`` along a circuit."""
    n = circuit.num_qubits
    return [
        2.0 ** (mask.bit_count() - n) for mask in involvement_trace(circuit)
    ]
