"""Explicit event schedules for the streaming disciplines.

The timed executor prices each gate with closed-form pipeline formulas
(:mod:`repro.hardware.pipeline`).  This module builds the *same* work as an
explicit task graph on the discrete-event engine, for two purposes:

* **cross-validation** - with ``drain_between_gates=True`` the event-engine
  makespan must equal the executor's sum of per-gate closed forms exactly
  (tested);
* **Fig. 6 reconstruction** - with ``drain_between_gates=False`` the
  schedule models continuous streaming across gates (the H2D engine starts
  prefetching the next gate's first batch while the current gate drains),
  quantifying how conservative the per-gate model is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.events import EventTimeline, TimelineResult
from repro.hardware.pipeline import StageTimes


@dataclass(frozen=True)
class GateStreamPlan:
    """Streaming work of one gate: uniform batches with stage times."""

    label: str
    num_batches: int
    stages: StageTimes


def build_stream_timeline(
    plans: list[GateStreamPlan],
    buffers: int = 2,
    overlap: bool = True,
    drain_between_gates: bool = True,
) -> EventTimeline:
    """Lay out a sequence of per-gate streaming pipelines as DES tasks.

    Args:
        plans: One entry per gate, in execution order.
        buffers: GPU buffer halves (2 for Q-GPU's two streams).
        overlap: Double-buffered streams; ``False`` reproduces the Naive
            discipline (each batch's H2D, kernel and D2H strictly
            serialise through a single virtual stream resource).
        drain_between_gates: Force gate ``g+1``'s first H2D to wait for
            gate ``g``'s last D2H (the executor's conservative model).
    """
    timeline = EventTimeline()
    previous_out: str | None = None  # last D2H task overall
    previous_in: str | None = None  # last H2D task overall (engine FIFO)
    previous_comp: str | None = None
    # Ring of recent D2H task names for buffer reuse across gate boundaries.
    out_ring: list[str] = []

    for plan in plans:
        for k in range(plan.num_batches):
            in_name = f"{plan.label}/in{k}"
            comp_name = f"{plan.label}/comp{k}"
            out_name = f"{plan.label}/out{k}"

            if not overlap:
                # Single stream: strictly after the previous batch's D2H.
                in_deps = [previous_out] if previous_out else []
            else:
                in_deps = [previous_in] if previous_in else []
                if drain_between_gates and k == 0 and previous_out:
                    in_deps.append(previous_out)
                # Buffer reuse: this batch's slot was freed by the D2H that
                # ran `buffers` batches ago (across gate boundaries when
                # draining is off).
                if not (drain_between_gates and k == 0):
                    if len(out_ring) >= buffers:
                        in_deps.append(out_ring[-buffers])
            timeline.add(in_name, "h2d", plan.stages.h2d, tuple(set(in_deps)))

            comp_deps = [in_name]
            if previous_comp:
                comp_deps.append(previous_comp)
            timeline.add(comp_name, "gpu", plan.stages.compute, tuple(comp_deps))

            out_deps = [comp_name]
            if previous_out:
                out_deps.append(previous_out)
            timeline.add(out_name, "d2h", plan.stages.d2h, tuple(out_deps))

            previous_in, previous_comp, previous_out = in_name, comp_name, out_name
            out_ring.append(out_name)
        if drain_between_gates:
            out_ring.clear()

    return timeline


def stream_makespan(
    plans: list[GateStreamPlan],
    buffers: int = 2,
    overlap: bool = True,
    drain_between_gates: bool = True,
) -> TimelineResult:
    """Convenience: build and run the schedule."""
    return build_stream_timeline(
        plans, buffers=buffers, overlap=overlap,
        drain_between_gates=drain_between_gates,
    ).run()
