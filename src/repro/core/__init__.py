"""Q-GPU core: involvement, pruning, reordering, versions, executor, facade."""

from repro.core.basis_tracking import BasisTracker, QubitState
from repro.core.detailed import DetailedExecutor, DetailedRun
from repro.core.executor import (
    DEFAULT_CHUNK_BITS,
    FusedOp,
    GateTiming,
    TimedExecutor,
    TimedResult,
)
from repro.core.planner import ExecutionPlan, PlanEntry, plan_execution
from repro.core.involvement import (
    InvolvementTracker,
    involvement_trace,
    live_fraction_trace,
    qubit_mask,
)
from repro.core.multigpu import GroupAssignment, assign_round_robin, per_gpu_amplitudes
from repro.core.pruning import (
    chunk_is_pruned,
    iter_live_chunks,
    live_amplitude_count,
    live_chunk_count,
)
from repro.core.reorder import reorder, reorder_forward_looking, reorder_greedy
from repro.core.simulator import FunctionalResult, QGpuSimulator, circuit_family
from repro.core.versions import (
    ALL_VERSIONS,
    BASELINE,
    NAIVE,
    OVERLAP,
    PRUNING,
    QGPU,
    REORDER,
    VERSIONS_BY_NAME,
    VersionConfig,
)

__all__ = [
    "ALL_VERSIONS",
    "BASELINE",
    "BasisTracker",
    "QubitState",
    "DEFAULT_CHUNK_BITS",
    "DetailedExecutor",
    "DetailedRun",
    "ExecutionPlan",
    "FunctionalResult",
    "FusedOp",
    "PlanEntry",
    "plan_execution",
    "GateTiming",
    "GroupAssignment",
    "InvolvementTracker",
    "NAIVE",
    "OVERLAP",
    "PRUNING",
    "QGPU",
    "QGpuSimulator",
    "REORDER",
    "TimedExecutor",
    "TimedResult",
    "VERSIONS_BY_NAME",
    "VersionConfig",
    "assign_round_robin",
    "chunk_is_pruned",
    "circuit_family",
    "involvement_trace",
    "iter_live_chunks",
    "live_amplitude_count",
    "live_chunk_count",
    "live_fraction_trace",
    "per_gpu_amplitudes",
    "qubit_mask",
    "reorder",
    "reorder_forward_looking",
    "reorder_greedy",
]
