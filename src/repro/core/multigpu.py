"""Multi-GPU chunk-group scheduling (paper Section V-E, Fig. 18).

Q-GPU's multi-GPU discipline: all state chunks live in host memory; for each
gate the chunk groups (pairs that must be co-resident, see
:func:`~repro.statevector.chunks.chunk_pair_groups`) are assigned to GPUs
round-robin, each GPU streams its groups over its own link, computes, and
copies results back.  Because every group is self-contained, no GPU-to-GPU
traffic is ever needed - the paper's observation that "cross GPU data
movement is limited and does not dominate".

The timed model of this discipline lives in the executor (every streaming
formula divides bytes and amplitudes by the GPU count); this module provides
the *assignment* itself plus validity checks, used by the functional tests
and the Fig. 18 walk-through example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.gates import Gate
from repro.errors import SchedulingError
from repro.statevector.chunks import chunk_pair_groups


@dataclass(frozen=True)
class GroupAssignment:
    """Assignment of one gate's chunk groups to GPUs.

    Attributes:
        gate: The gate being applied.
        groups: Chunk-index tuples, one per independent update group.
        owners: ``owners[i]`` is the GPU executing ``groups[i]``.
        num_gpus: Number of devices.
    """

    gate: Gate
    groups: tuple[tuple[int, ...], ...]
    owners: tuple[int, ...]
    num_gpus: int

    def groups_of(self, gpu: int) -> list[tuple[int, ...]]:
        """The chunk groups assigned to ``gpu``."""
        if not 0 <= gpu < self.num_gpus:
            raise SchedulingError(f"gpu {gpu} out of range")
        return [g for g, owner in zip(self.groups, self.owners) if owner == gpu]

    def chunks_of(self, gpu: int) -> list[int]:
        """All chunk indices ``gpu`` touches, in stream order."""
        return [index for group in self.groups_of(gpu) for index in group]

    def validate(self) -> None:
        """Check the invariants of a correct multi-GPU schedule.

        * every chunk is owned by exactly one GPU for this gate, and
        * paired chunks are co-resident (same owner).

        Raises:
            SchedulingError: On any violation.
        """
        seen: dict[int, int] = {}
        for group, owner in zip(self.groups, self.owners):
            for index in group:
                if index in seen:
                    raise SchedulingError(
                        f"chunk {index} assigned to GPUs {seen[index]} and {owner}"
                    )
                seen[index] = owner


def assign_round_robin(
    num_qubits: int, chunk_bits: int, gate: Gate, num_gpus: int
) -> GroupAssignment:
    """Round-robin assignment of a gate's chunk groups to ``num_gpus`` GPUs.

    Matches the paper's Fig. 18: with a 7-qubit circuit, a gate on ``q5``,
    chunk size ``2^4`` and two GPUs, groups 0 and 2 land on GPU 0 and groups
    1 and 3 on GPU 1.
    """
    if num_gpus < 1:
        raise SchedulingError("need at least one GPU")
    groups = tuple(chunk_pair_groups(num_qubits, chunk_bits, gate.qubits))
    owners = tuple(index % num_gpus for index in range(len(groups)))
    assignment = GroupAssignment(
        gate=gate, groups=groups, owners=owners, num_gpus=num_gpus
    )
    assignment.validate()
    return assignment


def per_gpu_amplitudes(assignment: GroupAssignment, chunk_bits: int) -> list[int]:
    """Amplitudes each GPU updates under ``assignment`` (load balance check)."""
    chunk_amps = 1 << chunk_bits
    return [
        len(assignment.chunks_of(gpu)) * chunk_amps
        for gpu in range(assignment.num_gpus)
    ]
