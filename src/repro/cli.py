"""Command-line interface.

::

    python -m repro simulate  --family bv --qubits 12 --shots 100
    python -m repro simulate  --qasm circuit.qasm --shots 1000
    python -m repro estimate  --family qft --qubits 34 --machine p100
    python -m repro experiment fig12 tab2
    python -m repro profile   --family qaoa
    python -m repro transpile --family gs --qubits 8

Subcommands:

* ``simulate`` - exact functional simulation with the Q-GPU pipeline
  (reordering + chunking + pruning), printing sampled counts;
* ``estimate`` - the performance model: per-version modelled times on a
  chosen machine;
* ``experiment`` - run registered paper reproductions by id;
* ``profile`` - measure a family's GFC compression profile;
* ``transpile`` - decompose/merge/cancel a circuit and print QASM
  (``--fingerprint`` prints the content hash instead);
* ``reliability`` - fault-injection demo: verify that recovery keeps the
  result bit-identical, that checkpoint/resume works mid-circuit, and
  report the modelled retry overhead;
* ``serve-batch`` - run a JSON manifest of jobs through the batch service
  (admission control, scheduling policy, worker pool, result cache,
  watchdog supervision and crash recovery);
* ``submit`` / ``status`` / ``cancel`` / ``compact`` - manage jobs in a
  JSONL journal across processes (see ``docs/service.md``);
* ``chaos`` - the service-level chaos soak: seeded kill-restart-recover
  cycles with injected worker crashes, stalls, torn journal writes and
  cache corruption, verifying exactly-once convergence (see
  ``docs/reliability.md``).

``simulate`` and ``submit`` take ``--backend`` (``auto`` engages the
circuit-aware backend planner, see ``docs/planner.md``) and
``--precision`` (``single``/``auto`` run the dense engine in complex64
with a norm-guarded complex128 fallback); ``plan`` prints the planner's
per-backend cost table.  ``simulate`` also understands ``--fault-plan``,
``--checkpoint-every``,
``--checkpoint`` and ``--resume`` (see ``docs/reliability.md``), and
``--trace FILE`` / ``--metrics FILE`` for observability exports; ``trace
summary|analyze|critical-path|drift FILE`` analyse any exported trace
(per-stage breakdown, rollups + bottlenecks, critical-path attribution
with overlap efficiency, and model-vs-measured drift - see
``docs/observability.md``).  ``serve-batch --http-port`` exposes a live
``/metrics`` / ``/healthz`` / ``/livez`` / ``/readyz`` / ``/jobs``
endpoint.  The global ``--log-level`` / ``--log-format`` flags control
structured logging.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.circuits.library import FAMILIES, get_circuit
from repro.circuits.passes import transpile
from repro.circuits.qasm import from_qasm, to_qasm
from repro.compression.profile import measure_profile
from repro.core.simulator import QGpuSimulator
from repro.core.versions import ALL_VERSIONS, VERSIONS_BY_NAME
from repro.errors import ReproError
from repro.hardware.specs import MACHINES
from repro.obs.log import configure_logging, get_logger
from repro.statevector.measure import sample_counts

_logger = get_logger("cli")


def _load_circuit(args: argparse.Namespace):
    if getattr(args, "qasm", None):
        return from_qasm(Path(args.qasm).read_text(), name=Path(args.qasm).stem)
    return get_circuit(args.family, args.qubits, seed=args.seed)


def _add_circuit_options(parser: argparse.ArgumentParser, qasm: bool = True) -> None:
    parser.add_argument("--family",
                        choices=sorted(FAMILIES) + ["grqc", "ghz", "w", "grover"],
                        help="circuit family (paper Table I + extensions)")
    parser.add_argument("--qubits", type=int, default=12, help="register width")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    if qasm:
        parser.add_argument("--qasm", help="OpenQASM 2.0 file instead of a family")


def _fault_plan(args: argparse.Namespace):
    from repro.reliability import FaultPlan

    spec = getattr(args, "fault_plan", None)
    return FaultPlan.from_spec(spec) if spec else None


def _workers_arg(value: str) -> int | str:
    """Parse a chunk-workers knob: 'auto' or a positive integer."""
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be 'auto' or a positive integer, got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be 'auto' or a positive integer, got {value!r}"
        )
    return workers


def _build_tracer(args: argparse.Namespace):
    """Build a Tracer when an observability flag asked for one, else None.

    ``--trace``/``--metrics`` enable span + counter collection;
    ``--profile`` additionally attaches a sampling profiler and
    ``--memory`` turns on per-span RSS/allocation telemetry (starting
    :mod:`tracemalloc` for the allocation deltas).
    """
    memory = bool(getattr(args, "memory", False))
    wants = (getattr(args, "trace", None) or getattr(args, "metrics", None)
             or getattr(args, "profile", None) or memory)
    if not wants:
        return None
    from repro.obs import LogicalClock, SamplingProfiler, Tracer, WallClock

    profiler = None
    if getattr(args, "profile", None):
        profiler = SamplingProfiler()
    if memory:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
    logical = getattr(args, "trace_clock", "wall") == "logical"
    return Tracer(
        clock=LogicalClock() if logical else WallClock(),
        memory=memory,
        profiler=profiler,
    )


def _start_profiler(tracer):
    """Start the tracer's attached profiler (if any); returns it."""
    profiler = getattr(tracer, "profiler", None) if tracer is not None else None
    if profiler is not None:
        profiler.start()
    return profiler


def _finish_profiler(profiler, args: argparse.Namespace) -> None:
    """Stop the profiler and write ``<base>.folded`` + ``<base>.svg``."""
    if profiler is None:
        return
    profiler.stop()
    folded, svg = profiler.write(args.profile)
    print(f"profile: {profiler.total_samples} stack sample(s) -> "
          f"{folded} + {svg}")
    shares = profiler.stage_shares()
    if shares:
        print("top profiled stages (share of samples):")
        for stage, share in list(shares.items())[:5]:
            print(f"  {stage:<12} {share:6.1%}")


def _write_observability(tracer, args: argparse.Namespace) -> None:
    """Write the trace and/or metrics files the flags requested."""
    if tracer is None:
        return
    from repro.obs import metrics_json, write_trace

    if getattr(args, "trace", None):
        written = write_trace(tracer, args.trace)
        _logger.info("trace written to %s (%d bytes)", args.trace, written,
                     extra={"path": args.trace, "bytes": written})
    if getattr(args, "metrics", None):
        Path(args.metrics).write_text(metrics_json(tracer))
        _logger.info("metrics written to %s", args.metrics,
                     extra={"path": args.metrics})


def _cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    circuit = _load_circuit(args)
    version = VERSIONS_BY_NAME[args.version]
    tracer = _build_tracer(args)
    simulator = QGpuSimulator(
        version=version, fault_plan=_fault_plan(args), workers=args.workers,
        tracer=tracer, backend=args.backend, precision=args.precision,
        fusion=args.fusion,
    )
    profiler = _start_profiler(tracer)
    result = simulator.run(
        circuit,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint,
        resume_from=args.resume,
    )
    _finish_profiler(profiler, args)
    print(f"{circuit.name}: {len(circuit)} gates, version {version.name}")
    if args.backend != "statevector" or args.precision != "double":
        line = f"backend: {result.backend}, precision: {result.precision}"
        if result.precision_fallback:
            line += (f" (fell back from single: norm deviation "
                     f"{result.norm_deviation:.3g})")
        if result.truncation_error:
            line += f", truncation error {result.truncation_error:.3g}"
        print(line)
    if result.backend == "statevector":
        print(f"pruned chunk updates: {result.pruned_fraction:.1%}")
        report = result.reliability
        if report is not None and (report.total_faults
                                   or report.checkpoints_written
                                   or report.resumed_from_gate is not None):
            print(report.summary())
        amplitudes = result.amplitudes
        if amplitudes.dtype != np.complex128:
            # The sampler checks normalisation at double precision; bring
            # the single-precision state back onto the unit sphere first.
            amplitudes = amplitudes.astype(np.complex128)
            amplitudes /= np.linalg.norm(amplitudes)
        counts = sample_counts(amplitudes, shots=args.shots, seed=args.seed)
    else:
        counts = result.state.sample_counts(args.shots, seed=args.seed)
    width = circuit.num_qubits
    for outcome, count in sorted(counts.items(), key=lambda kv: -kv[1])[: args.top]:
        print(f"  |{outcome:0{width}b}>  {count}")
    _write_observability(tracer, args)
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args)
    machine = MACHINES[args.machine]
    print(f"{circuit.name} on {machine.name}")
    print(f"{'version':<10} {'seconds':>12} {'transfer_s':>12} {'GB moved':>10}")
    for version in ALL_VERSIONS:
        timing = QGpuSimulator(machine=machine, version=version).estimate(circuit)
        moved = (timing.bytes_h2d + timing.bytes_d2h) / 1e9
        print(f"{version.name:<10} {timing.total_seconds:>12.2f} "
              f"{timing.transfer_seconds:>12.2f} {moved:>10.1f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiment_ids, run_experiment

    ids = args.ids or all_experiment_ids()
    for experiment_id in ids:
        print(run_experiment(experiment_id).render())
        print()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    profile = measure_profile(args.family, args.qubits, seed=args.seed)
    print(f"{args.family} @ {args.qubits} qubits")
    print(f"  mean GFC ratio : {profile.mean_ratio:.3f}")
    print(f"  final ratio    : {profile.final_ratio:.3f}")
    print(f"  snapshots      : {len(profile.snapshot_ratios)}")
    return 0


def _cmd_transpile(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args)
    tracer = _build_tracer(args)
    profiler = _start_profiler(tracer)
    lowered = transpile(circuit, tracer=tracer)
    _finish_profiler(profiler, args)
    _write_observability(tracer, args)
    if args.fingerprint:
        print(f"{circuit.fingerprint()}  {circuit.name}")
        print(f"{lowered.fingerprint()}  {lowered.name} (transpiled)")
        return 0
    print(f"// {circuit.name}: {len(circuit)} gates -> {len(lowered)} gates")
    print(to_qasm(lowered), end="")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import plan_execution
    from repro.errors import SimulationError
    from repro.planner import PlannerConfig, plan as plan_backend

    circuit = _load_circuit(args)
    machine = MACHINES[args.machine]
    config = PlannerConfig(
        machine=machine,
        backend=args.backend,
        precision=args.precision,
        max_bond=args.max_bond,
    )
    backend_plan = plan_backend(circuit, config)
    print(backend_plan.render())
    if backend_plan.backend == "statevector":
        # The dense engine is also priced per version by the DES model;
        # append that ranking so one command shows both decisions.
        try:
            print()
            print(plan_execution(circuit, machine=machine).render())
        except SimulationError:
            pass  # circuit outside the DES model's envelope
    return 0


#: ``trace`` subactions that read an existing trace file rather than
#: exporting a new one.
TRACE_ANALYSIS_ACTIONS = ("summary", "validate", "analyze", "critical-path", "drift")


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.action == "summary":
        return _trace_summary(args)
    if args.action == "validate":
        return _trace_validate(args)
    if args.action == "analyze":
        return _trace_analyze(args)
    if args.action == "critical-path":
        return _trace_critical_path(args)
    if args.action == "drift":
        return _trace_drift(args)
    if getattr(args, "devices", None):
        return _trace_export_fleet(args)

    from repro.core.schedule import GateStreamPlan, stream_makespan
    from repro.core.simulator import QGpuSimulator
    from repro.hardware.pipeline import StageTimes
    from repro.hardware.trace import write_chrome_trace

    circuit = _load_circuit(args)
    version = VERSIONS_BY_NAME[args.version]
    timing = QGpuSimulator(
        machine=MACHINES[args.machine], version=version
    ).estimate(circuit)
    # Rebuild the streaming schedule of the first few streamed gates as an
    # explicit event timeline for the trace viewer.
    plans = []
    for record in timing.per_gate:
        if record.bytes_h2d <= 0 or record.name == "<readout>":
            continue
        batches = 4
        plans.append(
            GateStreamPlan(
                f"{record.index}:{record.name}",
                batches,
                StageTimes(
                    record.bytes_h2d / batches / MACHINES[args.machine].link.bandwidth_per_direction,
                    record.gpu_seconds / batches,
                    record.bytes_d2h / batches / MACHINES[args.machine].link.bandwidth_per_direction,
                ),
            )
        )
        if len(plans) >= args.gates:
            break
    if not plans:
        print("nothing streams for this configuration; no trace written")
        return 0
    result = stream_makespan(plans, overlap=version.overlap)
    written = write_chrome_trace(result, args.output,
                                 process_name=f"{circuit.name}/{version.name}")
    print(f"wrote {written} bytes to {args.output} "
          f"(open in chrome://tracing or Perfetto)")
    return 0


def _trace_export_fleet(args: argparse.Namespace) -> int:
    """``trace export --devices N``: chunk-granular multi-device DES trace."""
    from repro.core.detailed import DetailedExecutor
    from repro.hardware.machine import Machine
    from repro.hardware.trace import write_chrome_trace

    circuit = _load_circuit(args)
    version = VERSIONS_BY_NAME[args.version]
    executor = DetailedExecutor(
        Machine(MACHINES[args.machine]),
        chunk_bits=args.chunk_bits,
        capacity_bytes=int(args.capacity_mib * (1 << 20)),
        devices=args.devices,
    )
    run = executor.execute(circuit, version)
    written = write_chrome_trace(
        run.timeline, args.output,
        process_name=f"{circuit.name}/{version.name}/x{run.devices}",
    )
    print(f"wrote {written} bytes to {args.output} "
          f"({run.devices} device(s), makespan {run.makespan:.6g} s, "
          f"{run.bytes_h2d + run.bytes_d2h:.6g} bytes transferred)")
    return 0


def _load_trace_spans(path: str):
    """Read a trace file into (events, spans, unit-label)."""
    from repro.obs import load_trace_events, spans_from_events, trace_clock_deterministic

    events = load_trace_events(path)
    spans = spans_from_events(events)
    unit = "ticks" if trace_clock_deterministic(events) else "us"
    return events, spans, unit


def _trace_summary(args: argparse.Namespace) -> int:
    from repro.obs import render_summary, summarize

    _, spans, unit = _load_trace_spans(args.file)
    if not spans:
        print(f"warning: {args.file} contains no spans; empty breakdown",
              file=sys.stderr)
    print(render_summary(summarize(spans), unit=unit))
    return 0


def _trace_validate(args: argparse.Namespace) -> int:
    from repro.obs import validate_trace_file

    checked = validate_trace_file(args.file)
    print(f"{args.file}: {checked} span(s) well-formed")
    return 0


def _trace_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.obs import analyze, render_analysis

    events, spans, unit = _load_trace_spans(args.file)
    analysis = analyze(spans, top=args.top)
    print(render_analysis(analysis, unit=unit))
    payload = analysis.to_dict()
    if getattr(args, "roofline", False):
        from repro.obs import (
            kernel_rooflines,
            render_kernel_rooflines,
            rooflines_payload,
            trace_counters_snapshot,
        )

        machine = MACHINES[args.machine]
        # The functional engines run on the host, and the DES model costs
        # the CPU version with the same number - so measured kernels are
        # placed against the machine's CPU effective bandwidth.
        bandwidth = machine.cpu.effective_bandwidth
        rows = kernel_rooflines(trace_counters_snapshot(events), bandwidth)
        print()
        print(f"kernel roofline vs {machine.name} "
              f"(CPU bound {bandwidth / 1e9:.1f} GB/s)")
        print(render_kernel_rooflines(rows))
        payload["roofline"] = {
            "machine": machine.name,
            "bound_bandwidth": bandwidth,
            "kernels": rooflines_payload(rows),
        }
    if getattr(args, "fleet", False):
        from repro.obs import fleet_analysis, render_fleet

        fleet = fleet_analysis(spans)
        print()
        print(render_fleet(fleet, unit=unit))
        payload["fleet"] = fleet.to_dict()
        if getattr(args, "prom", None):
            from repro.obs import (
                CounterRegistry,
                fleet_gauges,
                render_prometheus,
            )

            Path(args.prom).write_text(
                render_prometheus(CounterRegistry(), gauges=fleet_gauges(fleet))
            )
            print(f"fleet gauges written to {args.prom}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n"
        )
        print(f"analysis JSON written to {args.json}")
    return 0


def _trace_critical_path(args: argparse.Namespace) -> int:
    import json

    from repro.obs import critical_path, overlap_stats, render_critical_path

    _, spans, unit = _load_trace_spans(args.file)
    if not spans:
        print(f"warning: {args.file} contains no spans; empty critical path",
              file=sys.stderr)
        print("critical path: empty trace")
        return 0
    path = critical_path(spans)
    overlap = overlap_stats(spans)
    print(render_critical_path(path, unit=unit, limit=args.top))
    if overlap.efficiency is None:
        print("overlap efficiency: n/a (no transfer spans in trace)")
    else:
        print(f"overlap efficiency: {overlap.efficiency:.3f} "
              f"(hidden {overlap.hidden:.6g} of {overlap.transfer:.6g} "
              f"{unit} transfer)")
    if args.json:
        payload = {
            "critical_path": path.to_dict(),
            "overlap": {
                "transfer": overlap.transfer,
                "hidden": overlap.hidden,
                "exposed": overlap.exposed,
                "efficiency": overlap.efficiency,
            },
        }
        Path(args.json).write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n"
        )
        print(f"critical-path JSON written to {args.json}")
    return 0


def _trace_drift(args: argparse.Namespace) -> int:
    import json

    from repro.obs import drift_report, measured_breakdown, predicted_breakdown

    circuit = _load_circuit(args)
    version = VERSIONS_BY_NAME[args.version]
    machine = MACHINES[args.machine]
    _, spans, _ = _load_trace_spans(args.file)
    timing = QGpuSimulator(machine=machine, version=version).estimate(circuit)
    report = drift_report(
        predicted_breakdown(timing, machine),
        measured_breakdown(spans),
        tolerance=args.tolerance,
        context={
            "circuit": circuit.name,
            "version": version.name,
            "machine": machine.name,
            "trace": str(args.file),
        },
    )
    print(report.render())
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.to_dict(), sort_keys=True, indent=1) + "\n"
        )
        print(f"drift report written to {args.report}")
    return 0 if report.passed else 1


def _cmd_reliability(args: argparse.Namespace) -> int:
    import tempfile

    import numpy as np

    from repro.reliability import FaultPlan

    circuit = _load_circuit(args)
    version = VERSIONS_BY_NAME[args.version]
    machine = MACHINES[args.machine]
    plan = _fault_plan(args) or FaultPlan.from_spec(
        "seed=7,transfer=0.05,codec=0.02,degrade=0.05"
    )
    print(f"{circuit.name}: {len(circuit)} gates, version {version.name}")
    print(f"fault plan: {plan.describe()}")

    # 1. Recovery keeps the functional result bit-identical.
    clean = QGpuSimulator(version=version).run(circuit)
    faulty = QGpuSimulator(version=version, fault_plan=plan).run(circuit)
    identical = bool(
        np.array_equal(
            clean.amplitudes.view(np.uint64), faulty.amplitudes.view(np.uint64)
        )
    )
    print("\n-- fault injection + recovery --")
    print(faulty.reliability.summary())
    print(f"final state bit-identical to fault-free run: {identical}")

    # 2. A killed run resumes from its checkpoint bit-identically.
    kill_at = args.kill_at if args.kill_at is not None else max(2, len(circuit) // 2)
    every = args.checkpoint_every or max(1, kill_at // 2)
    print("\n-- checkpoint / resume --")
    with tempfile.TemporaryDirectory() as tempdir:
        path = Path(tempdir) / "run.qgck"
        sim = QGpuSimulator(version=version, fault_plan=plan)
        interrupted = sim.run(
            circuit, checkpoint_every=every, checkpoint_path=path, stop_after=kill_at
        )
        print(
            f"killed after gate {interrupted.interrupted_at} "
            f"({interrupted.reliability.checkpoints_written} checkpoint(s) on disk)"
        )
        resumed = sim.run(circuit, resume_from=path)
        resumed_ok = bool(
            np.array_equal(
                clean.amplitudes.view(np.uint64), resumed.amplitudes.view(np.uint64)
            )
        )
        print(f"resumed from gate {resumed.reliability.resumed_from_gate}; "
              f"final state bit-identical: {resumed_ok}")

    # 3. The timed model itemizes the reliability overhead.  Faults only
    # cost time when chunks actually stream, so model an out-of-core width
    # of the same family when the requested circuit is GPU-resident.
    timed_circuit = circuit
    if getattr(args, "family", None) and args.qubits < 30:
        timed_circuit = get_circuit(args.family, 30, seed=args.seed)
    print(f"\n-- modelled reliability overhead on {machine.name} "
          f"({timed_circuit.name}) --")
    clean_t = QGpuSimulator(machine=machine, version=version).estimate(timed_circuit)
    faulty_t = QGpuSimulator(
        machine=machine, version=version, fault_plan=plan
    ).estimate(timed_circuit)
    overhead = faulty_t.total_seconds - clean_t.total_seconds
    print(f"fault-free makespan : {clean_t.total_seconds:12.3f} s")
    print(f"faulty makespan     : {faulty_t.total_seconds:12.3f} s "
          f"(+{overhead:.3f} s, {faulty_t.faults_injected} faults)")
    print(f"  retry + backoff   : {faulty_t.retry_seconds:12.3f} s")
    if faulty_t.compression_disabled_at is not None:
        print(f"  compression disabled at gate {faulty_t.compression_disabled_at} "
              "(degradation; remainder streams uncompressed)")
    return 0 if identical and resumed_ok else 1


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.reliability.policy import (
        DEFAULT_POLICY,
        STRICT_POLICY,
        RecoveryPolicy,
    )
    from repro.service import (
        BatchService,
        JobStore,
        SupervisionConfig,
        load_manifest,
    )

    recovery = DEFAULT_POLICY
    if args.max_attempts is not None:
        recovery = RecoveryPolicy(max_transfer_attempts=args.max_attempts)
    sim_recovery = (
        STRICT_POLICY if args.sim_recovery == "strict" else DEFAULT_POLICY
    )
    supervision = SupervisionConfig(
        enabled=not args.no_supervision,
        stall_timeout_seconds=args.stall_timeout,
    )
    journal = (
        JobStore(args.journal, fsync=args.journal_fsync) if args.journal else None
    )
    tracer = None
    if args.trace:
        from repro.obs import LogicalClock, Tracer, WallClock

        # Single-worker service runs are deterministic end to end, so give
        # them the logical clock and the trace bytes reproduce exactly.
        tracer = Tracer(clock=LogicalClock() if args.workers == 1 else WallClock())
    service = BatchService(
        machine=MACHINES[args.machine],
        policy=args.policy,
        workers=args.workers,
        memory_budget_bytes=(
            args.memory_budget_gb * 1e9 if args.memory_budget_gb else None
        ),
        cache_budget_bytes=int(args.cache_mb * 1e6),
        recovery=recovery,
        sim_recovery=sim_recovery,
        sim_workers=args.sim_workers,
        seed=args.seed,
        journal=journal,
        tracer=tracer,
        supervision=supervision,
    )
    if args.manifest:
        for spec in load_manifest(args.manifest):
            service.submit(spec)
    if args.journal and not args.manifest:
        # Full crash recovery, not just PENDING adoption: repairs a torn
        # tail, re-queues RUNNING/ADMITTED jobs from a crashed serve, and
        # seeds the cache from journaled results.
        service.recover()
    if not service.jobs:
        print("no jobs to run (empty manifest/journal)")
        return 0
    http_server = None
    if args.http_port is not None:
        from repro.service import ServiceHTTPServer

        http_server = ServiceHTTPServer(
            service, port=args.http_port, host=args.http_host
        ).start()
        print(f"observability endpoint: {http_server.url} "
              "(/metrics /healthz /livez /readyz /jobs)")
    try:
        snapshot = service.run_until_complete()
        if http_server is not None and args.http_linger > 0:
            import time as _time

            _time.sleep(args.http_linger)
    finally:
        if http_server is not None:
            http_server.stop()
    counters = snapshot["counters"]
    cache = snapshot["cache"]
    admission = snapshot["admission"]
    print(f"policy={service.policy.name} workers={service.workers} "
          f"deterministic={service.deterministic}")
    print(f"jobs      : {counters.get('jobs_submitted', 0) + counters.get('jobs_adopted', 0)} "
          f"submitted, {counters.get('jobs_succeeded', 0)} succeeded, "
          f"{counters.get('jobs_failed', 0)} failed, "
          f"{counters.get('jobs_retried', 0)} retries")
    print(f"cache     : {cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['evictions']} evictions (hit rate {cache['hit_rate']:.1%})")
    print(f"admission : peak {admission['peak_bytes']:.0f} B of "
          f"{admission['budget_bytes']:.0f} B budget, "
          f"{admission['deferrals']} deferrals")
    if args.metrics:
        Path(args.metrics).write_text(service.metrics_json())
        print(f"metrics written to {args.metrics}")
    if tracer is not None:
        from repro.obs import write_trace

        written = write_trace(tracer, args.trace)
        _logger.info("trace written to %s (%d bytes)", args.trace, written,
                     extra={"path": args.trace, "bytes": written})
    return 1 if counters.get("jobs_failed", 0) else 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import BatchService, JobSpec

    service = BatchService(
        machine=MACHINES[args.machine], workers=1, journal=args.journal
    )
    qasm_text = Path(args.qasm).read_text() if getattr(args, "qasm", None) else None
    job = service.submit(JobSpec(
        family=None if qasm_text else args.family,
        qubits=args.qubits,
        seed=args.seed,
        qasm=qasm_text,
        version=args.version,
        shots=args.shots,
        priority=args.priority,
        deadline_seconds=args.deadline,
        backend=args.backend,
        precision=args.precision,
    ))
    print(f"submitted {job.job_id} ({job.spec.display_name}) "
          f"fingerprint={job.fingerprint[:16]}...")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import JobStore

    store = JobStore(args.journal)
    jobs = [store.get(args.job)] if args.job else list(store.load().values())
    if not jobs:
        print(f"no jobs in {args.journal}")
        return 0
    print(f"{'id':<8} {'name':<14} {'state':<10} {'attempts':>8} "
          f"{'cache':>5}  error")
    for job in sorted(jobs, key=lambda j: j.seq):
        hit = "hit" if job.cache_hit else ""
        print(f"{job.job_id:<8} {job.spec.display_name:<14} "
              f"{job.state.value:<10} {job.attempts:>8} {hit:>5}  "
              f"{job.error or ''}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service import JobState, JobStore

    store = JobStore(args.journal)
    job = store.get(args.job)
    if job.state is not JobState.PENDING:
        raise ServiceError(
            f"job {job.job_id} is {job.state.value}; only PENDING jobs "
            "can be cancelled from the journal"
        )
    job.transition(JobState.CANCELLED)
    store.record_transition(job, None)
    print(f"cancelled {job.job_id}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.service import JobStore

    store = JobStore(args.journal)
    before = store.path.stat().st_size if store.path.exists() else 0
    kept = store.compact()
    after = store.path.stat().st_size
    print(f"compacted {args.journal}: {kept} event(s) kept, "
          f"{before} -> {after} bytes")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.service.chaos import run_chaos_soak

    report = run_chaos_soak(
        args.manifest,
        args.journal,
        seed=args.seed,
        cycles=args.cycles,
        workers=args.workers,
        crash_rate=args.crash_rate,
        stall_rate=args.stall_rate,
        torn_rate=args.torn_rate,
        cache_corrupt_rate=args.cache_corrupt_rate,
        kill_after=args.kill_after,
        max_attempts=args.max_attempts,
        stall_timeout=args.stall_timeout,
        strict=False,  # report + exit code instead of a raise, for CI logs
    )
    states = ", ".join(f"{k}={v}" for k, v in report["states"].items())
    print(f"chaos soak: {report['jobs']} job(s), {report['crashes']} "
          f"crash(es), {report['torn_writes']} torn write(s), "
          f"{report['journal_appends']} journal appends")
    print(f"states    : {states or 'none'}")
    print(f"converged : {report['converged']}  "
          f"byte-identical: {report['byte_identical']}  "
          f"duplicate cache entries: {report['duplicate_cache_entries']}")
    counters = report["final_metrics"].get("counters", {})
    print(f"last cycle: {counters.get('watchdog.reaps', 0)} watchdog reap(s), "
          f"{counters.get('jobs_retried', 0)} retr(ies), "
          f"{counters.get('recovery.requeued', 0)} re-queued")
    for violation in report["violations"]:
        print(f"violation : {violation}", file=sys.stderr)
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, sort_keys=True, indent=1) + "\n"
        )
        print(f"report written to {args.report}")
    return 1 if report["violations"] else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.obs.ledger import (
        append_record,
        baseline_for,
        build_record,
        diff_records,
        load_ledger,
        render_diff,
        render_record,
    )

    if args.action == "append":
        record = build_record(args.root)
        append_record(args.ledger, record)
        print(f"appended to {args.ledger}:")
        print(render_record(record))
        if args.json:
            Path(args.json).write_text(
                json.dumps(record, sort_keys=True, indent=1) + "\n"
            )
        return 0
    records = load_ledger(args.ledger)
    if not records:
        print(f"{args.ledger} is empty", file=sys.stderr)
        return 1
    if args.action == "show":
        for record in records[-args.last:]:
            print(render_record(record))
            print()
        print(f"{len(records)} record(s) in {args.ledger}")
        return 0
    # diff: newest record vs its per-fingerprint baseline.
    latest = records[-1]
    baseline = baseline_for(records[:-1], latest)
    if baseline is None:
        print(f"no earlier record shares fingerprint "
              f"{latest.get('fingerprint_id')} and mode {latest.get('mode')}; "
              "nothing to compare (append another record on this machine)")
        return 0
    entries = diff_records(baseline, latest, tolerance=args.tolerance)
    print(f"comparing @{latest.get('timestamp')} "
          f"(git {latest.get('git_rev') or '?'}) against "
          f"@{baseline.get('timestamp')} (git {baseline.get('git_rev') or '?'})")
    print(render_diff(entries, tolerance=args.tolerance))
    regressions = [e for e in entries if e.regressed]
    if args.json:
        payload = {
            "baseline_timestamp": baseline.get("timestamp"),
            "latest_timestamp": latest.get("timestamp"),
            "fingerprint_id": latest.get("fingerprint_id"),
            "tolerance": args.tolerance,
            "regressions": [
                {
                    "bench": e.bench, "metric": e.metric,
                    "baseline": e.baseline, "latest": e.latest,
                    "ratio": e.ratio, "direction": e.direction,
                }
                for e in regressions
            ],
            "compared": len(entries),
        }
        Path(args.json).write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n"
        )
    return 1 if regressions else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Q-GPU reproduction toolkit"
    )
    parser.add_argument("--log-level", default="warning",
                        choices=["debug", "info", "warning", "error"],
                        help="stderr logging threshold")
    parser.add_argument("--log-format", default="text",
                        choices=["text", "json"],
                        help="log line format (json = one object per line)")
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_backend_options(cmd: argparse.ArgumentParser) -> None:
        from repro.planner import BACKEND_CHOICES, PRECISION_CHOICES

        cmd.add_argument("--backend", default="statevector",
                         choices=BACKEND_CHOICES,
                         help="execution engine ('auto' = circuit-aware "
                              "planner selection)")
        cmd.add_argument("--precision", default="double",
                         choices=PRECISION_CHOICES,
                         help="statevector dtype: double (complex128), "
                              "single (complex64, norm-guarded with a "
                              "double fallback), or auto")

    def _add_obs_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--trace", metavar="FILE",
                         help="write a Chrome trace of this run")
        cmd.add_argument("--trace-clock", default="wall",
                         choices=["wall", "logical"],
                         help="span timestamps: wall seconds or logical ticks "
                              "(logical + workers=1 is byte-reproducible)")
        cmd.add_argument("--metrics", metavar="FILE",
                         help="write the counter snapshot JSON here")
        cmd.add_argument("--profile", nargs="?", const="repro.profile",
                         metavar="BASE",
                         help="sample wall-clock stacks during the run and "
                              "write BASE.folded + BASE.svg (default base: "
                              "repro.profile)")
        cmd.add_argument("--memory", action="store_true",
                         help="record per-span peak-RSS and tracemalloc "
                              "allocation histograms")

    simulate = sub.add_parser("simulate", help="exact functional simulation")
    _add_circuit_options(simulate)
    simulate.add_argument("--shots", type=int, default=100)
    simulate.add_argument("--top", type=int, default=8,
                          help="print the most frequent outcomes")
    simulate.add_argument("--version", default="Q-GPU",
                          choices=sorted(VERSIONS_BY_NAME))
    simulate.add_argument("--fault-plan", metavar="SPEC",
                          help="inject faults, e.g. 'seed=7,transfer=0.05'")
    simulate.add_argument("--checkpoint-every", type=int, metavar="N",
                          help="checkpoint every N gates (needs --checkpoint)")
    simulate.add_argument("--checkpoint", metavar="PATH",
                          help="checkpoint file to write")
    simulate.add_argument("--resume", metavar="PATH",
                          help="resume from a checkpoint file")
    simulate.add_argument("--workers", type=_workers_arg, default="auto",
                          metavar="N|auto",
                          help="chunk-worker threads (1 = bit-exact serial)")
    simulate.add_argument("--fusion", default="on", choices=("on", "off"),
                          help="gate-fusion slabs (off = pre-fusion "
                               "byte-identical gate-by-gate path)")
    _add_backend_options(simulate)
    _add_obs_options(simulate)
    simulate.set_defaults(fn=_cmd_simulate)

    estimate = sub.add_parser("estimate", help="performance model")
    _add_circuit_options(estimate)
    estimate.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    estimate.set_defaults(fn=_cmd_estimate)

    experiment = sub.add_parser("experiment", help="run paper reproductions")
    experiment.add_argument("ids", nargs="*", help="experiment ids (default all)")
    experiment.set_defaults(fn=_cmd_experiment)

    profile = sub.add_parser("profile", help="GFC compression profile")
    profile.add_argument("--family", required=True, choices=sorted(FAMILIES))
    profile.add_argument("--qubits", type=int, default=14)
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(fn=_cmd_profile)

    transpile_cmd = sub.add_parser("transpile", help="lower and simplify")
    _add_circuit_options(transpile_cmd)
    transpile_cmd.add_argument("--fingerprint", action="store_true",
                               help="print the circuit content hash instead of QASM")
    _add_obs_options(transpile_cmd)
    transpile_cmd.set_defaults(fn=_cmd_transpile)

    plan = sub.add_parser("plan", help="rank engines/versions for a workload")
    _add_circuit_options(plan)
    plan.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    from repro.planner import BACKEND_CHOICES, PRECISION_CHOICES

    plan.add_argument("--backend", default="auto", choices=BACKEND_CHOICES,
                      help="force a backend instead of auto-selecting")
    plan.add_argument("--precision", default="auto",
                      choices=PRECISION_CHOICES,
                      help="precision knob fed to the planner")
    plan.add_argument("--max-bond", type=int, default=64,
                      help="MPS bond-dimension cap used for pricing")
    plan.set_defaults(fn=_cmd_plan)

    trace = sub.add_parser(
        "trace",
        help="export a chrome-trace of the stream schedule, or summarize/"
             "validate/analyze an exported trace file",
    )
    trace.add_argument("action", nargs="?", default="export",
                       choices=["export", *TRACE_ANALYSIS_ACTIONS],
                       help="export the modelled stream schedule (default), "
                            "or analyse an existing trace file")
    trace.add_argument("file", nargs="?", metavar="FILE",
                       help="trace file for the analysis actions")
    _add_circuit_options(trace)
    trace.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    trace.add_argument("--version", default="Q-GPU", choices=sorted(VERSIONS_BY_NAME))
    trace.add_argument("--gates", type=int, default=6,
                       help="streamed gates to include")
    trace.add_argument("--output", default="qgpu_trace.json")
    trace.add_argument("--devices", type=int, metavar="N",
                       help="'export': stream over N devices with the "
                            "chunk-granular DES executor (per-device lanes "
                            "and link-transfer spans) instead of the "
                            "closed-form stream schedule")
    trace.add_argument("--chunk-bits", type=int, default=14,
                       help="'export --devices': within-chunk qubits of "
                            "the scaled-down DES run")
    trace.add_argument("--capacity-mib", type=float, default=4.0,
                       help="'export --devices': per-device buffer "
                            "capacity (MiB)")
    trace.add_argument("--fleet", action="store_true",
                       help="'analyze': add the fleet report (per-device "
                            "busy/idle, link utilization, comm matrix)")
    trace.add_argument("--prom", metavar="FILE",
                       help="'analyze --fleet': write the fleet gauges in "
                            "Prometheus text format")
    trace.add_argument("--top", type=int, default=5,
                       help="bottlenecks ('analyze') or segments "
                            "('critical-path') to print")
    trace.add_argument("--json", metavar="FILE",
                       help="also write the analyze/critical-path result "
                            "as JSON")
    trace.add_argument("--roofline", action="store_true",
                       help="'analyze': also report per-kernel achieved "
                            "throughput vs the machine's CPU bandwidth "
                            "bound (from the trace's kernel counters)")
    trace.add_argument("--tolerance", type=float, default=0.15,
                       help="'drift': max per-stage share drift tolerated")
    trace.add_argument("--report", metavar="FILE",
                       help="'drift': write the JSON drift report here")
    trace.set_defaults(fn=_cmd_trace)

    reliability = sub.add_parser(
        "reliability",
        help="fault-injection demo: recovery, checkpoint/resume, overhead",
    )
    _add_circuit_options(reliability)
    reliability.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    reliability.add_argument("--version", default="Q-GPU",
                             choices=sorted(VERSIONS_BY_NAME))
    reliability.add_argument("--fault-plan", metavar="SPEC",
                             help="e.g. 'seed=7,transfer=0.05,codec=0.02'")
    reliability.add_argument("--kill-at", type=int, metavar="GATE",
                             help="simulated crash point (default: mid-circuit)")
    reliability.add_argument("--checkpoint-every", type=int, metavar="N",
                             help="checkpoint cadence for the kill/resume demo")
    reliability.set_defaults(fn=_cmd_reliability)

    serve = sub.add_parser(
        "serve-batch",
        help="run a manifest of jobs through the batch service",
    )
    serve.add_argument("--manifest", metavar="PATH",
                       help="JSON job manifest (list or {'jobs': [...]})")
    serve.add_argument("--journal", metavar="PATH",
                       help="JSONL job journal to record to; without "
                            "--manifest, recover and re-run its jobs")
    serve.add_argument("--journal-fsync", default="never",
                       choices=["never", "always"],
                       help="fsync every journal append (durable against "
                            "power loss, much slower)")
    serve.add_argument("--no-supervision", action="store_true",
                       help="disable the watchdog (no deadline or stall "
                            "reaping)")
    serve.add_argument("--stall-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="reap a worker whose heartbeat is older than "
                            "this")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads (1 = deterministic mode)")
    serve.add_argument("--policy", default="fifo",
                       choices=["fifo", "priority", "sjf"])
    serve.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    serve.add_argument("--memory-budget-gb", type=float, metavar="GB",
                       help="admission budget (default: machine host DRAM)")
    serve.add_argument("--cache-mb", type=float, default=16.0,
                       help="result-cache byte budget in MB")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-attempts", type=int, metavar="N",
                       help="job-level retry budget for failing jobs")
    serve.add_argument("--sim-recovery", default="default",
                       choices=["default", "strict"],
                       help="in-run fault policy (strict: faults raise)")
    serve.add_argument("--sim-workers", type=_workers_arg, default=1,
                       metavar="N|auto",
                       help="chunk-worker threads inside each simulation "
                            "(1 = bit-exact serial)")
    serve.add_argument("--metrics", metavar="PATH",
                       help="write the metrics JSON here")
    serve.add_argument("--trace", metavar="PATH",
                       help="write a Chrome trace of scheduling + simulation "
                            "(logical clock when --workers 1)")
    serve.add_argument("--http-port", type=int, metavar="PORT",
                       help="serve /metrics, /healthz and /jobs on this "
                            "port while running (0 = ephemeral)")
    serve.add_argument("--http-host", default="127.0.0.1", metavar="ADDR",
                       help="bind address for --http-port")
    serve.add_argument("--http-linger", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep the HTTP endpoint up this long after the "
                            "queue drains (for scrapes of the final state)")
    serve.set_defaults(fn=_cmd_serve_batch)

    submit = sub.add_parser("submit", help="append a job to a journal")
    _add_circuit_options(submit)
    submit.add_argument("--journal", required=True, metavar="PATH")
    submit.add_argument("--shots", type=int, default=0)
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--deadline", type=float, metavar="SECONDS",
                        help="wall-clock deadline; the watchdog kills the "
                             "job when an attempt exceeds it")
    submit.add_argument("--version", default="Q-GPU",
                        choices=sorted(VERSIONS_BY_NAME))
    submit.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    _add_backend_options(submit)
    submit.set_defaults(fn=_cmd_submit)

    status = sub.add_parser("status", help="show jobs recorded in a journal")
    status.add_argument("--journal", required=True, metavar="PATH")
    status.add_argument("--job", metavar="ID", help="show one job only")
    status.set_defaults(fn=_cmd_status)

    cancel = sub.add_parser("cancel", help="cancel a PENDING journal job")
    cancel.add_argument("--journal", required=True, metavar="PATH")
    cancel.add_argument("job", metavar="ID")
    cancel.set_defaults(fn=_cmd_cancel)

    compact = sub.add_parser(
        "compact",
        help="rewrite a journal as a minimal replay-equivalent snapshot",
    )
    compact.add_argument("--journal", required=True, metavar="PATH")
    compact.set_defaults(fn=_cmd_compact)

    chaos = sub.add_parser(
        "chaos",
        help="service-level chaos soak: seeded kill-restart-recover cycles",
    )
    chaos.add_argument("--manifest", required=True, metavar="PATH",
                       help="JSON job manifest to soak")
    chaos.add_argument("--journal", required=True, metavar="PATH",
                       help="journal file for the soak (must not exist)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="root of the crash schedule and fault plan")
    chaos.add_argument("--cycles", type=int, default=3,
                       help="crash cycles before the clean final cycle")
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--crash-rate", type=float, default=0.15,
                       help="P(worker crash) per job attempt")
    chaos.add_argument("--stall-rate", type=float, default=0.05,
                       help="P(worker stall) per job attempt")
    chaos.add_argument("--torn-rate", type=float, default=0.5,
                       help="P(the killing journal append is torn)")
    chaos.add_argument("--cache-corrupt-rate", type=float, default=0.1,
                       help="P(cache entry corrupted) per store")
    chaos.add_argument("--kill-after", type=int, metavar="N",
                       help="fixed appends-per-cycle until the kill "
                            "(default: seeded schedule)")
    chaos.add_argument("--max-attempts", type=int, default=20,
                       help="per-job retry budget during the soak")
    chaos.add_argument("--stall-timeout", type=float, default=0.25,
                       metavar="SECONDS",
                       help="watchdog stall reap threshold")
    chaos.add_argument("--report", metavar="FILE",
                       help="write the full soak report JSON here")
    chaos.set_defaults(fn=_cmd_chaos)

    bench = sub.add_parser(
        "bench",
        help="the perf ledger over the BENCH_*.json benchmark artifacts",
    )
    bench.add_argument("target", choices=["ledger"],
                       help="what to operate on (only 'ledger' so far)")
    bench.add_argument("action", choices=["append", "show", "diff"],
                       help="append the current BENCH files as a record, "
                            "show recent records, or diff the newest "
                            "record against its per-fingerprint baseline")
    bench.add_argument("--ledger", default="BENCH_LEDGER.jsonl",
                       metavar="FILE", help="ledger file (JSONL)")
    bench.add_argument("--root", default=".", metavar="DIR",
                       help="directory holding the BENCH_*.json files")
    bench.add_argument("--tolerance", type=float, default=0.05,
                       help="'diff': allowed fractional move in the worse "
                            "direction before a metric regresses")
    bench.add_argument("--last", type=int, default=1,
                       help="'show': records to print")
    bench.add_argument("--json", metavar="FILE",
                       help="also write the record/diff result as JSON")
    bench.set_defaults(fn=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, fmt=args.log_format)
    trace_analysis = (
        args.command == "trace" and args.action in TRACE_ANALYSIS_ACTIONS
    )
    # 'drift' is the one analysis action that also needs a circuit: it
    # re-runs the cost model for the same configuration as the trace.
    circuit_free = trace_analysis and args.action != "drift"
    if getattr(args, "family", None) is None and not getattr(args, "qasm", None) \
            and not circuit_free \
            and args.command in ("simulate", "estimate", "transpile", "plan",
                                 "trace", "reliability", "submit"):
        parser.error("provide --family or --qasm")
    if trace_analysis and not args.file:
        parser.error(f"trace {args.action} needs a trace FILE argument")
    if args.command == "serve-batch" and not (args.manifest or args.journal):
        parser.error("provide --manifest and/or --journal")
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
