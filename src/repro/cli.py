"""Command-line interface.

::

    python -m repro simulate  --family bv --qubits 12 --shots 100
    python -m repro simulate  --qasm circuit.qasm --shots 1000
    python -m repro estimate  --family qft --qubits 34 --machine p100
    python -m repro experiment fig12 tab2
    python -m repro profile   --family qaoa
    python -m repro transpile --family gs --qubits 8

Subcommands:

* ``simulate`` - exact functional simulation with the Q-GPU pipeline
  (reordering + chunking + pruning), printing sampled counts;
* ``estimate`` - the performance model: per-version modelled times on a
  chosen machine;
* ``experiment`` - run registered paper reproductions by id;
* ``profile`` - measure a family's GFC compression profile;
* ``transpile`` - decompose/merge/cancel a circuit and print QASM.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.circuits.library import FAMILIES, get_circuit
from repro.circuits.passes import transpile
from repro.circuits.qasm import from_qasm, to_qasm
from repro.compression.profile import measure_profile
from repro.core.simulator import QGpuSimulator
from repro.core.versions import ALL_VERSIONS, VERSIONS_BY_NAME
from repro.errors import ReproError
from repro.hardware.specs import MACHINES
from repro.statevector.measure import sample_counts


def _load_circuit(args: argparse.Namespace):
    if getattr(args, "qasm", None):
        return from_qasm(Path(args.qasm).read_text(), name=Path(args.qasm).stem)
    return get_circuit(args.family, args.qubits, seed=args.seed)


def _add_circuit_options(parser: argparse.ArgumentParser, qasm: bool = True) -> None:
    parser.add_argument("--family",
                        choices=sorted(FAMILIES) + ["grqc", "ghz", "w", "grover"],
                        help="circuit family (paper Table I + extensions)")
    parser.add_argument("--qubits", type=int, default=12, help="register width")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    if qasm:
        parser.add_argument("--qasm", help="OpenQASM 2.0 file instead of a family")


def _cmd_simulate(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args)
    version = VERSIONS_BY_NAME[args.version]
    result = QGpuSimulator(version=version).run(circuit)
    print(f"{circuit.name}: {len(circuit)} gates, version {version.name}")
    print(f"pruned chunk updates: {result.pruned_fraction:.1%}")
    counts = sample_counts(result.amplitudes, shots=args.shots, seed=args.seed)
    width = circuit.num_qubits
    for outcome, count in sorted(counts.items(), key=lambda kv: -kv[1])[: args.top]:
        print(f"  |{outcome:0{width}b}>  {count}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args)
    machine = MACHINES[args.machine]
    print(f"{circuit.name} on {machine.name}")
    print(f"{'version':<10} {'seconds':>12} {'transfer_s':>12} {'GB moved':>10}")
    for version in ALL_VERSIONS:
        timing = QGpuSimulator(machine=machine, version=version).estimate(circuit)
        moved = (timing.bytes_h2d + timing.bytes_d2h) / 1e9
        print(f"{version.name:<10} {timing.total_seconds:>12.2f} "
              f"{timing.transfer_seconds:>12.2f} {moved:>10.1f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiment_ids, run_experiment

    ids = args.ids or all_experiment_ids()
    for experiment_id in ids:
        print(run_experiment(experiment_id).render())
        print()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    profile = measure_profile(args.family, args.qubits, seed=args.seed)
    print(f"{args.family} @ {args.qubits} qubits")
    print(f"  mean GFC ratio : {profile.mean_ratio:.3f}")
    print(f"  final ratio    : {profile.final_ratio:.3f}")
    print(f"  snapshots      : {len(profile.snapshot_ratios)}")
    return 0


def _cmd_transpile(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args)
    lowered = transpile(circuit)
    print(f"// {circuit.name}: {len(circuit)} gates -> {len(lowered)} gates")
    print(to_qasm(lowered), end="")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import plan_execution

    circuit = _load_circuit(args)
    plan = plan_execution(circuit, machine=MACHINES[args.machine])
    print(plan.render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.schedule import GateStreamPlan, stream_makespan
    from repro.core.simulator import QGpuSimulator
    from repro.hardware.pipeline import StageTimes
    from repro.hardware.trace import write_chrome_trace

    circuit = _load_circuit(args)
    version = VERSIONS_BY_NAME[args.version]
    timing = QGpuSimulator(
        machine=MACHINES[args.machine], version=version
    ).estimate(circuit)
    # Rebuild the streaming schedule of the first few streamed gates as an
    # explicit event timeline for the trace viewer.
    plans = []
    for record in timing.per_gate:
        if record.bytes_h2d <= 0 or record.name == "<readout>":
            continue
        batches = 4
        plans.append(
            GateStreamPlan(
                f"{record.index}:{record.name}",
                batches,
                StageTimes(
                    record.bytes_h2d / batches / MACHINES[args.machine].link.bandwidth_per_direction,
                    record.gpu_seconds / batches,
                    record.bytes_d2h / batches / MACHINES[args.machine].link.bandwidth_per_direction,
                ),
            )
        )
        if len(plans) >= args.gates:
            break
    if not plans:
        print("nothing streams for this configuration; no trace written")
        return 0
    result = stream_makespan(plans, overlap=version.overlap)
    written = write_chrome_trace(result, args.output,
                                 process_name=f"{circuit.name}/{version.name}")
    print(f"wrote {written} bytes to {args.output} "
          f"(open in chrome://tracing or Perfetto)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Q-GPU reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="exact functional simulation")
    _add_circuit_options(simulate)
    simulate.add_argument("--shots", type=int, default=100)
    simulate.add_argument("--top", type=int, default=8,
                          help="print the most frequent outcomes")
    simulate.add_argument("--version", default="Q-GPU",
                          choices=sorted(VERSIONS_BY_NAME))
    simulate.set_defaults(fn=_cmd_simulate)

    estimate = sub.add_parser("estimate", help="performance model")
    _add_circuit_options(estimate)
    estimate.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    estimate.set_defaults(fn=_cmd_estimate)

    experiment = sub.add_parser("experiment", help="run paper reproductions")
    experiment.add_argument("ids", nargs="*", help="experiment ids (default all)")
    experiment.set_defaults(fn=_cmd_experiment)

    profile = sub.add_parser("profile", help="GFC compression profile")
    profile.add_argument("--family", required=True, choices=sorted(FAMILIES))
    profile.add_argument("--qubits", type=int, default=14)
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(fn=_cmd_profile)

    transpile_cmd = sub.add_parser("transpile", help="lower and simplify")
    _add_circuit_options(transpile_cmd)
    transpile_cmd.set_defaults(fn=_cmd_transpile)

    plan = sub.add_parser("plan", help="rank engines/versions for a workload")
    _add_circuit_options(plan)
    plan.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    plan.set_defaults(fn=_cmd_plan)

    trace = sub.add_parser("trace", help="export a chrome-trace of the stream schedule")
    _add_circuit_options(trace)
    trace.add_argument("--machine", default="p100", choices=sorted(MACHINES))
    trace.add_argument("--version", default="Q-GPU", choices=sorted(VERSIONS_BY_NAME))
    trace.add_argument("--gates", type=int, default=6,
                       help="streamed gates to include")
    trace.add_argument("--output", default="qgpu_trace.json")
    trace.set_defaults(fn=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "family", None) is None and not getattr(args, "qasm", None) \
            and args.command in ("simulate", "estimate", "transpile", "plan", "trace"):
        parser.error("provide --family or --qasm")
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
