"""GFC-style lossless floating-point compression (O'Neil & Burtscher).

The paper compresses non-zero state amplitudes on the GPU with the GFC
algorithm before every device-to-host copy (Section IV-D).  This module is a
bit-exact CPU implementation of the same coding scheme:

* the double stream is split into *segments* (one per GPU warp in the
  original; independent units here),
* each segment is processed in *micro-chunks* of 32 doubles (one per warp
  lane),
* lane ``j`` predicts its double from the same lane of the previous
  micro-chunk and takes the 64-bit integer difference (the first micro-chunk
  is predicted from zeros),
* each residual is coded as a 4-bit prefix - one sign bit plus a 3-bit count
  of leading zero *bytes* (capped at 7) - followed by the remaining
  significant bytes, little-endian.

The codec is lossless for every bit pattern, including NaN, infinities and
negative zero, because it operates on raw IEEE-754 words.  Compression
*ratio* (compressed/uncompressed) is the quantity the executor feeds into
the transfer model; the GPU codec's *throughput* is modelled separately in
:mod:`repro.hardware.machine`.

Stream layout::

    magic "GFC1" | uint64 word count | uint32 segment count
    per segment: uint64 word count, uint64 payload byte count,
                 nibble area (2 words/byte, zero-padded), payload bytes
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CompressionError

MAGIC = b"GFC1"
MICRO_CHUNK = 32
_HEADER = struct.Struct("<4sQI")
_SEGMENT_HEADER = struct.Struct("<QQ")

# Thresholds for "number of significant bytes": value v needs k bytes when
# 2^(8(k-1)) <= v < 2^(8k); v = 0 still emits one byte (GFC's zero code).
_BYTE_THRESHOLDS = np.array([1 << (8 * k) for k in range(1, 8)], dtype=np.uint64)


def _to_words(data: np.ndarray) -> np.ndarray:
    """View ``data`` as little-endian uint64 words without copying values."""
    array = np.ascontiguousarray(data)
    if array.dtype == np.complex128:
        array = array.view(np.float64)
    if array.dtype != np.float64:
        raise CompressionError(f"GFC compresses float64/complex128, got {array.dtype}")
    return array.view("<u8").ravel()


def _residuals(words: np.ndarray) -> np.ndarray:
    """Per-lane differences between consecutive micro-chunks (wrapping)."""
    padded_len = -(-len(words) // MICRO_CHUNK) * MICRO_CHUNK
    padded = np.zeros(padded_len, dtype=np.uint64)
    padded[: len(words)] = words
    lanes = padded.reshape(-1, MICRO_CHUNK)
    previous = np.zeros_like(lanes)
    previous[1:] = lanes[:-1]
    return (lanes - previous).ravel()  # uint64 wraps mod 2^64


def _integrate(residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`_residuals` via a wrapping per-lane cumulative sum."""
    lanes = residuals.reshape(-1, MICRO_CHUNK)
    return np.cumsum(lanes, axis=0, dtype=np.uint64).ravel()


def _encode_segment(words: np.ndarray) -> bytes:
    residuals = _residuals(words)
    # Signed-magnitude form: treat the wrapped difference as int64.
    negative = residuals >= np.uint64(1 << 63)
    magnitudes = np.where(
        negative, np.uint64(0) - residuals, residuals
    )  # two's complement negation, wrapping

    significant = (
        np.searchsorted(_BYTE_THRESHOLDS, magnitudes, side="right") + 1
    ).astype(np.int64)

    prefixes = (negative.astype(np.uint8) << 3) | (8 - significant).astype(np.uint8)
    if len(prefixes) % 2:
        prefixes = np.append(prefixes, np.uint8(0))
    nibble_area = (prefixes[0::2] | (prefixes[1::2] << 4)).tobytes()

    raw = magnitudes.astype("<u8").view(np.uint8).reshape(-1, 8)
    keep = np.arange(8)[None, :] < significant[:, None]
    payload = raw[keep].tobytes()

    return (
        _SEGMENT_HEADER.pack(len(words), len(payload)) + nibble_area + payload
    )


def _decode_segment(buffer: memoryview, offset: int) -> tuple[np.ndarray, int]:
    if offset + _SEGMENT_HEADER.size > len(buffer):
        raise CompressionError("truncated segment header")
    word_count, payload_bytes = _SEGMENT_HEADER.unpack_from(buffer, offset)
    offset += _SEGMENT_HEADER.size

    padded_words = -(-word_count // MICRO_CHUNK) * MICRO_CHUNK
    nibble_bytes = -(-padded_words // 2)
    if offset + nibble_bytes + payload_bytes > len(buffer):
        raise CompressionError("truncated segment body")

    packed = np.frombuffer(buffer, dtype=np.uint8, count=nibble_bytes, offset=offset)
    offset += nibble_bytes
    prefixes = np.empty(nibble_bytes * 2, dtype=np.uint8)
    prefixes[0::2] = packed & 0x0F
    prefixes[1::2] = packed >> 4
    prefixes = prefixes[:padded_words]

    negative = (prefixes >> 3).astype(bool)
    significant = (8 - (prefixes & 0x07)).astype(np.int64)

    payload = np.frombuffer(buffer, dtype=np.uint8, count=payload_bytes, offset=offset)
    offset += payload_bytes
    if int(significant.sum()) != payload_bytes:
        raise CompressionError("segment payload size mismatch")

    raw = np.zeros((padded_words, 8), dtype=np.uint8)
    keep = np.arange(8)[None, :] < significant[:, None]
    raw[keep] = payload
    magnitudes = raw.view("<u8").ravel()

    residuals = np.where(negative, np.uint64(0) - magnitudes, magnitudes)
    words = _integrate(residuals)[:word_count]
    return words, offset


def compress(data: np.ndarray, num_segments: int = 1) -> bytes:
    """Compress a float64/complex128 array into a GFC stream.

    Args:
        data: Array to compress (flattened in C order).
        num_segments: Independent segments; on the GPU each is one warp's
            work unit, so more segments mean more codec parallelism (and a
            marginally worse ratio, since each restarts its predictor).

    Returns:
        The compressed byte stream (see module docstring for layout).
    """
    if num_segments < 1:
        raise CompressionError("num_segments must be >= 1")
    words = _to_words(data)
    num_segments = min(num_segments, max(1, len(words)))
    bounds = np.linspace(0, len(words), num_segments + 1).astype(np.int64)
    # Align interior boundaries to micro-chunk multiples so every segment's
    # lane structure is self-contained.
    bounds[1:-1] = (bounds[1:-1] // MICRO_CHUNK) * MICRO_CHUNK
    parts = [_HEADER.pack(MAGIC, len(words), num_segments)]
    for s in range(num_segments):
        parts.append(_encode_segment(words[bounds[s] : bounds[s + 1]]))
    return b"".join(parts)


def decompress(stream: bytes) -> np.ndarray:
    """Decompress a GFC stream back into the exact original float64 array.

    Complex inputs round-trip as ``result.view(np.complex128)``.
    """
    buffer = memoryview(stream)
    if len(buffer) < _HEADER.size:
        raise CompressionError("stream too short for header")
    magic, word_count, num_segments = _HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise CompressionError(f"bad magic {magic!r}")
    offset = _HEADER.size
    segments: list[np.ndarray] = []
    for _ in range(num_segments):
        words, offset = _decode_segment(buffer, offset)
        segments.append(words)
    if offset != len(buffer):
        raise CompressionError("trailing bytes after final segment")
    words = np.concatenate(segments) if segments else np.empty(0, dtype=np.uint64)
    if len(words) != word_count:
        raise CompressionError(
            f"stream promised {word_count} words, decoded {len(words)}"
        )
    return words.astype("<u8").view(np.float64)


def verify_stream(stream: bytes) -> tuple[int, int]:
    """Cheap structural validation of a GFC stream without decoding it.

    Walks the header and every segment header, checking that the declared
    lengths are internally consistent and the stream is exactly consumed.
    Used by integrity guards (checkpoint loading, transfer receive) to
    fail fast on truncated or garbled payloads before paying for a full
    decode.

    Returns:
        ``(word_count, num_segments)`` from the stream header.

    Raises:
        CompressionError: Any structural inconsistency.
    """
    buffer = memoryview(stream)
    if len(buffer) < _HEADER.size:
        raise CompressionError("stream too short for header")
    magic, word_count, num_segments = _HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise CompressionError(f"bad magic {magic!r}")
    offset = _HEADER.size
    total_words = 0
    for _ in range(num_segments):
        if offset + _SEGMENT_HEADER.size > len(buffer):
            raise CompressionError("truncated segment header")
        segment_words, payload_bytes = _SEGMENT_HEADER.unpack_from(buffer, offset)
        offset += _SEGMENT_HEADER.size
        padded_words = -(-segment_words // MICRO_CHUNK) * MICRO_CHUNK
        nibble_bytes = -(-padded_words // 2)
        if offset + nibble_bytes + payload_bytes > len(buffer):
            raise CompressionError("truncated segment body")
        offset += nibble_bytes + payload_bytes
        total_words += segment_words
    if offset != len(buffer):
        raise CompressionError("trailing bytes after final segment")
    if total_words != word_count:
        raise CompressionError(
            f"stream promised {word_count} words, segments hold {total_words}"
        )
    return word_count, num_segments


def compression_ratio(data: np.ndarray, num_segments: int = 1) -> float:
    """``compressed bytes / uncompressed bytes`` for ``data`` (header-free).

    Subtracts the fixed stream/segment headers so the ratio reflects the
    coding itself, matching how per-chunk ratios drive the transfer model.
    """
    words = _to_words(data)
    if len(words) == 0:
        return 1.0
    stream = compress(data, num_segments=num_segments)
    overhead = _HEADER.size + num_segments * _SEGMENT_HEADER.size
    return (len(stream) - overhead) / (8 * len(words))
