"""Measured per-circuit compression profiles.

At 30+ qubits the state vector cannot be materialised, so the timed executor
cannot compress real data on the fly.  Instead, the compression *ratio* of
each benchmark family is measured for real at a tractable width by running
the functional simulator and GFC-compressing state snapshots along the
circuit (see DESIGN.md, "Substitutions").  The measured ratio is a property
of the family's amplitude statistics (residual concentration), which is
size-stable for these structured circuits, so the executor applies the
per-family figure to large-width runs.

Profiles are cached per ``(family, width, seed)`` within the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.circuits.library import get_circuit
from repro.compression.gfc import compression_ratio
from repro.core.involvement import InvolvementTracker
from repro.errors import CircuitError
from repro.statevector.state import StateVector


def live_region(amplitudes: np.ndarray, involvement: int) -> np.ndarray:
    """Gather the amplitudes that can be non-zero under ``involvement``.

    These are the amplitudes whose index bits are a subset of the
    involvement mask - exactly the data Q-GPU streams (and therefore
    compresses); everything else is pruned, not compressed, so it must not
    bias compressibility measurements.
    """
    positions = [p for p in range(int(amplitudes.size).bit_length()) if involvement >> p & 1]
    compact = np.arange(1 << len(positions), dtype=np.int64)
    indices = np.zeros_like(compact)
    for rank, position in enumerate(positions):
        indices |= ((compact >> rank) & 1) << position
    return amplitudes[indices]

#: Width used for profile measurement: 2^14 amplitudes keeps a full profile
#: run under a second while exercising the real codec on real amplitudes.
PROFILE_QUBITS = 14
#: Snapshots taken along the circuit (evenly spaced, always incl. the end).
#: Dense sampling matters: compressibility varies sharply between a
#: circuit's diagonal stretches (phase states, compressible) and its mixing
#: layers (scrambled, incompressible).
PROFILE_SAMPLES = 48


@dataclass(frozen=True)
class CompressionProfile:
    """Measured compressibility of one circuit family.

    Attributes:
        family: Benchmark family name.
        num_qubits: Width the measurement ran at.
        mean_ratio: Average compressed/uncompressed byte ratio across
            snapshots - what the executor multiplies transfer bytes by.
        final_ratio: Ratio of the terminal state.
        snapshot_ratios: Per-snapshot ratios, in circuit order.
    """

    family: str
    num_qubits: int
    mean_ratio: float
    final_ratio: float
    snapshot_ratios: tuple[float, ...]


def measure_profile(
    family: str,
    num_qubits: int = PROFILE_QUBITS,
    samples: int = PROFILE_SAMPLES,
    seed: int = 0,
    num_segments: int = 8,
) -> CompressionProfile:
    """Measure a family's compression profile by simulating and compressing.

    Snapshots are taken after evenly spaced gates; the first snapshot is
    skipped past the trivial all-zero opening (where pruning, not
    compression, is the active optimization).
    """
    circuit = get_circuit(family, num_qubits, seed=seed)
    state = StateVector(num_qubits)
    tracker = InvolvementTracker(num_qubits)
    total = len(circuit)
    sample_points = sorted(
        {min(total, max(1, round(total * (k + 1) / samples))) for k in range(samples)}
    )
    ratios: list[float] = []
    next_sample = 0
    for index, gate in enumerate(circuit, start=1):
        state.apply(gate)
        tracker.involve(gate)
        if next_sample < len(sample_points) and index == sample_points[next_sample]:
            next_sample += 1
            live = live_region(state.amplitudes, tracker.mask)
            if live.size < 128:
                continue  # pruning regime: nothing worth compressing yet
            ratios.append(compression_ratio(live, num_segments=num_segments))
    if not ratios:
        # Every snapshot sat in the pruning regime; compression never runs.
        ratios = [1.0]
    return CompressionProfile(
        family=family,
        num_qubits=num_qubits,
        mean_ratio=float(np.mean(ratios)),
        final_ratio=float(ratios[-1]),
        snapshot_ratios=tuple(ratios),
    )


@lru_cache(maxsize=64)
def get_profile(family: str, num_qubits: int = PROFILE_QUBITS, seed: int = 0) -> CompressionProfile:
    """Cached :func:`measure_profile`."""
    return measure_profile(family, num_qubits=num_qubits, seed=seed)


def family_ratio(family: str) -> float:
    """The mean compression ratio the executor uses for ``family``.

    Unknown families (e.g. ad-hoc user circuits) conservatively return 1.0
    (incompressible), so compression never fabricates a speedup.  A mean
    above 1.0 (coding overhead on incompressible data) is clamped: the real
    runtime would ship such chunks uncompressed.
    """
    try:
        return min(1.0, get_profile(family).mean_ratio)
    except CircuitError:
        return 1.0
