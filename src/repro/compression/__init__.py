"""GFC lossless amplitude compression and compressibility analysis."""

from repro.compression.gfc import (
    compress,
    compression_ratio,
    decompress,
    verify_stream,
)
from repro.compression.profile import (
    CompressionProfile,
    family_ratio,
    get_profile,
    measure_profile,
)
from repro.compression.residual import (
    ResidualStats,
    consecutive_residuals,
    residual_histogram,
    residual_stats,
)

__all__ = [
    "CompressionProfile",
    "ResidualStats",
    "compress",
    "compression_ratio",
    "consecutive_residuals",
    "decompress",
    "family_ratio",
    "get_profile",
    "measure_profile",
    "residual_histogram",
    "residual_stats",
    "verify_stream",
]
