"""Residual statistics of state amplitudes (paper Fig. 10).

The compressibility argument in Section IV-D rests on *spatial similarity*:
consecutive non-zero amplitudes in a state vector tend to have close values,
so the residuals from subtracting consecutive amplitudes concentrate near
zero.  These helpers compute exactly that distribution so the Fig. 10 bench
can contrast a compressible circuit (qaoa) with an incompressible one (iqp).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError


def consecutive_residuals(amplitudes: np.ndarray) -> np.ndarray:
    """Component-wise residuals between consecutive amplitudes.

    "Subtracting the consecutive state amplitudes" (paper Fig. 10) is a
    complex difference ``a[i] - a[i-1]``; the returned array interleaves its
    real and imaginary components, matching how GFC sees the stream (like
    components compared with like - real predicted from real, imaginary
    from imaginary).
    """
    doubles = np.ascontiguousarray(amplitudes)
    if doubles.dtype == np.complex128:
        doubles = doubles.view(np.float64)
    if doubles.dtype != np.float64:
        raise CompressionError(f"expected float64/complex128, got {doubles.dtype}")
    if doubles.size < 4:
        return np.zeros(0, dtype=np.float64)
    components = doubles.reshape(-1, 2)  # rows: (real, imag) per amplitude
    return np.diff(components, axis=0).ravel()


@dataclass(frozen=True)
class ResidualStats:
    """Summary of a residual distribution.

    Attributes:
        near_zero_fraction: Fraction of residuals with ``|r| < tolerance``.
        mean_abs: Mean absolute residual.
        p95_abs: 95th percentile of absolute residuals.
        tolerance: The near-zero threshold used.
    """

    near_zero_fraction: float
    mean_abs: float
    p95_abs: float
    tolerance: float


def residual_stats(amplitudes: np.ndarray, tolerance: float = 1e-6) -> ResidualStats:
    """Summarise the consecutive-residual distribution of a state vector."""
    residuals = np.abs(consecutive_residuals(amplitudes))
    if residuals.size == 0:
        return ResidualStats(1.0, 0.0, 0.0, tolerance)
    return ResidualStats(
        near_zero_fraction=float(np.mean(residuals < tolerance)),
        mean_abs=float(np.mean(residuals)),
        p95_abs=float(np.percentile(residuals, 95)),
        tolerance=tolerance,
    )


def residual_histogram(
    amplitudes: np.ndarray, bins: int = 64, value_range: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of signed residuals, for rendering Fig. 10-style plots.

    Returns ``(counts, bin_edges)`` like :func:`numpy.histogram`.
    """
    residuals = consecutive_residuals(amplitudes)
    if value_range is None:
        spread = float(np.max(np.abs(residuals))) if residuals.size else 1.0
        value_range = spread or 1.0
    return np.histogram(residuals, bins=bins, range=(-value_range, value_range))
