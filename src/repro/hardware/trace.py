"""Chrome-trace export of event timelines.

Converts a :class:`~repro.hardware.events.TimelineResult` into the Trace
Event Format consumed by ``chrome://tracing`` / Perfetto, so the Fig. 6
overlap structure can be inspected interactively.  Durations are scaled to
microseconds (the format's unit); each resource becomes a named "thread".

Multi-device timelines (resources namespaced ``gpu{d}:h2d``) keep one lane
per device engine, the thread metadata carries the owning device, and each
task's ``meta`` annotations (device, link id, transfer bytes) land in the
event ``args`` - which is what :mod:`repro.obs.fleet` reads back to build
the communication matrix and per-link utilization.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.hardware.events import TimelineResult


def _device_of(resource: str) -> str | None:
    """Device prefix of a namespaced resource (``gpu1:h2d`` -> ``gpu1``)."""
    prefix, sep, _ = resource.partition(":")
    if sep and not prefix.startswith("__"):
        return prefix
    return None


def to_chrome_trace(
    result: TimelineResult,
    process_name: str = "q-gpu",
    time_scale: float = 1e6,
) -> list[dict]:
    """Build the list of Trace Event objects for ``result``.

    Args:
        result: A completed event-engine run.
        process_name: Chrome-trace process label.
        time_scale: Multiplier from model seconds to trace microseconds
            (the default renders one model second as one trace second).
    """
    resources = sorted({r.task.resource for r in result.records.values()})
    tids = {resource: index + 1 for index, resource in enumerate(resources)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for resource, tid in tids.items():
        args: dict = {"name": resource}
        device = _device_of(resource)
        if device is not None:
            args["device"] = device
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    # Ties on start time are broken by lane then name: the engine's record
    # order varies with set-iteration order across processes, and the
    # byte-identical-export guarantee must not depend on it.
    for record in sorted(
        result.records.values(),
        key=lambda r: (r.start, tids[r.task.resource], r.task.name),
    ):
        event = {
            "name": record.task.name,
            "cat": record.task.resource,
            "ph": "X",
            "pid": 1,
            "tid": tids[record.task.resource],
            "ts": record.start * time_scale,
            "dur": record.task.duration * time_scale,
        }
        args = dict(record.task.meta) if record.task.meta else {}
        device = _device_of(record.task.resource)
        if device is not None:
            args.setdefault("device", device)
        if args:
            event["args"] = args
        events.append(event)
    return events


def write_chrome_trace(
    result: TimelineResult, path: str | Path, process_name: str = "q-gpu"
) -> int:
    """Write the trace JSON; returns bytes written."""
    payload = json.dumps(
        {"traceEvents": to_chrome_trace(result, process_name)}, indent=None
    )
    Path(path).write_text(payload)
    return len(payload)
