"""Closed-form timing of the chunk-streaming pipelines.

Each Q-GPU execution version moves batches of chunks through up to three
engines: the H2D copy stream, the GPU compute engine, and the D2H copy
stream.  For uniform batches the makespan of each discipline has an exact
O(batches) recurrence; these functions are validated against the
discrete-event engine (:mod:`repro.hardware.events`) in the test suite and
used by the executor because they are orders of magnitude cheaper than
per-chunk event simulation at 34 qubits (8192 chunks/gate x ~1800 gates).

Disciplines
-----------

* :func:`serial_roundtrip` - the *Naive* version (Section III-D): one CUDA
  stream, so H2D, kernel and D2H of consecutive batches strictly serialise.
* :func:`double_buffered_roundtrip` - the *Overlap* version (Section IV-A):
  two streams over two memory halves; batch ``k+2``'s H2D must wait until
  batch ``k`` has been copied out (its buffer half is reused).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError


@dataclass(frozen=True)
class StageTimes:
    """Per-batch stage durations of a uniform streaming pipeline."""

    h2d: float
    compute: float
    d2h: float

    def __post_init__(self) -> None:
        if min(self.h2d, self.compute, self.d2h) < 0:
            raise SchedulingError("stage times must be non-negative")


def serial_roundtrip(num_batches: int, stages: StageTimes) -> float:
    """Makespan when every stage of every batch strictly serialises.

    This is the single-stream Naive discipline: the GPU cannot receive batch
    ``k+1`` until batch ``k`` has been copied back.
    """
    if num_batches < 0:
        raise SchedulingError("num_batches must be non-negative")
    return num_batches * (stages.h2d + stages.compute + stages.d2h)


def double_buffered_roundtrip(
    num_batches: int, stages: StageTimes, buffers: int = 2
) -> float:
    """Makespan of the proactive-transfer discipline (Fig. 6 (iii)).

    Engines H2D, COMPUTE and D2H each process batches FIFO; batch ``k``
    computes after its H2D, copies out after its compute, and batch ``k``'s
    H2D additionally waits for batch ``k - buffers``'s D2H (buffer reuse in
    the circular double-buffer).

    Args:
        num_batches: Uniform batches streamed through the pipeline.
        stages: Per-batch stage durations.
        buffers: Number of buffer halves (2 for Q-GPU's two streams).
    """
    if num_batches < 0:
        raise SchedulingError("num_batches must be non-negative")
    if buffers < 1:
        raise SchedulingError("need at least one buffer")
    finish_in = [0.0] * num_batches
    finish_comp = [0.0] * num_batches
    finish_out = [0.0] * num_batches
    for k in range(num_batches):
        in_ready = finish_in[k - 1] if k >= 1 else 0.0
        if k >= buffers:
            in_ready = max(in_ready, finish_out[k - buffers])
        finish_in[k] = in_ready + stages.h2d
        finish_comp[k] = max(finish_in[k], finish_comp[k - 1] if k else 0.0) + stages.compute
        finish_out[k] = max(finish_comp[k], finish_out[k - 1] if k else 0.0) + stages.d2h
    return finish_out[-1] if num_batches else 0.0


def pipeline_transfer_exposure(num_batches: int, stages: StageTimes, buffers: int = 2) -> float:
    """Seconds of the double-buffered makespan attributable to transfers.

    Defined as makespan minus the GPU compute engine's busy time - i.e. the
    time the GPU compute engine is stalled on data movement.  Used for the
    Fig. 13 data-transfer-time accounting.
    """
    makespan = double_buffered_roundtrip(num_batches, stages, buffers)
    return max(0.0, makespan - num_batches * stages.compute)
