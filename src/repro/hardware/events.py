"""Discrete-event engine for transfer/compute schedules.

A schedule is a set of :class:`Task` objects, each bound to one *resource*
(a CUDA stream direction, a GPU's compute engine, the CPU) with a fixed
duration and a set of dependencies.  The engine computes start/finish times
under two rules:

* a task starts only after all its dependencies have finished, and
* each resource executes one task at a time, in ready order (FIFO among
  tasks whose dependencies are satisfied, ties broken by submission order).

This is exactly the execution model of CUDA streams: operations in a stream
are FIFO, cross-stream ordering comes from events (dependencies).  The
closed-form pipeline formulas in :mod:`repro.hardware.pipeline` are validated
against this engine in the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import SchedulingError


@dataclass
class Task:
    """One unit of work on one resource.

    Attributes:
        name: Unique identifier within the schedule.
        resource: Resource (engine) that executes the task.
        duration: Seconds of exclusive resource occupancy (>= 0).
        deps: Names of tasks that must finish before this one starts.
        meta: Optional JSON-safe annotations carried into trace exports
            (device, transfer bytes, link id); never affects scheduling.
    """

    name: str
    resource: str
    duration: float
    deps: tuple[str, ...] = ()
    meta: dict | None = None


@dataclass
class TaskRecord:
    """Computed timing of one task."""

    task: Task
    start: float
    finish: float


@dataclass
class TimelineResult:
    """The outcome of simulating a schedule.

    Attributes:
        records: Per-task timing, keyed by task name.
        makespan: Finish time of the last task.
        busy: Per-resource total busy seconds.
    """

    records: dict[str, TaskRecord]
    makespan: float
    busy: dict[str, float]

    def utilization(self, resource: str) -> float:
        """Busy fraction of ``resource`` over the makespan."""
        if self.makespan == 0:
            return 0.0
        return self.busy.get(resource, 0.0) / self.makespan


class EventTimeline:
    """Accumulates tasks, then simulates them with :meth:`run`."""

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._by_name: dict[str, Task] = {}

    def add(
        self,
        name: str,
        resource: str,
        duration: float,
        deps: tuple[str, ...] | list[str] = (),
        meta: dict | None = None,
    ) -> Task:
        """Register a task; returns it for convenient chaining."""
        if name in self._by_name:
            raise SchedulingError(f"duplicate task name {name!r}")
        if duration < 0:
            raise SchedulingError(f"task {name!r} has negative duration")
        task = Task(name, resource, float(duration), tuple(deps), meta)
        self._tasks.append(task)
        self._by_name[name] = task
        return task

    def add_retryable(
        self,
        name: str,
        resource: str,
        duration: float,
        deps: tuple[str, ...] | list[str] = (),
        fail_attempts: int = 0,
        max_attempts: int = 4,
        backoff_base: float = 0.0,
        backoff_factor: float = 2.0,
    ) -> Task:
        """Register a transfer-like task that fails ``fail_attempts`` times.

        Models a retried link operation the way a reliability-aware
        runtime schedules it: each failed attempt occupies ``resource``
        for the full ``duration`` (the corruption is only detected at
        receive), then waits out an exponential backoff on a private
        timer resource, then retries.  The successful final attempt keeps
        the plain ``name`` so dependents reference it unchanged; earlier
        attempts are named ``{name}@try{i}`` and backoff waits
        ``{name}@wait{i}``.

        Returns the final (successful) task.

        Raises:
            SchedulingError: When ``fail_attempts`` meets or exceeds
                ``max_attempts`` (the retry budget is exhausted), or the
                backoff schedule is malformed.
        """
        if fail_attempts < 0 or max_attempts < 1:
            raise SchedulingError(
                f"task {name!r}: fail_attempts/max_attempts out of range"
            )
        if fail_attempts >= max_attempts:
            raise SchedulingError(
                f"task {name!r} fails {fail_attempts} times but only "
                f"{max_attempts} attempts are budgeted"
            )
        if backoff_base < 0 or backoff_factor < 1.0:
            raise SchedulingError(
                f"task {name!r}: backoff must be non-negative and non-shrinking"
            )
        previous = tuple(deps)
        for attempt in range(fail_attempts):
            tried = self.add(f"{name}@try{attempt}", resource, duration, previous)
            wait = self.add(
                f"{name}@wait{attempt}",
                f"__backoff__:{name}",
                backoff_base * backoff_factor**attempt,
                (tried.name,),
            )
            previous = (wait.name,)
        return self.add(name, resource, duration, previous)

    def __len__(self) -> int:
        return len(self._tasks)

    def run(self) -> TimelineResult:
        """Simulate the schedule and return task timings.

        Raises:
            SchedulingError: On unknown dependencies or dependency cycles.
        """
        for task in self._tasks:
            for dep in task.deps:
                if dep not in self._by_name:
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )

        submission = {task.name: order for order, task in enumerate(self._tasks)}
        pending_deps = {task.name: len(task.deps) for task in self._tasks}
        dependents: dict[str, list[str]] = {task.name: [] for task in self._tasks}
        for task in self._tasks:
            for dep in task.deps:
                dependents[dep].append(task.name)

        # Time-advancing simulation.  Tasks become ready exactly when their
        # last dependency finishes; an idle resource starts the
        # earliest-submitted ready task at the current time.  Time advances
        # to the next task completion when nothing can start.
        ready_at = {task.name: 0.0 for task in self._tasks}
        # Per-resource queue of ready tasks: (submission order, name).
        queues: dict[str, list[tuple[int, str]]] = {}
        resources: set[str] = {task.resource for task in self._tasks}
        running: list[tuple[float, int, str]] = []  # (finish, order, name)
        resource_busy_until: dict[str, float] = {r: 0.0 for r in resources}
        resource_running: dict[str, bool] = {r: False for r in resources}

        def enqueue(name: str) -> None:
            task = self._by_name[name]
            heapq.heappush(
                queues.setdefault(task.resource, []), (submission[name], name)
            )

        for task in self._tasks:
            if pending_deps[task.name] == 0:
                enqueue(task.name)

        records: dict[str, TaskRecord] = {}
        busy: dict[str, float] = {}
        completed = 0
        makespan = 0.0
        now = 0.0

        while completed < len(self._tasks):
            started_any = True
            while started_any:
                started_any = False
                for resource in resources:
                    queue = queues.get(resource)
                    if resource_running[resource] or not queue:
                        continue
                    order, name = heapq.heappop(queue)
                    task = self._by_name[name]
                    start = now
                    finish = start + task.duration
                    records[name] = TaskRecord(task, start, finish)
                    busy[resource] = busy.get(resource, 0.0) + task.duration
                    resource_running[resource] = True
                    resource_busy_until[resource] = finish
                    heapq.heappush(running, (finish, order, name))
                    started_any = True
            if completed == len(self._tasks):
                break
            if not running:
                raise SchedulingError("dependency cycle: no task is ready")
            # Advance to the next completion; release everything finishing
            # at that instant so zero-duration chains resolve in one step.
            now = running[0][0]
            while running and running[0][0] <= now:
                _, _, name = heapq.heappop(running)
                task = self._by_name[name]
                resource_running[task.resource] = False
                makespan = max(makespan, records[name].finish)
                completed += 1
                for dependent in dependents[name]:
                    pending_deps[dependent] -= 1
                    ready_at[dependent] = max(ready_at[dependent], records[name].finish)
                    if pending_deps[dependent] == 0:
                        enqueue(dependent)

        return TimelineResult(records=records, makespan=makespan, busy=busy)
