"""Interconnect topology: named links between hosts and devices.

The rest of :mod:`repro.hardware` models a machine's interconnect as *one*
:class:`~repro.hardware.specs.LinkSpec` shared by every GPU.  That is enough
to price transfers, but the fleet observatory (``obs.fleet``) needs to know
*which* link carried each byte: per-link utilization timelines and the
device-to-device communication matrix are meaningless without an explicit
link inventory.  This module provides it:

* :class:`DeviceLink` - one named, directed-pair link between two endpoints
  (``host`` or ``gpu{i}``, or node-qualified ``n{j}:...`` for clusters),
  carrying a :class:`~repro.hardware.specs.LinkSpec` for bandwidth/latency;
* :class:`Topology` - a validated set of endpoints and links with lookup
  helpers (:meth:`Topology.host_link`, :meth:`Topology.link_between`);
* builders for the three shapes the paper's servers and the scale-out
  projections use: :func:`pcie_switch` (every GPU behind its own PCIe root
  port - the P100/P4 servers), :func:`nvlink_mesh` (host links plus
  all-pairs peer links - the 4x V100 NVLink server), and
  :func:`multi_node_ib` (PCIe inside each node, InfiniBand between node
  hosts - the Section V-F projection modelled by ``analysis.scaling``).

:meth:`~repro.hardware.specs.MachineSpec.interconnect` derives the default
topology from a machine's existing specs, so every preset gains a link
inventory without changing any timing figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hardware.specs import GB, LinkSpec, MachineSpec, NVLINK2, PCIE3_X16

#: The canonical host endpoint name (single-node topologies).
HOST = "host"

#: EDR/HDR-class InfiniBand NIC, matching the 100 Gb/s figure
#: ``analysis.scaling`` uses for the multi-node projection.
IB_HDR100 = LinkSpec(
    "InfiniBand HDR100", bandwidth_per_direction=12.5 * GB, latency=1.5e-6
)


def device_name(index: int, node: int | None = None) -> str:
    """Canonical device endpoint name (``gpu3`` or ``n1:gpu3``)."""
    base = f"gpu{index}"
    return base if node is None else f"n{node}:{base}"


@dataclass(frozen=True)
class DeviceLink:
    """One link between two endpoints of a topology.

    Attributes:
        link_id: Unique identifier within the topology (stable across
            runs; trace spans and Prometheus gauges key on it).
        kind: Link family - ``"pcie"``, ``"nvlink"`` or ``"ib"``.
        src: One endpoint (a host or device name).
        dst: The other endpoint.
        spec: Bandwidth/latency/duplex figures.  Links are modelled as
            symmetric pipes: ``src``/``dst`` name the endpoints, not a
            transfer direction.
    """

    link_id: str
    kind: str
    src: str
    dst: str
    spec: LinkSpec

    def __post_init__(self) -> None:
        if not self.link_id:
            raise HardwareModelError("link needs a non-empty id")
        if self.src == self.dst:
            raise HardwareModelError(
                f"link {self.link_id!r} connects {self.src!r} to itself"
            )

    def connects(self, a: str, b: str) -> bool:
        """Whether this link joins endpoints ``a`` and ``b`` (either order)."""
        return (self.src, self.dst) in ((a, b), (b, a))

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` over this link (one transfer)."""
        return num_bytes / self.spec.bandwidth_per_direction + self.spec.latency


@dataclass(frozen=True)
class Topology:
    """A validated interconnect: hosts, devices, and the links between them.

    Attributes:
        name: Identifier used in reports.
        devices: Device endpoint names, in stream order.
        links: Every link in the fabric.
        hosts: Host endpoint names (one per node).
    """

    name: str
    devices: tuple[str, ...]
    links: tuple[DeviceLink, ...]
    hosts: tuple[str, ...] = (HOST,)

    def __post_init__(self) -> None:
        if not self.devices:
            raise HardwareModelError(f"topology {self.name!r} has no devices")
        endpoints = set(self.hosts) | set(self.devices)
        if len(endpoints) < len(self.hosts) + len(self.devices):
            raise HardwareModelError(
                f"topology {self.name!r} has duplicate endpoint names"
            )
        seen_ids: set[str] = set()
        for link in self.links:
            if link.link_id in seen_ids:
                raise HardwareModelError(
                    f"topology {self.name!r}: duplicate link id {link.link_id!r}"
                )
            seen_ids.add(link.link_id)
            for endpoint in (link.src, link.dst):
                if endpoint not in endpoints:
                    raise HardwareModelError(
                        f"topology {self.name!r}: link {link.link_id!r} "
                        f"references unknown endpoint {endpoint!r}"
                    )
        for device in self.devices:
            if self.host_link_or_none(device) is None:
                raise HardwareModelError(
                    f"topology {self.name!r}: device {device!r} has no host link"
                )

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def host_link_or_none(self, device: str) -> DeviceLink | None:
        """The link joining ``device`` to a host, or None."""
        for link in self.links:
            for host in self.hosts:
                if link.connects(host, device):
                    return link
        return None

    def host_link(self, device: str) -> DeviceLink:
        """The link joining ``device`` to a host.

        Raises:
            HardwareModelError: Unknown device (validation guarantees every
                known device has one).
        """
        link = self.host_link_or_none(device)
        if link is None:
            raise HardwareModelError(
                f"topology {self.name!r}: no host link for {device!r}"
            )
        return link

    def link_between(self, a: str, b: str) -> DeviceLink | None:
        """The direct link joining endpoints ``a`` and ``b``, if any."""
        for link in self.links:
            if link.connects(a, b):
                return link
        return None

    def peer_links(self) -> tuple[DeviceLink, ...]:
        """Links joining two devices (no host endpoint)."""
        hosts = set(self.hosts)
        return tuple(
            link
            for link in self.links
            if link.src not in hosts and link.dst not in hosts
        )


# -- builders ------------------------------------------------------------------


def pcie_switch(num_gpus: int, link: LinkSpec = PCIE3_X16) -> Topology:
    """Every GPU behind its own PCIe lane set - the P100/P4 servers.

    No peer links: any GPU-to-GPU movement relays through host memory,
    which is exactly the paper's Fig. 18 discipline.
    """
    if num_gpus < 1:
        raise HardwareModelError("need at least one GPU")
    devices = tuple(device_name(i) for i in range(num_gpus))
    links = tuple(
        DeviceLink(f"pcie/host-{dev}", "pcie", HOST, dev, link)
        for dev in devices
    )
    return Topology(f"pcie-switch-{num_gpus}", devices, links)


def nvlink_mesh(
    num_gpus: int,
    host_link: LinkSpec = NVLINK2,
    peer_link: LinkSpec = NVLINK2,
) -> Topology:
    """Host links plus an all-pairs peer mesh - the 4x V100 NVLink server.

    The streaming discipline never uses the peer links (chunk groups are
    self-contained), but the inventory exposes them so the fleet analytics
    can report them at zero utilization - the measurable form of the
    paper's "no GPU-to-GPU traffic" claim.
    """
    if num_gpus < 1:
        raise HardwareModelError("need at least one GPU")
    devices = tuple(device_name(i) for i in range(num_gpus))
    links = [
        DeviceLink(f"nvlink/host-{dev}", "nvlink", HOST, dev, host_link)
        for dev in devices
    ]
    for i in range(num_gpus):
        for j in range(i + 1, num_gpus):
            links.append(
                DeviceLink(
                    f"nvlink/{devices[i]}-{devices[j]}",
                    "nvlink",
                    devices[i],
                    devices[j],
                    peer_link,
                )
            )
    return Topology(f"nvlink-mesh-{num_gpus}", devices, tuple(links))


def multi_node_ib(
    num_nodes: int,
    gpus_per_node: int,
    host_link: LinkSpec = PCIE3_X16,
    ib_link: LinkSpec = IB_HDR100,
) -> Topology:
    """PCIe inside each node, InfiniBand between node hosts.

    Each host pair gets one logical IB path (the switched fabric collapsed
    to endpoint pairs), matching the ``analysis.scaling`` projection where
    the network serialises inter-node chunk exchange.
    """
    if num_nodes < 1 or gpus_per_node < 1:
        raise HardwareModelError("need at least one node and one GPU per node")
    hosts = tuple(f"n{j}:host" for j in range(num_nodes))
    devices = tuple(
        device_name(i, node=j)
        for j in range(num_nodes)
        for i in range(gpus_per_node)
    )
    links = [
        DeviceLink(
            f"pcie/n{j}:host-{device_name(i, node=j)}",
            "pcie",
            hosts[j],
            device_name(i, node=j),
            host_link,
        )
        for j in range(num_nodes)
        for i in range(gpus_per_node)
    ]
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            links.append(
                DeviceLink(f"ib/n{a}-n{b}", "ib", hosts[a], hosts[b], ib_link)
            )
    return Topology(
        f"ib-{num_nodes}x{gpus_per_node}", devices, tuple(links), hosts=hosts
    )


def default_topology(spec: MachineSpec) -> Topology:
    """The topology a machine's existing specs imply.

    NVLink-attached machines get the all-pairs mesh; everything else a
    PCIe switch.  Host-link figures come straight from ``spec.link``, so
    transfer pricing is unchanged - the topology only *names* the links
    the timing model already assumed.
    """
    num_gpus = len(spec.gpus)
    if "nvlink" in spec.link.name.lower():
        return nvlink_mesh(num_gpus, host_link=spec.link)
    return pcie_switch(num_gpus, link=spec.link)
