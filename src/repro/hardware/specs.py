"""Hardware specifications for the performance model.

The paper's experiments run on real NVIDIA GPUs (P100/V100/A100/P4) attached
to Xeon hosts over PCIe 3.0 or NVLink.  This environment has no GPU, so Q-GPU
executes against a calibrated analytical model of those parts (see DESIGN.md,
"Substitutions").  All figures below are either vendor datasheet numbers
(memory capacity, peak FP64, HBM bandwidth) or effective-throughput
calibrations chosen so the *baseline* relations the paper reports hold
(e.g. Fig. 2's 89%-CPU breakdown, CPU-vs-GPU crossover at 32 qubits).

Calibration constants and their provenance:

* ``effective_fraction`` of link bandwidth: PCIe 3.0 x16 sustains ~12 GB/s
  of its 16 GB/s peak for pinned-memory cudaMemcpy.
* ``kernel_efficiency``: state-vector update kernels reach roughly half of
  HBM STREAM bandwidth (strided pair access).
* ``CpuSpec.effective_bandwidth``: dual Xeon Silver 4114 sustains ~40 GB/s
  for the OpenMP state-vector loop.
* ``CpuSpec.chunked_efficiency``: QISKit-Aer's hybrid path updates CPU
  chunks through a chunk-granular dispatcher that contends with transfer
  threads; the paper's Fig. 2/Fig. 12 relations imply it reaches ~42% of
  the pure OpenMP loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import HardwareModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology uses specs)
    from repro.hardware.topology import Topology

GIB = 1 << 30
GB = 10**9

#: Bytes per complex128 state amplitude.
AMP_BYTES = 16


@dataclass(frozen=True)
class GpuSpec:
    """A GPU device model.

    Attributes:
        name: Marketing name, for reports.
        memory_bytes: Device memory capacity.
        fp64_flops: Peak double-precision throughput (FLOP/s).
        mem_bandwidth: Peak device-memory bandwidth (bytes/s).
        kernel_efficiency: Fraction of peak bandwidth the state-vector
            update kernel sustains.
        codec_bandwidth: GFC compression/decompression throughput on
            this device (bytes/s of uncompressed data); the GFC paper
            reports ~42% of device memory bandwidth, scaled per device.
    """

    name: str
    memory_bytes: int
    fp64_flops: float
    mem_bandwidth: float
    kernel_efficiency: float = 0.5
    codec_bandwidth: float = 300 * GB

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.mem_bandwidth <= 0 or self.fp64_flops <= 0:
            raise HardwareModelError(f"non-positive figure in GPU spec {self.name!r}")
        if not 0 < self.kernel_efficiency <= 1:
            raise HardwareModelError(
                f"kernel_efficiency must be in (0, 1], got {self.kernel_efficiency}"
            )

    @property
    def effective_bandwidth(self) -> float:
        """Sustained state-vector kernel bandwidth (bytes/s)."""
        return self.mem_bandwidth * self.kernel_efficiency


@dataclass(frozen=True)
class CpuSpec:
    """A host CPU model.

    Attributes:
        name: Marketing name.
        cores: Physical core count (reported, not separately modelled; the
            effective bandwidth already reflects all-core operation).
        effective_bandwidth: Sustained bytes/s of the pure OpenMP
            state-vector update loop.
        chunked_efficiency: Fraction of ``effective_bandwidth`` reached by
            the hybrid (chunk-granular) CPU path of QISKit-Aer.
    """

    name: str
    cores: int
    effective_bandwidth: float
    chunked_efficiency: float = 0.42

    def __post_init__(self) -> None:
        if self.effective_bandwidth <= 0 or self.cores <= 0:
            raise HardwareModelError(f"non-positive figure in CPU spec {self.name!r}")
        if not 0 < self.chunked_efficiency <= 1:
            raise HardwareModelError(
                f"chunked_efficiency must be in (0, 1], got {self.chunked_efficiency}"
            )

    @property
    def chunked_bandwidth(self) -> float:
        """Sustained bytes/s of the hybrid chunk-dispatch CPU path."""
        return self.effective_bandwidth * self.chunked_efficiency


@dataclass(frozen=True)
class LinkSpec:
    """A CPU-GPU interconnect model.

    Attributes:
        name: Link family name.
        bandwidth_per_direction: Sustained bytes/s in each direction.
        latency: Per-transfer fixed cost (seconds): driver launch plus DMA
            setup.
        duplex: Whether H2D and D2H can proceed concurrently at full rate
            (true for both PCIe 3.0 and NVLink).
    """

    name: str
    bandwidth_per_direction: float
    latency: float = 20e-6
    duplex: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_per_direction <= 0 or self.latency < 0:
            raise HardwareModelError(f"bad link spec {self.name!r}")


@dataclass(frozen=True)
class MachineSpec:
    """A host with one or more GPUs behind a shared link type.

    Attributes:
        name: Identifier used in reports.
        cpu: Host CPU model.
        gpus: One entry per GPU (all identical in the paper's servers).
        link: Interconnect between host memory and each GPU.  Each GPU has
            its own link instance (PCIe slots / NVLink bricks).
        host_memory_bytes: Host DRAM capacity; simulations whose state
            vector exceeds it fail, as on the real machines (Section V-D).
        topology: Explicit interconnect topology.  None (the default, and
            every preset) means "derive it from the specs" - see
            :meth:`interconnect`.
    """

    name: str
    cpu: CpuSpec
    gpus: tuple[GpuSpec, ...]
    link: LinkSpec
    host_memory_bytes: int
    topology: "Topology | None" = None

    def __post_init__(self) -> None:
        if not self.gpus:
            raise HardwareModelError(f"machine {self.name!r} has no GPUs")
        if self.host_memory_bytes <= 0:
            raise HardwareModelError(f"machine {self.name!r} has no host memory")
        if self.topology is not None and self.topology.num_devices != len(self.gpus):
            raise HardwareModelError(
                f"machine {self.name!r} has {len(self.gpus)} GPU(s) but its "
                f"topology names {self.topology.num_devices} device(s)"
            )

    @property
    def gpu(self) -> GpuSpec:
        """The first (or only) GPU."""
        return self.gpus[0]

    def interconnect(self) -> "Topology":
        """This machine's interconnect topology.

        Returns the explicit :attr:`topology` when one was given, else the
        default derived from ``link``/``gpus`` (PCIe switch, or NVLink mesh
        for NVLink-attached machines).  The derived topology reuses this
        spec's link figures, so transfer pricing is identical either way.
        """
        if self.topology is not None:
            return self.topology
        from repro.hardware.topology import default_topology

        return default_topology(self)

    def with_gpu_count(self, count: int) -> "MachineSpec":
        """A copy of this machine with ``count`` identical GPUs.

        Any explicit topology is dropped (its device list would no longer
        match); the copy derives its interconnect from the specs.
        """
        if count <= 0:
            raise HardwareModelError("gpu count must be positive")
        return replace(
            self,
            gpus=(self.gpus[0],) * count,
            name=f"{self.name}x{count}",
            topology=None,
        )


# ---------------------------------------------------------------------------
# Device presets (datasheet numbers)
# ---------------------------------------------------------------------------

# GFC reached 75 GB/s on a 177 GB/s-bandwidth GPU (O'Neil & Burtscher),
# i.e. ~42% of device bandwidth; the codec figures below scale that to each
# device's HBM bandwidth.
P100 = GpuSpec(
    "NVIDIA Tesla P100", memory_bytes=16 * GIB, fp64_flops=4.7e12,
    mem_bandwidth=732 * GB, codec_bandwidth=300 * GB,
)
V100_16GB = GpuSpec(
    "NVIDIA Tesla V100 16GB", memory_bytes=16 * GIB, fp64_flops=7.8e12,
    mem_bandwidth=900 * GB, codec_bandwidth=370 * GB,
)
V100_32GB = GpuSpec(
    "NVIDIA Tesla V100 32GB", memory_bytes=32 * GIB, fp64_flops=7.8e12,
    mem_bandwidth=900 * GB, codec_bandwidth=370 * GB,
)
A100_40GB = GpuSpec(
    "NVIDIA A100 40GB", memory_bytes=40 * GIB, fp64_flops=9.7e12,
    mem_bandwidth=1555 * GB, codec_bandwidth=640 * GB,
)
P4 = GpuSpec(
    "NVIDIA Tesla P4", memory_bytes=8 * GIB, fp64_flops=0.17e12,
    mem_bandwidth=192 * GB, codec_bandwidth=80 * GB,
)

XEON_4114_DUAL = CpuSpec("2x Intel Xeon Silver 4114", cores=20, effective_bandwidth=40 * GB)
XEON_6133 = CpuSpec("Intel Xeon Gold 6133 (8 cores)", cores=8, effective_bandwidth=25 * GB)
VCPU_12 = CpuSpec("12-core virtual CPU", cores=12, effective_bandwidth=30 * GB)
XEON_32CORE = CpuSpec("32-core Xeon", cores=32, effective_bandwidth=55 * GB)

PCIE3_X16 = LinkSpec("PCIe 3.0 x16", bandwidth_per_direction=12 * GB)
NVLINK2 = LinkSpec("NVLink 2.0", bandwidth_per_direction=75 * GB, latency=10e-6)

# ---------------------------------------------------------------------------
# The paper's five servers (Sections III-B, V-D, V-E)
# ---------------------------------------------------------------------------

PAPER_MACHINE = MachineSpec(
    "P100 server (Sec. III-B)", cpu=XEON_4114_DUAL, gpus=(P100,),
    link=PCIE3_X16, host_memory_bytes=384 * GIB,
)
V100_MACHINE = MachineSpec(
    "V100 server (Sec. V-D)", cpu=XEON_6133, gpus=(V100_32GB,),
    link=PCIE3_X16, host_memory_bytes=80 * GIB,
)
A100_MACHINE = MachineSpec(
    "A100 server (Sec. V-D)", cpu=VCPU_12, gpus=(A100_40GB,),
    link=PCIE3_X16, host_memory_bytes=85 * GIB,
)
MULTI_P4_MACHINE = MachineSpec(
    "4x P4 server (Sec. V-E)", cpu=XEON_32CORE, gpus=(P4,) * 4,
    link=PCIE3_X16, host_memory_bytes=208 * GIB,
)
MULTI_V100_MACHINE = MachineSpec(
    "4x V100 NVLink server (Sec. V-E)", cpu=XEON_32CORE, gpus=(V100_16GB,) * 4,
    link=NVLINK2, host_memory_bytes=208 * GIB,
)

MACHINES: dict[str, MachineSpec] = {
    "p100": PAPER_MACHINE,
    "v100": V100_MACHINE,
    "a100": A100_MACHINE,
    "multi_p4": MULTI_P4_MACHINE,
    "multi_v100": MULTI_V100_MACHINE,
}
