"""Cost helpers over a :class:`~repro.hardware.specs.MachineSpec`.

The executor asks one question repeatedly: "how long does this primitive
take on this machine?".  All such conversions (bytes -> seconds,
flops -> seconds) live here so the calibration story stays in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hardware.specs import AMP_BYTES, GpuSpec, MachineSpec

#: Floating-point operations per amplitude for a dense k-qubit gate update:
#: a 2^k x 2^k complex mat-vec touches each amplitude with 2^k complex
#: multiply-adds (8 flops each).
FLOPS_PER_AMP_DENSE = {1: 16.0, 2: 32.0, 3: 64.0}
#: Diagonal gates need one complex multiply (6 flops) per amplitude.
FLOPS_PER_AMP_DIAGONAL = 6.0

#: Fraction of GPU memory usable for state chunks (the rest holds the
#: runtime, gate matrices and staging metadata).
GPU_USABLE_FRACTION = 0.97


@dataclass(frozen=True)
class Machine:
    """Timing calculator for one machine spec.

    Attributes:
        spec: The underlying hardware description.
    """

    spec: MachineSpec

    # -- capacities -------------------------------------------------------

    @property
    def num_gpus(self) -> int:
        return len(self.spec.gpus)

    def gpu_capacity_bytes(self, gpu_index: int = 0) -> int:
        """Usable state-chunk capacity of one GPU."""
        return int(self.spec.gpus[gpu_index].memory_bytes * GPU_USABLE_FRACTION)

    def total_gpu_capacity_bytes(self) -> int:
        return sum(self.gpu_capacity_bytes(i) for i in range(self.num_gpus))

    def fits_on_gpu(self, state_bytes: int, gpu_index: int = 0) -> bool:
        """True when the full state vector is resident on one GPU."""
        return state_bytes <= self.gpu_capacity_bytes(gpu_index)

    def fits_in_host(self, state_bytes: int) -> bool:
        """True when the host can hold the state vector (plus ~5% slack)."""
        return state_bytes * 1.05 <= self.spec.host_memory_bytes

    # -- transfers ---------------------------------------------------------

    def transfer_time(self, num_bytes: float, num_transfers: int = 1) -> float:
        """Seconds to move ``num_bytes`` one way over one link."""
        if num_bytes < 0 or num_transfers < 0:
            raise HardwareModelError("negative transfer request")
        if num_bytes == 0:
            return 0.0
        link = self.spec.link
        return num_bytes / link.bandwidth_per_direction + num_transfers * link.latency

    # -- compute -----------------------------------------------------------

    @staticmethod
    def _touched_bytes(num_amplitudes: float) -> float:
        # Every update reads and writes each touched amplitude once.
        return 2.0 * AMP_BYTES * num_amplitudes

    def gate_flops(self, num_amplitudes: float, gate_qubits: int, diagonal: bool) -> float:
        """Floating-point operations to update ``num_amplitudes``."""
        if diagonal:
            return FLOPS_PER_AMP_DIAGONAL * num_amplitudes
        per_amp = FLOPS_PER_AMP_DENSE.get(gate_qubits)
        if per_amp is None:
            per_amp = 8.0 * 2.0**gate_qubits
        return per_amp * num_amplitudes

    def gpu_compute_time(
        self,
        num_amplitudes: float,
        gate_qubits: int = 1,
        diagonal: bool = False,
        gpu_index: int = 0,
    ) -> float:
        """Seconds for one GPU to update ``num_amplitudes`` (memory-bound
        unless the flop cost exceeds the bandwidth cost)."""
        gpu = self.spec.gpus[gpu_index]
        bandwidth_time = self._touched_bytes(num_amplitudes) / gpu.effective_bandwidth
        flop_time = self.gate_flops(num_amplitudes, gate_qubits, diagonal) / gpu.fp64_flops
        return max(bandwidth_time, flop_time)

    def cpu_compute_time(
        self, num_amplitudes: float, chunked: bool = False
    ) -> float:
        """Seconds for the host to update ``num_amplitudes``.

        Args:
            num_amplitudes: Amplitudes touched by the gate.
            chunked: Use the hybrid chunk-dispatch path (QISKit-Aer hybrid
                baseline) instead of the pure OpenMP loop.
        """
        cpu = self.spec.cpu
        bandwidth = cpu.chunked_bandwidth if chunked else cpu.effective_bandwidth
        return self._touched_bytes(num_amplitudes) / bandwidth

    # -- compression ---------------------------------------------------------

    def codec_time(self, uncompressed_bytes: float, gpu_index: int = 0) -> float:
        """Seconds for the GPU GFC kernels to (de)compress a buffer."""
        gpu: GpuSpec = self.spec.gpus[gpu_index]
        return uncompressed_bytes / gpu.codec_bandwidth
