"""Stabilizer (Clifford) simulation - the paper's Section II-B second
paradigm.

Implements the Aaronson-Gottesman tableau algorithm ("Improved simulation
of stabilizer circuits", Phys. Rev. A 70, 052328): an ``n``-qubit stabilizer
state is represented by ``2n`` Pauli rows - ``n`` destabilizers and ``n``
stabilizers - each a pair of X/Z bit vectors plus a sign bit.  Clifford
gates update the tableau in O(n); measurements take O(n^2).

Supported gates: ``h, s, sdg, x, y, z, cx, cz, swap`` (the Clifford subset
of the library gate set).  Three of the paper's nine benchmarks (gs, hlf,
bv) are pure Clifford circuits, so this engine simulates them in polynomial
space where the Schrödinger engines need ``2^n`` amplitudes - and the test
suite cross-validates the two representations by checking that the dense
state is a +1 eigenvector of every tableau stabilizer.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import SimulationError

#: Gates this engine accepts.
CLIFFORD_GATES = frozenset(
    {"id", "h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap"}
)


def is_clifford_circuit(circuit: QuantumCircuit) -> bool:
    """True when every gate is in the supported Clifford subset."""
    return all(gate.name in CLIFFORD_GATES for gate in circuit)


class StabilizerState:
    """Tableau representation of a stabilizer state, initially ``|0...0>``.

    Attributes:
        num_qubits: Register width ``n``.
        x: ``(2n, n)`` bool array of X components (rows 0..n-1 are
            destabilizers, rows n..2n-1 stabilizers).
        z: ``(2n, n)`` bool array of Z components.
        r: ``(2n,)`` bool array of sign bits (True = -1).
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits <= 0:
            raise SimulationError("num_qubits must be positive")
        self.num_qubits = num_qubits
        n = num_qubits
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=bool)
        self.x[np.arange(n), np.arange(n)] = True          # destabilizers X_i
        self.z[n + np.arange(n), np.arange(n)] = True      # stabilizers Z_i

    # -- gate application ----------------------------------------------------

    def apply(self, gate: Gate) -> "StabilizerState":
        """Apply one Clifford gate; raises for non-Clifford gates."""
        name = gate.name
        if name not in CLIFFORD_GATES:
            raise SimulationError(
                f"gate {name!r} is not Clifford; use the state-vector engine"
            )
        if any(q >= self.num_qubits for q in gate.qubits):
            raise SimulationError(f"gate {gate} exceeds register width")
        if name == "id":
            return self
        if name == "h":
            self._hadamard(gate.qubits[0])
        elif name == "s":
            self._phase(gate.qubits[0])
        elif name == "sdg":
            # sdg = s . z = s s s.
            self._phase(gate.qubits[0])
            self._phase(gate.qubits[0])
            self._phase(gate.qubits[0])
        elif name == "x":
            # x = h z h = h s s h.
            q = gate.qubits[0]
            self._hadamard(q)
            self._phase(q)
            self._phase(q)
            self._hadamard(q)
        elif name == "z":
            self._phase(gate.qubits[0])
            self._phase(gate.qubits[0])
        elif name == "y":
            # y = i x z -> as a Clifford action: z then x (global phase
            # is unobservable in the stabilizer formalism).
            q = gate.qubits[0]
            self._phase(q)
            self._phase(q)
            self._hadamard(q)
            self._phase(q)
            self._phase(q)
            self._hadamard(q)
        elif name == "cx":
            self._cnot(gate.qubits[0], gate.qubits[1])
        elif name == "cz":
            control, target = gate.qubits
            self._hadamard(target)
            self._cnot(control, target)
            self._hadamard(target)
        elif name == "swap":
            a, b = gate.qubits
            self._cnot(a, b)
            self._cnot(b, a)
            self._cnot(a, b)
        return self

    def run(self, circuit: QuantumCircuit) -> "StabilizerState":
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width mismatch")
        for gate in circuit:
            self.apply(gate)
        return self

    def _hadamard(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def _phase(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def _cnot(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ True)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    # -- row algebra (Aaronson-Gottesman "rowsum") ------------------------------

    def _phase_exponent(self, h: int, i: int) -> int:
        """Exponent of i (mod 4) accumulated when row ``i`` multiplies row ``h``."""
        x1, z1 = self.x[i], self.z[i]
        x2, z2 = self.x[h], self.z[h]
        # g() per Aaronson-Gottesman, vectorised:
        g = np.zeros(self.num_qubits, dtype=np.int64)
        # x1=1, z1=0 (X): g = z2*(2*x2 - 1)
        mask = x1 & ~z1
        g[mask] = (z2[mask] * (2 * x2[mask].astype(np.int64) - 1))
        # x1=1, z1=1 (Y): g = z2 - x2
        mask = x1 & z1
        g[mask] = z2[mask].astype(np.int64) - x2[mask].astype(np.int64)
        # x1=0, z1=1 (Z): g = x2*(1 - 2*z2)
        mask = ~x1 & z1
        g[mask] = x2[mask].astype(np.int64) * (1 - 2 * z2[mask].astype(np.int64))
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + int(g.sum())
        return total % 4

    def _rowsum(self, h: int, i: int) -> None:
        """Row ``h`` *= row ``i`` (Pauli product with sign tracking).

        The +/-1 phase invariant only holds for stabilizer and scratch
        rows (``h >= n``).  Destabilizer rows can legitimately pick up an
        odd phase exponent - the paired destabilizer *anticommutes* with
        the measured stabilizer during a random-outcome measurement - and
        their sign bits carry no meaning in the Aaronson-Gottesman
        formalism, so any consistent value works there.
        """
        phase = self._phase_exponent(h, i)
        if h >= self.num_qubits and phase not in (0, 2):
            raise SimulationError("stabilizer phase left the +/-1 group")
        self.r[h] = phase in (2, 3)
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    # -- measurement -----------------------------------------------------------

    def measure(self, q: int, rng: np.random.Generator | None = None) -> int:
        """Measure qubit ``q`` in the computational basis (collapsing).

        Returns 0 or 1.  Deterministic outcomes are computed exactly; random
        outcomes use ``rng`` (fresh default generator when omitted).
        """
        if not 0 <= q < self.num_qubits:
            raise SimulationError(f"qubit {q} out of range")
        n = self.num_qubits
        stabilizer_rows = np.nonzero(self.x[n:, q])[0] + n
        if stabilizer_rows.size:
            # Random outcome: some stabilizer anticommutes with Z_q.
            if rng is None:
                rng = np.random.default_rng()
            p = int(stabilizer_rows[0])
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            outcome = int(rng.integers(0, 2))
            self.r[p] = bool(outcome)
            return outcome
        # Deterministic outcome: accumulate into scratch row.
        self.x = np.vstack([self.x, np.zeros(n, dtype=bool)])
        self.z = np.vstack([self.z, np.zeros(n, dtype=bool)])
        self.r = np.append(self.r, False)
        scratch = 2 * n
        for i in range(n):
            if self.x[i, q]:
                self._rowsum(scratch, i + n)
        outcome = int(self.r[scratch])
        self.x = self.x[:scratch]
        self.z = self.z[:scratch]
        self.r = self.r[:scratch]
        return outcome

    def measure_all(self, rng: np.random.Generator | None = None) -> int:
        """Measure every qubit; returns the outcome as an integer."""
        if rng is None:
            rng = np.random.default_rng()
        value = 0
        for q in range(self.num_qubits):
            value |= self.measure(q, rng) << q
        return value

    # -- queries ----------------------------------------------------------------

    def stabilizer_strings(self) -> list[tuple[int, str]]:
        """The stabilizer generators as ``(sign, pauli-label string)``.

        Sign is +1 or -1; labels read qubit 0 first, e.g. ``"XZI"``.
        """
        n = self.num_qubits
        out = []
        for row in range(n, 2 * n):
            labels = []
            for q in range(n):
                x, z = self.x[row, q], self.z[row, q]
                labels.append("I" if not x and not z else
                              "X" if x and not z else
                              "Z" if z and not x else "Y")
            out.append((-1 if self.r[row] else 1, "".join(labels)))
        return out

    def expectation_z(self, q: int) -> float:
        """``<Z_q>`` without collapsing: +/-1 when deterministic, else 0."""
        n = self.num_qubits
        if np.any(self.x[n:, q]):
            return 0.0
        # Deterministic: peek via a scratch measurement on a copy.
        clone = self.copy()
        outcome = clone.measure(q, rng=np.random.default_rng(0))
        return 1.0 - 2.0 * outcome

    def copy(self) -> "StabilizerState":
        clone = StabilizerState(self.num_qubits)
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        return clone


def simulate_clifford(circuit: QuantumCircuit) -> StabilizerState:
    """Run a Clifford circuit from ``|0...0>`` on the tableau engine."""
    if not is_clifford_circuit(circuit):
        offenders = sorted(
            {g.name for g in circuit if g.name not in CLIFFORD_GATES}
        )
        raise SimulationError(
            f"{circuit.name} contains non-Clifford gates {offenders}"
        )
    return StabilizerState(circuit.num_qubits).run(circuit)
