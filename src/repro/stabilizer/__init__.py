"""Stabilizer-formalism simulation (paper Section II-B)."""

from repro.stabilizer.tableau import (
    CLIFFORD_GATES,
    StabilizerState,
    is_clifford_circuit,
    simulate_clifford,
)

__all__ = [
    "CLIFFORD_GATES",
    "StabilizerState",
    "is_clifford_circuit",
    "simulate_clifford",
]
