"""Reproductions of every table and figure in the paper's evaluation.

Importing this package registers all experiments; run one with
``run_experiment("fig12")`` or enumerate ids with ``all_experiment_ids()``.
"""

from repro.experiments import (  # noqa: F401 - imports register experiments
    fig02_baseline_breakdown,
    fig03_naive_normalized,
    fig04_naive_breakdown,
    fig06_timeline,
    fig07_amplitude_distribution,
    fig09_reorder_involvement,
    fig10_residuals,
    fig11_codec_structure,
    fig12_overall,
    fig13_transfer,
    fig14_codec_overhead,
    fig15_roofline,
    fig16_other_simulators,
    fig17_v100_a100,
    fig19_multigpu,
    fleet_scaling,
    tab2_involvement,
    tab3_deep_circuits,
)
from repro.experiments.base import (
    ExperimentResult,
    all_experiment_ids,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "all_experiment_ids",
    "run_experiment",
]
