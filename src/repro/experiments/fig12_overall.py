"""Fig. 12 - overall performance of the six versions (+ CPU-OpenMP).

Paper findings at 34 qubits (P100 server):

* Overlap / Pruning / Reorder / Q-GPU cut execution time by 24.03% /
  47.69% / 58.60% / 71.89% on average (Q-GPU = 3.55x over Baseline);
* Q-GPU beats CPU-OpenMP by 1.49x on average, but not on hchain and rqc;
* gs, qft, qaoa and iqp gain the most; hchain and rqc the least.
"""

from __future__ import annotations

from repro.circuits.library import FAMILIES
from repro.comparisons.models import estimate_cpu_openmp
from repro.core.versions import ALL_VERSIONS, BASELINE
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import cached_circuit, normalized, timed_run

SIZES = (30, 31, 32, 33, 34)


@register("fig12")
def run(sizes: tuple[int, ...] = SIZES) -> ExperimentResult:
    version_names = [v.name for v in ALL_VERSIONS] + ["CPU-OpenMP"]
    result = ExperimentResult(
        experiment_id="fig12",
        title="Normalized execution time by version (lower is better)",
        headers=["circuit"] + version_names,
    )
    table: dict[tuple[str, int], dict[str, float]] = {}
    for family in FAMILIES:
        for size in sizes:
            base = timed_run(family, size, BASELINE).total_seconds
            row: dict[str, float] = {}
            for version in ALL_VERSIONS:
                seconds = timed_run(family, size, version).total_seconds
                row[version.name] = normalized(seconds, base)
            cpu = estimate_cpu_openmp(cached_circuit(family, size))
            row["CPU-OpenMP"] = normalized(cpu.total_seconds, base)
            table[(family, size)] = row
            result.rows.append(
                [f"{family}_{size}"] + [row[name] for name in version_names]
            )
    largest = max(sizes)
    averages = {
        name: sum(table[(f, largest)][name] for f in FAMILIES) / len(FAMILIES)
        for name in version_names
    }
    result.rows.append(
        [f"average@{largest}"] + [averages[name] for name in version_names]
    )
    result.data["normalized"] = table
    result.data["averages_at_largest"] = averages
    result.notes.append(
        "paper averages at 34q: Overlap 0.76, Pruning 0.52, Reorder 0.41, "
        "Q-GPU 0.28, CPU-OpenMP 0.42 of Baseline"
    )
    result.notes.append(
        "our reorder pass delays involvement more than the paper's "
        "randomized implementation, so Reorder/Q-GPU land lower; the "
        "version ordering and per-circuit winners match"
    )
    return result
