"""Fig. 13 - data-transfer time normalized to the Naive version.

Paper findings: Overlap uniformly removes ~44.6% of transfer time
(bidirectional overlap, circuit-independent); Pruning/Reorder savings are
circuit-dependent (large for iqp/gs, small for qaoa/qft/qf); Compression
helps the compressible circuits (qaoa, gs, qft, qf).
"""

from __future__ import annotations

from repro.circuits.library import FAMILIES
from repro.core.versions import ALL_VERSIONS, NAIVE
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import HEADLINE_SIZE, normalized, timed_run

STREAMING_VERSIONS = [v for v in ALL_VERSIONS if v.dynamic_allocation]


@register("fig13")
def run(num_qubits: int = HEADLINE_SIZE) -> ExperimentResult:
    version_names = [v.name for v in STREAMING_VERSIONS]
    result = ExperimentResult(
        experiment_id="fig13",
        title=f"Data-transfer time normalized to Naive ({num_qubits} qubits)",
        headers=["circuit"] + version_names,
    )
    table: dict[str, dict[str, float]] = {}
    for family in FAMILIES:
        reference = timed_run(family, num_qubits, NAIVE).transfer_seconds
        row: dict[str, float] = {}
        for version in STREAMING_VERSIONS:
            timing = timed_run(family, num_qubits, version)
            row[version.name] = normalized(timing.transfer_seconds, reference)
        table[family] = row
        result.rows.append([f"{family}_{num_qubits}"] + [row[n] for n in version_names])
    averages = {
        name: sum(table[f][name] for f in FAMILIES) / len(FAMILIES)
        for name in version_names
    }
    result.rows.append(["average"] + [averages[n] for n in version_names])
    result.data["normalized"] = table
    result.data["averages"] = averages
    result.notes.append(
        "paper: Overlap removes ~44.6% of transfer time uniformly; "
        "pruning/reorder savings depend on the circuit"
    )
    return result
