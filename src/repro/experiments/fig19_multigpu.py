"""Fig. 19 - multi-GPU performance (4x P4 over PCIe, 4x V100 over NVLink).

Paper findings: Q-GPU beats the QISKit-Aer multi-GPU baseline by 2.97x on
the PCIe P4 server and 2.98x on the NVLink V100 server - CPU<->GPU traffic,
not GPU<->GPU traffic, dominates multi-GPU QCS, so the same optimizations
carry over.
"""

from __future__ import annotations

from repro.circuits.library import FAMILIES
from repro.core.detailed import DetailedExecutor
from repro.core.versions import BASELINE, OVERLAP, QGPU
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import cached_circuit, normalized, timed_run
from repro.hardware.machine import Machine
from repro.hardware.specs import MULTI_P4_MACHINE, MULTI_V100_MACHINE
from repro.hardware.trace import to_chrome_trace
from repro.obs.export import spans_from_events
from repro.obs.fleet import fleet_analysis

#: The V100 server runs larger circuits (4x16 GB vs 4x8 GB of pool memory).
P4_SIZE = 32
V100_SIZE = 33

#: Scaled-down chunk-granular run used for the per-device fleet telemetry
#: (the DES executor is capped at 1024 chunks; same knobs as its tests).
FLEET_QUBITS = 20
FLEET_CHUNK_BITS = 14
FLEET_CAPACITY = 1 << 22


def _fleet_telemetry(machine, devices: int = 4) -> dict:
    """Per-device busy/idle seconds and the comm matrix of a DES run.

    Runs the chunk-granular executor at a scaled-down width on ``machine``
    and reduces the trace with :func:`repro.obs.fleet.fleet_analysis`;
    ``time_scale=1.0`` keeps the trace in model seconds.
    """
    executor = DetailedExecutor(
        Machine(machine),
        chunk_bits=FLEET_CHUNK_BITS,
        capacity_bytes=FLEET_CAPACITY,
        devices=devices,
    )
    run = executor.execute(cached_circuit("qft", FLEET_QUBITS), OVERLAP)
    analysis = fleet_analysis(
        spans_from_events(to_chrome_trace(run.timeline, time_scale=1.0))
    )
    return {
        "devices": {
            stats.device: {
                "busy_seconds": stats.busy,
                "idle_seconds": stats.idle,
            }
            for stats in analysis.devices
        },
        "comm_matrix": {
            src: dict(row) for src, row in run.comm_matrix().items()
        },
        "transfer_bytes": run.bytes_h2d + run.bytes_d2h,
        "imbalance": analysis.imbalance,
        "makespan_seconds": run.makespan,
    }


@register("fig19")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig19",
        title="Multi-GPU: Q-GPU normalized to Aer multi-GPU baseline",
        headers=["circuit", "4xP4 (PCIe)", "4xV100 (NVLink)"],
    )
    table: dict[str, dict[str, float]] = {}
    for family in FAMILIES:
        row: dict[str, float] = {}
        for label, machine, size in (
            ("4xP4 (PCIe)", MULTI_P4_MACHINE, P4_SIZE),
            ("4xV100 (NVLink)", MULTI_V100_MACHINE, V100_SIZE),
        ):
            base = timed_run(family, size, BASELINE, machine=machine)
            ours = timed_run(family, size, QGPU, machine=machine)
            row[label] = normalized(ours.total_seconds, base.total_seconds)
        table[family] = row
        result.rows.append(
            [family, row["4xP4 (PCIe)"], row["4xV100 (NVLink)"]]
        )
    averages = {
        label: sum(row[label] for row in table.values()) / len(table)
        for label in ("4xP4 (PCIe)", "4xV100 (NVLink)")
    }
    result.rows.append(["average", averages["4xP4 (PCIe)"], averages["4xV100 (NVLink)"]])
    result.data["normalized"] = table
    result.data["averages"] = averages
    result.data["fleet"] = {
        "4xP4 (PCIe)": _fleet_telemetry(MULTI_P4_MACHINE),
        "4xV100 (NVLink)": _fleet_telemetry(MULTI_V100_MACHINE),
    }
    result.notes.append(
        "paper: 66.38% / 66.46% time reduction (2.97x / 2.98x speedup)"
    )
    result.notes.append(
        "data['fleet']: per-device busy/idle and comm matrix from a "
        f"scaled-down ({FLEET_QUBITS}-qubit) chunk-granular DES run"
    )
    return result
