"""Fig. 19 - multi-GPU performance (4x P4 over PCIe, 4x V100 over NVLink).

Paper findings: Q-GPU beats the QISKit-Aer multi-GPU baseline by 2.97x on
the PCIe P4 server and 2.98x on the NVLink V100 server - CPU<->GPU traffic,
not GPU<->GPU traffic, dominates multi-GPU QCS, so the same optimizations
carry over.
"""

from __future__ import annotations

from repro.circuits.library import FAMILIES
from repro.core.versions import BASELINE, QGPU
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import normalized, timed_run
from repro.hardware.specs import MULTI_P4_MACHINE, MULTI_V100_MACHINE

#: The V100 server runs larger circuits (4x16 GB vs 4x8 GB of pool memory).
P4_SIZE = 32
V100_SIZE = 33


@register("fig19")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig19",
        title="Multi-GPU: Q-GPU normalized to Aer multi-GPU baseline",
        headers=["circuit", "4xP4 (PCIe)", "4xV100 (NVLink)"],
    )
    table: dict[str, dict[str, float]] = {}
    for family in FAMILIES:
        row: dict[str, float] = {}
        for label, machine, size in (
            ("4xP4 (PCIe)", MULTI_P4_MACHINE, P4_SIZE),
            ("4xV100 (NVLink)", MULTI_V100_MACHINE, V100_SIZE),
        ):
            base = timed_run(family, size, BASELINE, machine=machine)
            ours = timed_run(family, size, QGPU, machine=machine)
            row[label] = normalized(ours.total_seconds, base.total_seconds)
        table[family] = row
        result.rows.append(
            [family, row["4xP4 (PCIe)"], row["4xV100 (NVLink)"]]
        )
    averages = {
        label: sum(row[label] for row in table.values()) / len(table)
        for label in ("4xP4 (PCIe)", "4xV100 (NVLink)")
    }
    result.rows.append(["average", averages["4xP4 (PCIe)"], averages["4xV100 (NVLink)"]])
    result.data["normalized"] = table
    result.data["averages"] = averages
    result.notes.append(
        "paper: 66.38% / 66.46% time reduction (2.97x / 2.98x speedup)"
    )
    return result
