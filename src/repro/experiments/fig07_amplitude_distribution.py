"""Fig. 7 - state-amplitude distribution of hchain_10 along the circuit.

Paper finding: after 0 operations almost every amplitude is zero; as more
qubits become involved (30, 60, 90 operations) the state fills in with
non-zero values - the window in which pruning pays off.
"""

from __future__ import annotations

from repro.analysis.amplitudes import amplitude_snapshots
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import cached_circuit

CHECKPOINTS = (0, 30, 60, 90)


@register("fig7")
def run(num_qubits: int = 10) -> ExperimentResult:
    circuit = cached_circuit("hchain", num_qubits)
    checkpoints = [min(c, len(circuit)) for c in CHECKPOINTS]
    snapshots = amplitude_snapshots(circuit, checkpoints)
    result = ExperimentResult(
        experiment_id="fig7",
        title=f"hchain_{num_qubits} amplitude distribution along the circuit",
        headers=["ops_applied", "involved_qubits", "nonzero_frac", "max_|amp|"],
    )
    for snap in snapshots:
        result.rows.append(
            [
                snap.gates_applied,
                snap.involved_qubits,
                snap.nonzero_fraction,
                float(abs(snap.amplitudes).max()),
            ]
        )
    result.data["snapshots"] = snapshots
    result.notes.append(
        "paper: mostly zero at op 0, progressively dense by op 90"
    )
    return result
