"""Fig. 16 - comparison with Google Qsim-Cirq and Microsoft QDK.

Paper findings: Q-GPU is 2.02x faster than Qsim-Cirq (on gs and hlf, the
circuits Qsim's OpenQASM import supported) and 10.82x faster than QDK (on
qft, iqp, hlf and gs, the circuits that survived the Q# conversion).
"""

from __future__ import annotations

from repro.circuits.qasm import to_qasm
from repro.comparisons.models import (
    QDK_SUPPORTED_FAMILIES,
    QSIM_SUPPORTED_FAMILIES,
    estimate_qdk,
    estimate_qsim_cirq,
)
from repro.core.versions import QGPU
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import cached_circuit, timed_run

SIZES = (30, 32, 34)


@register("fig16")
def run(sizes: tuple[int, ...] = SIZES) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig16",
        title="Q-GPU vs Qsim-Cirq and QDK (speedup of Q-GPU, higher is better)",
        headers=["circuit", "simulator", "simulator_s", "qgpu_s", "speedup"],
    )
    speedups: dict[str, list[float]] = {"Qsim-Cirq": [], "QDK": []}
    plans = [
        ("Qsim-Cirq", QSIM_SUPPORTED_FAMILIES, estimate_qsim_cirq),
        ("QDK", QDK_SUPPORTED_FAMILIES, estimate_qdk),
    ]
    for simulator, families, estimator in plans:
        for family in families:
            for size in sizes:
                circuit = cached_circuit(family, size)
                # The paper's interchange path: circuits are exported to
                # OpenQASM before import into the external simulator.
                to_qasm(circuit)
                other = estimator(circuit).total_seconds
                ours = timed_run(family, size, QGPU).total_seconds
                speedup = other / ours if ours else float("inf")
                speedups[simulator].append(speedup)
                result.rows.append(
                    [f"{family}_{size}", simulator, other, ours, speedup]
                )
    averages = {
        name: sum(values) / len(values) for name, values in speedups.items()
    }
    for name, value in averages.items():
        result.rows.append([f"average vs {name}", name, "", "", value])
    result.data["speedups"] = speedups
    result.data["averages"] = averages
    result.notes.append("paper: 2.02x over Qsim-Cirq, 10.82x over QDK")
    return result
