"""Fig. 2 - baseline execution-time breakdown.

Paper finding: for large circuits (34 qubits on the P100 server), 88.89% of
baseline execution time is CPU compute, 10.29% is amplitude exchange and
synchronisation, and only 0.82% is GPU compute - the GPU is essentially
idle under static chunk allocation.
"""

from __future__ import annotations

from repro.analysis.breakdown import average_breakdown, breakdown
from repro.circuits.library import FAMILIES
from repro.core.versions import BASELINE
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import HEADLINE_SIZE, timed_run


@register("fig2")
def run(num_qubits: int = HEADLINE_SIZE) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig2",
        title=f"Baseline execution time breakdown ({num_qubits} qubits, P100)",
        headers=["circuit", "total_s", "cpu_%", "transfer_%", "gpu_%"],
    )
    rows = []
    for family in FAMILIES:
        timing = timed_run(family, num_qubits, BASELINE)
        share = breakdown(timing)
        rows.append(share)
        result.rows.append(
            [
                f"{family}_{num_qubits}",
                share.total_seconds,
                100 * share.cpu,
                100 * share.transfer,
                100 * share.gpu,
            ]
        )
    mean = average_breakdown(rows)
    result.rows.append(
        ["average", sum(b.total_seconds for b in rows) / len(rows),
         100 * mean["cpu"], 100 * mean["transfer"], 100 * mean["gpu"]]
    )
    result.data["breakdowns"] = rows
    result.data["average"] = mean
    result.notes.append(
        "paper: cpu 88.89%, exchange+sync 10.29%, gpu 0.82% on average"
    )
    return result
