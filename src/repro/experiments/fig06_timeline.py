"""Fig. 6 - execution timelines of the stacked optimizations.

The paper's Fig. 6 illustrates, on one workload, how each optimization
removes cycles: overlap saves (a) over the serialized transfers, pruning
saves (b) more, reordering (c), and compression (d).  This experiment
reconstructs those timelines for a real workload (gs at a width that
exceeds GPU memory) by running every version through the timed executor,
and renders the overlap structure of the streaming disciplines as ASCII
Gantt charts from explicit event schedules.
"""

from __future__ import annotations

from repro.analysis.timeline import gantt
from repro.core.schedule import GateStreamPlan, stream_makespan
from repro.core.versions import ALL_VERSIONS, BASELINE
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import normalized, timed_run
from repro.hardware.pipeline import StageTimes

FAMILY = "gs"
NUM_QUBITS = 33


@register("fig6")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title=f"Execution timelines, {FAMILY}_{NUM_QUBITS} on the P100 server",
        headers=["version", "total_s", "vs_baseline", "cycles_saved_vs_prev_%"],
    )
    baseline = timed_run(FAMILY, NUM_QUBITS, BASELINE).total_seconds
    previous = None
    times: dict[str, float] = {}
    for version in ALL_VERSIONS:
        seconds = timed_run(FAMILY, NUM_QUBITS, version).total_seconds
        times[version.name] = seconds
        saved = 100.0 * (1.0 - seconds / previous) if previous else 0.0
        result.rows.append(
            [version.name, seconds, normalized(seconds, baseline), saved]
        )
        previous = seconds
    result.data["times"] = times

    # Gantt illustration: four uniform streaming gates, naive vs overlap.
    plans = [
        GateStreamPlan(f"g{k}", num_batches=3, stages=StageTimes(2.0, 0.5, 2.0))
        for k in range(4)
    ]
    naive = stream_makespan(plans, overlap=False)
    overlap = stream_makespan(plans, overlap=True)
    result.data["gantt_naive"] = gantt(naive, ["h2d", "gpu", "d2h"])
    result.data["gantt_overlap"] = gantt(overlap, ["h2d", "gpu", "d2h"])
    result.notes.append("naive single-stream timeline (paper Fig. 6 (ii)):")
    result.notes.extend(result.data["gantt_naive"].splitlines())
    result.notes.append("overlapped double-buffer timeline (Fig. 6 (iii)):")
    result.notes.extend(result.data["gantt_overlap"].splitlines())
    result.notes.append(
        "paper: each stacked optimization removes additional cycles"
    )
    return result
