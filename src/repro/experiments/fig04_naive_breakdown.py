"""Fig. 4 - execution-time breakdown of the naive approach.

Paper finding: under naive dynamic allocation the CPU-compute share
collapses (everything now updates on the GPU) but data movement dominates
the runtime, leaving the GPU starved.
"""

from __future__ import annotations

from repro.analysis.breakdown import average_breakdown, breakdown
from repro.circuits.library import FAMILIES
from repro.core.versions import NAIVE
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import HEADLINE_SIZE, timed_run


@register("fig4")
def run(num_qubits: int = HEADLINE_SIZE) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title=f"Naive approach execution time breakdown ({num_qubits} qubits)",
        headers=["circuit", "total_s", "transfer_%", "gpu_%", "cpu_%"],
    )
    rows = []
    for family in FAMILIES:
        timing = timed_run(family, num_qubits, NAIVE)
        share = breakdown(timing)
        rows.append(share)
        result.rows.append(
            [
                f"{family}_{num_qubits}",
                share.total_seconds,
                100 * share.transfer,
                100 * share.gpu,
                100 * share.cpu,
            ]
        )
    mean = average_breakdown(rows)
    result.rows.append(
        ["average", sum(b.total_seconds for b in rows) / len(rows),
         100 * mean["transfer"], 100 * mean["gpu"], 100 * mean["cpu"]]
    )
    result.data["breakdowns"] = rows
    result.data["average"] = mean
    result.notes.append("paper: data movement dominates; CPU share ~0")
    return result
