"""Fig. 11 - structure of the GPU compression pipeline.

Fig. 11 is the paper's diagram of how a chunk is carved for the GFC
kernels: the chunk splits into *segments* (one per warp), each segment into
32-double *micro-chunks* (one lane per double), with residuals computed
between consecutive micro-chunks.  This experiment reproduces the diagram
as measured data: for a real amplitude chunk of each representative
circuit, the segment layout, per-segment ratios, and the whole-chunk ratio
under increasing warp parallelism.
"""

from __future__ import annotations

from repro.compression.gfc import MICRO_CHUNK, compression_ratio
from repro.compression.profile import live_region
from repro.core.involvement import InvolvementTracker
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import cached_circuit
from repro.statevector.state import StateVector

CIRCUITS = ("qaoa", "iqp")
CHUNK_QUBITS = 14  # one 2^14-amplitude chunk = 2^15 doubles
SEGMENT_COUNTS = (1, 4, 16, 64)


@register("fig11")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig11",
        title="GFC pipeline structure on real amplitude chunks",
        headers=["circuit", "segments", "micro_chunks/segment", "ratio"],
    )
    ratios: dict[tuple[str, int], float] = {}
    for family in CIRCUITS:
        circuit = cached_circuit(family, CHUNK_QUBITS)
        # Snapshot inside the diagonal stretch (the compressible regime),
        # compressing only the live (streamed) region as the runtime does.
        state = StateVector(CHUNK_QUBITS)
        tracker = InvolvementTracker(CHUNK_QUBITS)
        for gate in list(circuit)[: int(0.7 * len(circuit))]:
            state.apply(gate)
            tracker.involve(gate)
        chunk = live_region(state.amplitudes, tracker.mask)
        doubles = 2 * chunk.size
        for segments in SEGMENT_COUNTS:
            ratio = compression_ratio(chunk, num_segments=segments)
            ratios[(family, segments)] = ratio
            result.rows.append(
                [f"{family}_{CHUNK_QUBITS}", segments,
                 max(1, doubles // segments // MICRO_CHUNK), ratio]
            )
    result.data["ratios"] = ratios
    result.notes.append(
        "each segment is one warp's work unit; micro-chunks are 32 doubles "
        "(one per lane); more warps = more codec parallelism for a "
        "marginally worse ratio (each segment restarts its predictor)"
    )
    return result
