"""Shared helpers for the experiment modules."""

from __future__ import annotations

from functools import lru_cache

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import get_circuit
from repro.core.executor import TimedResult
from repro.core.simulator import QGpuSimulator
from repro.core.versions import VersionConfig
from repro.hardware.specs import MachineSpec, PAPER_MACHINE

#: Qubit counts the paper's large-scale figures sweep (Fig. 12).
LARGE_SIZES = (30, 31, 32, 33, 34)
#: The width used for single-size tables (Table II, Figs. 2/4/13/14).
HEADLINE_SIZE = 34


@lru_cache(maxsize=256)
def cached_circuit(family: str, num_qubits: int, seed: int = 0) -> QuantumCircuit:
    """Benchmark circuit, cached across experiments in one process."""
    return get_circuit(family, num_qubits, seed=seed)


def timed_run(
    family: str,
    num_qubits: int,
    version: VersionConfig,
    machine: MachineSpec = PAPER_MACHINE,
) -> TimedResult:
    """Model one circuit under one version on one machine."""
    circuit = cached_circuit(family, num_qubits)
    return QGpuSimulator(machine=machine, version=version).estimate(circuit)


def normalized(value: float, reference: float) -> float:
    """``value / reference`` guarded against a zero reference."""
    return value / reference if reference else float("inf")
