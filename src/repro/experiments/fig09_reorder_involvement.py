"""Fig. 9 - qubit involvement during simulation under the three orders.

Paper finding (22-qubit circuits): forward-looking reordering delays
involvement the most; greedy helps qft_22 but can be *worse* than the
original order for gs_22; neither helps qaoa_22 (dense dependencies).
"""

from __future__ import annotations

from repro.analysis.asciiplot import line_plot
from repro.circuits.circuit import QuantumCircuit
from repro.core.involvement import involvement_trace, live_fraction_trace
from repro.core.reorder import reorder
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import cached_circuit

CIRCUITS = ("gs", "qft", "qaoa")
STRATEGIES = ("original", "greedy", "forward_looking")


def involvement_summary(circuit: QuantumCircuit) -> tuple[int, float]:
    """(gates until full involvement, mean live-amplitude fraction)."""
    trace = live_fraction_trace(circuit)
    full = circuit.gates_until_full_involvement()
    mean_live = sum(trace) / len(trace) if trace else 1.0
    return full, mean_live


@register("fig9")
def run(num_qubits: int = 22) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig9",
        title=f"Qubit involvement under reordering ({num_qubits} qubits)",
        headers=[
            "circuit", "order", "ops_to_full_involvement", "mean_live_fraction",
        ],
    )
    summaries: dict[tuple[str, str], tuple[int, float]] = {}
    for family in CIRCUITS:
        base = cached_circuit(family, num_qubits)
        curves: dict[str, list[float]] = {}
        for strategy in STRATEGIES:
            ordered = reorder(base, strategy)
            full, mean_live = involvement_summary(ordered)
            summaries[(family, strategy)] = (full, mean_live)
            curves[strategy] = [
                float(mask.bit_count()) for mask in involvement_trace(ordered)
            ]
            result.rows.append(
                [f"{family}_{num_qubits}", strategy, full, mean_live]
            )
        result.notes.append(f"{family}_{num_qubits} involvement curves:")
        result.notes.extend(
            line_plot(
                curves, y_max=float(num_qubits),
                x_label="gates executed ->",
            ).splitlines()
        )
    result.data["summaries"] = summaries
    result.notes.append(
        "paper: forward-looking delays involvement most for gs/qft; "
        "qaoa is reorder-resistant"
    )
    return result
