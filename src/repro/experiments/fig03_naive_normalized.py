"""Fig. 3 - naive dynamic allocation, normalized execution time.

Paper finding: dynamically streaming every chunk to the GPU (the intuitive
fix for baseline GPU idleness) makes every circuit *slower* than the
baseline, because serialised data movement dominates.
"""

from __future__ import annotations

from repro.circuits.library import FAMILIES
from repro.core.versions import BASELINE, NAIVE
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import normalized, timed_run

SIZES = (31, 32, 33, 34)


@register("fig3")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig3",
        title="Naive dynamic allocation: execution time normalized to Baseline",
        headers=["circuit"] + [f"n={n}" for n in SIZES],
    )
    table: dict[str, dict[int, float]] = {}
    for family in FAMILIES:
        row: list[object] = [family]
        table[family] = {}
        for size in SIZES:
            base = timed_run(family, size, BASELINE).total_seconds
            naive = timed_run(family, size, NAIVE).total_seconds
            ratio = normalized(naive, base)
            table[family][size] = ratio
            row.append(ratio)
        result.rows.append(row)
    result.data["normalized"] = table
    result.notes.append(
        "paper: no circuit improves under naive dynamic allocation"
    )
    return result
