"""Fig. 17 - Q-GPU on the V100 and A100 servers.

Paper findings: Q-GPU cuts execution time by 53.24% on the V100 server and
27.05% on the A100 server; the A100's larger device memory (40 GB) gives
the *baseline* higher GPU residency there, shrinking Q-GPU's headroom, and
the small hosts cannot hold the largest states at all.
"""

from __future__ import annotations

from repro.circuits.library import FAMILIES
from repro.core.versions import BASELINE, QGPU
from repro.errors import SimulationError
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import normalized, timed_run
from repro.hardware.specs import A100_MACHINE, V100_MACHINE

#: 31 qubits is skipped: a 32 GiB state sits exactly on the V100-32GB
#: capacity knife-edge, where the static baseline is ~fully resident and
#: comparisons are meaningless (the paper does not report that point).
SIZES = (30, 32)


@register("fig17")
def run(sizes: tuple[int, ...] = SIZES) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig17",
        title="Q-GPU normalized time on V100 and A100 servers",
        headers=["circuit", "V100", "A100"],
    )
    table: dict[tuple[str, int], dict[str, float]] = {}
    reductions: dict[str, list[float]] = {"V100": [], "A100": []}
    for family in FAMILIES:
        for size in sizes:
            row: dict[str, float] = {}
            for label, machine in (("V100", V100_MACHINE), ("A100", A100_MACHINE)):
                try:
                    base = timed_run(family, size, BASELINE, machine=machine)
                    ours = timed_run(family, size, QGPU, machine=machine)
                except SimulationError:
                    row[label] = float("nan")  # exceeds host memory
                    continue
                ratio = normalized(ours.total_seconds, base.total_seconds)
                row[label] = ratio
                reductions[label].append(1.0 - ratio)
            table[(family, size)] = row
            result.rows.append(
                [f"{family}_{size}", row.get("V100"), row.get("A100")]
            )
    averages = {
        label: sum(values) / len(values) if values else 0.0
        for label, values in reductions.items()
    }
    result.rows.append(
        ["average reduction", averages["V100"], averages["A100"]]
    )
    result.data["normalized"] = table
    result.data["average_reduction"] = averages
    result.notes.append(
        "paper: 53.24% reduction on V100, 27.05% on A100 (larger device "
        "memory helps the baseline); >=33-qubit states exceed both hosts"
    )
    return result
