"""Fig. 15 - roofline analysis of qft and iqp on a V100.

Paper findings: QCS is memory-bound (all points under the bandwidth slope);
runs fitting GPU memory (<= 29 qubits) sit near the ceiling; past 31 qubits
the Baseline collapses to very low FLOPS, Naive recovers some throughput at
lower arithmetic intensity, and Q-GPU achieves far more than either.
"""

from __future__ import annotations

from repro.analysis.roofline import RooflinePoint
from repro.core.versions import BASELINE, NAIVE, QGPU
from repro.experiments.base import ExperimentResult, register
from repro.hardware.specs import MachineSpec, PCIE3_X16, V100_16GB, XEON_4114_DUAL
from repro.obs.roofline import model_roofline_points

#: The paper's roofline server: V100 16 GB with a capable host.
ROOFLINE_MACHINE = MachineSpec(
    "V100 roofline server (Sec. V-B)", cpu=XEON_4114_DUAL, gpus=(V100_16GB,),
    link=PCIE3_X16, host_memory_bytes=384 * 2**30,
)

CIRCUITS = ("qft", "iqp")
SIZES = (27, 29, 31, 33)
VERSIONS = (BASELINE, NAIVE, QGPU)


@register("fig15")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig15",
        title="Roofline points on V100 (GFLOPS vs arithmetic intensity)",
        headers=["point", "AI_flops_per_byte", "achieved_GFLOPS",
                 "ceiling_GFLOPS", "pct_of_ceiling"],
    )
    points: dict[tuple[str, int, str], RooflinePoint] = {}
    # The sweep itself lives in repro.obs.roofline so the live-telemetry
    # side and this experiment stay on one implementation; the sequence
    # order matches the historical loop, so the rows are byte-identical.
    for (family, size, version_name), point in model_roofline_points(
        CIRCUITS, SIZES, VERSIONS, machine=ROOFLINE_MACHINE, gpu=V100_16GB
    ):
        points[(family, size, version_name)] = point
        result.rows.append(
            [
                f"{family}_{size}/{version_name}",
                point.arithmetic_intensity,
                point.achieved_flops / 1e9,
                point.ceiling_flops / 1e9,
                100 * point.efficiency,
            ]
        )
    result.data["points"] = points
    result.notes.append(
        "paper: all points memory-bound; baseline collapses past 31 qubits"
    )
    return result
