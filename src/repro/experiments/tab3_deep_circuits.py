"""Table III - pruning and reordering on deep random circuits.

Paper findings: on the Google deep circuit (grqc_32) Reorder cuts 41.47%
off the Overlap version; on two deep random circuits (rqc_31, rqc_32) it
cuts ~17.7% - dependent gates limit, but do not eliminate, the benefit in
deep circuits.
"""

from __future__ import annotations

from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import OVERLAP, REORDER
from repro.experiments.base import ExperimentResult, register

#: (display name, family, qubits, generator depth) per Table III row.  The
#: depths are chosen so each circuit's dependency density matches the
#: reduction regime the paper reports (grqc ~41%, rqc ~18%); absolute
#: operation counts differ from Table III's (see EXPERIMENTS.md).
DEEP_CIRCUITS = (
    ("grqc_32", "grqc", 32, 16),
    ("rqc_31", "rqc", 31, 32),
    ("rqc_32", "rqc", 32, 32),
)


@register("tab3")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="tab3",
        title="Deep circuits: Overlap vs Reorder",
        headers=["circuit", "total_ops", "overlap_s", "reorder_s", "reduction_%"],
    )
    reductions: dict[str, float] = {}
    for name, family, qubits, depth in DEEP_CIRCUITS:
        circuit = get_circuit(family, qubits, depth=depth)
        overlap_s = QGpuSimulator(version=OVERLAP).estimate(circuit).total_seconds
        reorder_s = QGpuSimulator(version=REORDER).estimate(circuit).total_seconds
        reduction = 100.0 * (1.0 - reorder_s / overlap_s) if overlap_s else 0.0
        reductions[name] = reduction
        result.rows.append([name, len(circuit), overlap_s, reorder_s, reduction])
    result.data["reductions"] = reductions
    result.notes.append(
        "paper: 41.47% on grqc_32, 17.99%/17.39% on rqc_31/rqc_32"
    )
    return result
