"""Fig. 10 - residual distributions of qaoa and iqp.

Paper finding: qaoa's consecutive-amplitude residuals concentrate near zero
(highly compressible); iqp's are widely spread (poorly compressible).

The snapshot is taken 85% of the way through each circuit - inside qaoa's
cost layer, where the runtime spends ~90% of its gates; the terminal mixer
layer scrambles the state, but by then qaoa's streaming is already done.
The table also reports the per-gate mean GFC ratio (what the executor
actually uses), measured by compressing the state after every sampled gate.
"""

from __future__ import annotations

from repro.compression.gfc import compression_ratio
from repro.compression.profile import live_region, measure_profile
from repro.compression.residual import residual_stats
from repro.core.involvement import InvolvementTracker
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import cached_circuit
from repro.statevector.state import StateVector

CIRCUITS = ("qaoa", "iqp")
#: Snapshot inside qaoa's cost layer (before the terminal mixer scrambles
#: the state - by then its streaming is over anyway).
SNAPSHOT_FRACTION = 0.7


@register("fig10")
def run(num_qubits: int = 16) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig10",
        title=f"Residual distributions and GFC ratios ({num_qubits} qubits)",
        headers=[
            "circuit", "near_zero_residual_%", "mean_|residual|",
            "snapshot_gfc_ratio", "per_gate_mean_ratio",
        ],
    )
    stats = {}
    for family in CIRCUITS:
        circuit = cached_circuit(family, num_qubits)
        prefix = int(SNAPSHOT_FRACTION * len(circuit))
        state = StateVector(num_qubits)
        tracker = InvolvementTracker(num_qubits)
        for gate in list(circuit)[:prefix]:
            state.apply(gate)
            tracker.involve(gate)
        # Residuals and ratios over the live (streamed) region only; the
        # pruned all-zero remainder never reaches the compressor.
        live = live_region(state.amplitudes, tracker.mask)
        res = residual_stats(live, tolerance=1e-3)
        snapshot_ratio = compression_ratio(live, num_segments=8)
        profile = measure_profile(family, num_qubits)
        stats[family] = (res, snapshot_ratio, profile.mean_ratio)
        result.rows.append(
            [f"{family}_{num_qubits}", 100 * res.near_zero_fraction,
             res.mean_abs, snapshot_ratio, profile.mean_ratio]
        )
    result.data["stats"] = stats
    result.notes.append(
        "paper: qaoa residuals near zero => compressible; iqp dispersed"
    )
    return result
