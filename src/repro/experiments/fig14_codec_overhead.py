"""Fig. 14 - compression and decompression overheads.

Paper finding: GFC compression and decompression cost 3.31% and 2.84% of
Q-GPU execution time respectively - negligible against the transfer savings.
"""

from __future__ import annotations

from repro.circuits.library import FAMILIES
from repro.core.versions import QGPU
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import HEADLINE_SIZE, timed_run


@register("fig14")
def run(num_qubits: int = HEADLINE_SIZE) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig14",
        title=f"GFC codec overhead in Q-GPU ({num_qubits} qubits)",
        headers=["circuit", "total_s", "codec_s", "codec_%"],
    )
    overheads: dict[str, float] = {}
    for family in FAMILIES:
        timing = timed_run(family, num_qubits, QGPU)
        pct = 100.0 * timing.codec_seconds / timing.total_seconds if timing.total_seconds else 0.0
        overheads[family] = pct
        result.rows.append(
            [f"{family}_{num_qubits}", timing.total_seconds,
             timing.codec_seconds, pct]
        )
    average = sum(overheads.values()) / len(overheads)
    result.rows.append(["average", "", "", average])
    result.data["overhead_pct"] = overheads
    result.data["average_pct"] = average
    result.notes.append(
        "paper: compression 3.31% + decompression 2.84% of execution time "
        "(we report the combined codec share)"
    )
    return result
