"""Fleet scaling study - strong/weak multi-GPU sweeps (2-64 devices).

The ROADMAP's scale-out item asks how the Q-GPU streaming discipline holds
up as the fleet grows.  Two classic sweeps over the paper's circuit
families on the 4x V100 server scaled to 2-64 devices:

* **strong scaling** - fixed problem (32 qubits); speedup is the 1-GPU
  time over the d-GPU time, efficiency speedup/d.  Chunk streaming is
  link-bound, so the model predicts near-linear scaling while every
  device has its own link and enough chunk groups to stay busy;
* **weak scaling** - the state doubles with the device count
  (``n = 26 + log2(d)``), keeping per-device amplitudes constant;
  efficiency is the 1-GPU base-size time over the d-GPU scaled-size time.

Both sweeps use the closed-form :class:`~repro.core.executor.TimedExecutor`
(the chunk-granular DES executor validates the same model at small sizes;
``benchmarks/test_fleet_scaling.py`` runs it for the comm-matrix identity
and emits ``BENCH_fleet.json`` for the perf ledger).  ``QGPU_BENCH_SMOKE=1``
switches to the reduced smoke grid CI sweeps.
"""

from __future__ import annotations

import math
import os

from repro.circuits.library import FAMILIES
from repro.core.versions import QGPU
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import timed_run
from repro.hardware.specs import MULTI_V100_MACHINE

#: Device counts of the full sweep (powers of two, paper server scaled up).
DEVICE_COUNTS = (2, 4, 8, 16, 32, 64)
#: Reduced grid for CI smoke runs.
SMOKE_DEVICE_COUNTS = (2, 4, 8)
SMOKE_FAMILIES = ("bv", "qft", "iqp")

#: Strong sweep: the Fig. 19 P4-server width, fixed across device counts.
STRONG_QUBITS = 32
#: Weak sweep base: ``WEAK_BASE_QUBITS + log2(devices)`` qubits per run
#: keeps per-device amplitudes constant (64 devices -> 32 qubits).
WEAK_BASE_QUBITS = 26


def smoke_mode() -> bool:
    """Whether the reduced smoke grid was requested via the environment."""
    return os.environ.get("QGPU_BENCH_SMOKE", "").strip() not in ("", "0")


@register("fleet")
def run() -> ExperimentResult:
    smoke = smoke_mode()
    families = SMOKE_FAMILIES if smoke else FAMILIES
    counts = SMOKE_DEVICE_COUNTS if smoke else DEVICE_COUNTS
    base = MULTI_V100_MACHINE
    result = ExperimentResult(
        experiment_id="fleet",
        title="Fleet scaling: strong/weak sweeps on the V100 server "
              f"({min(counts)}-{max(counts)} devices)",
        headers=["circuit", "devices", "strong s", "speedup", "eff",
                 "weak n", "weak s", "weak eff"],
    )
    strong_rows: list[dict[str, float | int | str]] = []
    weak_rows: list[dict[str, float | int | str]] = []
    for family in families:
        strong_ref = timed_run(
            family, STRONG_QUBITS, QGPU, machine=base.with_gpu_count(1)
        ).total_seconds
        weak_ref = timed_run(
            family, WEAK_BASE_QUBITS, QGPU, machine=base.with_gpu_count(1)
        ).total_seconds
        for devices in counts:
            machine = base.with_gpu_count(devices)
            strong = timed_run(
                family, STRONG_QUBITS, QGPU, machine=machine
            ).total_seconds
            speedup = strong_ref / strong if strong else float("inf")
            weak_qubits = WEAK_BASE_QUBITS + int(math.log2(devices))
            weak = timed_run(
                family, weak_qubits, QGPU, machine=machine
            ).total_seconds
            weak_eff = weak_ref / weak if weak else float("inf")
            strong_rows.append({
                "name": f"{family}_d{devices}",
                "family": family,
                "devices": devices,
                "qubits": STRONG_QUBITS,
                "seconds": strong,
                "speedup": speedup,
                "efficiency": speedup / devices,
            })
            weak_rows.append({
                "name": f"{family}_d{devices}",
                "family": family,
                "devices": devices,
                "qubits": weak_qubits,
                "seconds": weak,
                "weak_efficiency": weak_eff,
            })
            result.rows.append([
                family, devices, strong, speedup, speedup / devices,
                weak_qubits, weak, weak_eff,
            ])
    result.data["mode"] = "smoke" if smoke else "full"
    result.data["machine"] = base.name
    result.data["device_counts"] = list(counts)
    result.data["strong"] = strong_rows
    result.data["weak"] = weak_rows
    result.notes.append(
        "strong: fixed 32 qubits; weak: 26+log2(d) qubits "
        "(constant per-device state); reference is the same server "
        "with one GPU"
    )
    return result
