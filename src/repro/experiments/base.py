"""Experiment infrastructure: result container and registry.

Every paper table/figure has one module here exposing ``run() ->
ExperimentResult``.  The benchmark harness (``benchmarks/``) wraps each in a
pytest-benchmark target, prints the rendered table, and asserts the paper's
qualitative claims; the examples reuse the same functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.tables import format_table
from repro.errors import ReproError


@dataclass
class ExperimentResult:
    """Structured output of one reproduced table/figure.

    Attributes:
        experiment_id: Short id (``"fig12"``, ``"tab2"``...).
        title: Human-readable caption.
        headers: Column names of the rendered table.
        rows: Table rows (mixed str/float cells).
        notes: Free-form observations (paper-vs-measured commentary).
        data: Raw result objects for programmatic use, keyed by name.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        """The table plus notes, ready to print."""
        parts = [format_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")]
        parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)

    def to_csv(self) -> str:
        """The table as CSV text (one header row plus data rows)."""

        def cell(value: object) -> str:
            text = str(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(cell(h) for h in self.headers)]
        lines.extend(",".join(cell(v) for v in row) for row in self.rows)
        return "\n".join(lines) + "\n"


_REGISTRY: dict[str, Callable[[], ExperimentResult]] = {}


def register(experiment_id: str) -> Callable:
    """Class decorator registering a ``run()`` callable under an id."""

    def wrap(fn: Callable[[], ExperimentResult]) -> Callable[[], ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run a registered experiment by id."""
    try:
        fn = _REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return fn()


def all_experiment_ids() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)
