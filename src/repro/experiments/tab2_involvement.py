"""Table II - operations before all qubits are involved (34-qubit circuits).

Paper finding: pruning potential varies enormously by circuit - iqp runs
90.41% of its operations before the last qubit is involved, while qaoa, qft
and qf involve every qubit almost immediately.
"""

from __future__ import annotations

from repro.circuits.library import FAMILIES
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import HEADLINE_SIZE, cached_circuit

#: The paper's Table II percentages, for side-by-side comparison.
PAPER_PERCENTAGES = {
    "hchain": 15.23, "rqc": 43.55, "qaoa": 2.51, "gs": 43.24, "hlf": 33.33,
    "qft": 7.07, "iqp": 90.41, "qf": 7.21, "bv": 25.37,
}


@register("tab2")
def run(num_qubits: int = HEADLINE_SIZE) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="tab2",
        title=f"Operations before full qubit involvement ({num_qubits} qubits)",
        headers=["circuit", "total_ops", "ops_before_full", "pct", "paper_pct"],
    )
    measured: dict[str, float] = {}
    for family in FAMILIES:
        circuit = cached_circuit(family, num_qubits)
        before = circuit.gates_until_full_involvement()
        pct = 100.0 * before / len(circuit)
        measured[family] = pct
        result.rows.append(
            [family, len(circuit), before, pct, PAPER_PERCENTAGES[family]]
        )
    result.data["measured_pct"] = measured
    result.notes.append(
        "absolute op counts differ (the paper counts post-transpilation "
        "QISKit ops); the involvement ordering across circuits is the claim"
    )
    return result
