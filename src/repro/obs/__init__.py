"""Unified observability: spans, counters, exporters, validation, logging.

Quick start::

    from repro.obs import LogicalClock, Tracer, write_trace

    tracer = Tracer(clock=LogicalClock())
    sim = QGpuSimulator(machine, tracer=tracer)
    sim.run(circuit)
    write_trace(tracer, "run.trace.json")   # open in Perfetto

See ``docs/observability.md`` for the span taxonomy, export formats, and
overhead numbers.
"""

from repro.obs.clock import LogicalClock, WallClock
from repro.obs.counters import CounterRegistry
from repro.obs.export import (
    TraceSummary,
    load_trace_events,
    metrics_json,
    render_summary,
    spans_from_events,
    summarize,
    trace_events,
    trace_json,
    write_trace,
)
from repro.obs.log import JsonLogFormatter, configure_logging, get_logger
from repro.obs.tracer import (
    DES_RESOURCE_STAGES,
    NULL_TRACER,
    STAGES,
    Span,
    Tracer,
    stage_for_resource,
)
from repro.obs.validate import check_spans, validate_spans, validate_trace_file

__all__ = [
    "CounterRegistry",
    "DES_RESOURCE_STAGES",
    "JsonLogFormatter",
    "LogicalClock",
    "NULL_TRACER",
    "STAGES",
    "Span",
    "TraceSummary",
    "Tracer",
    "WallClock",
    "check_spans",
    "configure_logging",
    "get_logger",
    "load_trace_events",
    "metrics_json",
    "render_summary",
    "spans_from_events",
    "stage_for_resource",
    "summarize",
    "trace_events",
    "trace_json",
    "validate_spans",
    "validate_trace_file",
    "write_trace",
]
