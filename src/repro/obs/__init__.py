"""Unified observability: spans, counters, exporters, validation, logging.

Quick start::

    from repro.obs import LogicalClock, Tracer, write_trace

    tracer = Tracer(clock=LogicalClock())
    sim = QGpuSimulator(machine, tracer=tracer)
    sim.run(circuit)
    write_trace(tracer, "run.trace.json")   # open in Perfetto

Analytics over exported traces live in :mod:`repro.obs.analyze` (stage
rollups, critical path, overlap efficiency, bottlenecks),
:mod:`repro.obs.drift` (model-vs-measured comparison), and
:mod:`repro.obs.prom` (Prometheus text exposition for the service's
``/metrics`` endpoint).  See ``docs/observability.md`` for the span
taxonomy, export formats, and overhead numbers.
"""

from repro.obs.analyze import (
    Bottleneck,
    CriticalPath,
    CriticalSegment,
    OverlapStats,
    StageRollup,
    TraceAnalysis,
    analyze,
    critical_path,
    overlap_stats,
    render_analysis,
    render_critical_path,
    stage_rollups,
    top_bottlenecks,
)
from repro.obs.clock import LogicalClock, WallClock
from repro.obs.counters import CounterRegistry
from repro.obs.drift import (
    DRIFT_STAGES,
    DriftReport,
    StageDrift,
    drift_report,
    measured_breakdown,
    predicted_breakdown,
)
from repro.obs.export import (
    TraceSummary,
    events_from_spans,
    load_trace_events,
    metrics_json,
    render_summary,
    spans_from_events,
    summarize,
    trace_clock_deterministic,
    trace_counters_snapshot,
    trace_events,
    trace_json,
    trace_process_name,
    write_trace,
)
from repro.obs.fleet import (
    DeviceStats,
    FleetAnalysis,
    LinkStats,
    fleet_analysis,
    fleet_gauges,
    render_fleet,
    span_device,
)
from repro.obs.hist import Histogram, bucket_exponent
from repro.obs.ledger import (
    MetricDiff,
    append_record,
    baseline_for,
    build_record,
    diff_records,
    environment_fingerprint,
    flatten_numeric,
    load_ledger,
    render_diff,
    render_record,
)
from repro.obs.log import JsonLogFormatter, configure_logging, get_logger
from repro.obs.profile import (
    SamplingProfiler,
    process_peak_rss_bytes,
    process_rss_bytes,
    render_flamegraph,
)
from repro.obs.prom import render_prometheus, sanitize_metric_name
from repro.obs.roofline import (
    KernelRoofline,
    kernel_rooflines,
    render_kernel_rooflines,
    rooflines_payload,
)
from repro.obs.tracer import (
    DES_RESOURCE_STAGES,
    NULL_TRACER,
    STAGES,
    Span,
    Tracer,
    device_for_resource,
    stage_for_resource,
)
from repro.obs.validate import check_spans, validate_spans, validate_trace_file

__all__ = [
    "Bottleneck",
    "CounterRegistry",
    "CriticalPath",
    "CriticalSegment",
    "DES_RESOURCE_STAGES",
    "DRIFT_STAGES",
    "DeviceStats",
    "DriftReport",
    "FleetAnalysis",
    "Histogram",
    "JsonLogFormatter",
    "KernelRoofline",
    "LinkStats",
    "LogicalClock",
    "MetricDiff",
    "NULL_TRACER",
    "OverlapStats",
    "STAGES",
    "SamplingProfiler",
    "Span",
    "StageDrift",
    "StageRollup",
    "TraceAnalysis",
    "TraceSummary",
    "Tracer",
    "WallClock",
    "analyze",
    "append_record",
    "baseline_for",
    "bucket_exponent",
    "build_record",
    "check_spans",
    "configure_logging",
    "critical_path",
    "device_for_resource",
    "diff_records",
    "drift_report",
    "environment_fingerprint",
    "events_from_spans",
    "flatten_numeric",
    "fleet_analysis",
    "fleet_gauges",
    "get_logger",
    "kernel_rooflines",
    "load_ledger",
    "load_trace_events",
    "measured_breakdown",
    "metrics_json",
    "overlap_stats",
    "predicted_breakdown",
    "process_peak_rss_bytes",
    "process_rss_bytes",
    "render_analysis",
    "render_critical_path",
    "render_diff",
    "render_flamegraph",
    "render_fleet",
    "render_kernel_rooflines",
    "render_prometheus",
    "render_record",
    "render_summary",
    "rooflines_payload",
    "sanitize_metric_name",
    "span_device",
    "spans_from_events",
    "stage_for_resource",
    "stage_rollups",
    "summarize",
    "top_bottlenecks",
    "trace_clock_deterministic",
    "trace_counters_snapshot",
    "trace_events",
    "trace_json",
    "trace_process_name",
    "validate_spans",
    "validate_trace_file",
    "write_trace",
]
