"""Model-vs-measured drift: diff the DES cost model against a real trace.

The paper's argument rests on per-stage breakdowns (Fig. 2/4/12).  PR 4
made both sides producible - the DES model emits predicted stage times,
the tracer emits measured ones - but nothing *compared* them.  This module
closes the loop:

* :func:`predicted_breakdown` - the model's per-stage **busy** seconds for
  a circuit + config, derived from a
  :class:`~repro.core.executor.TimedResult`: transfer stages from bytes
  moved over the link bandwidth, compute from CPU + GPU busy time, codec
  from codec busy time.  Busy time (not *exposed* time) is the right basis
  because the traced side also records spans for work that overlap hides -
  ``TimedResult.transfer_seconds`` would charge the Overlap version ~zero
  transfer while its trace is full of ``h2d``/``d2h`` spans.
* :func:`measured_breakdown` - the same stages out of a span list, using
  the trace-summary self-time rule.
* :func:`drift_report` - both breakdowns normalised to **shares** of their
  core-stage totals and diffed per stage, with a tolerance gate on the
  largest share drift.  Shares (not absolute seconds) are the comparable
  quantity: the model predicts seconds on the paper's P100, the trace
  measures ticks or host seconds - only the *shape* of the breakdown is
  machine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.export import summarize
from repro.obs.tracer import Span

if TYPE_CHECKING:  # duck-typed at runtime; keeps repro.obs import-light
    from repro.core.executor import TimedResult
    from repro.hardware.specs import MachineSpec

#: The stages drift is gated on - the paper's Fig. 2 axes.  Runtime stages
#: (transpile, schedule, checkpoint, ...) exist only on the measured side
#: and are excluded from the comparison.
DRIFT_STAGES: tuple[str, ...] = ("h2d", "compute", "codec", "d2h")

#: Default gate: the largest per-stage share drift tolerated before the
#: report (and the CI job running it) fails.
DEFAULT_TOLERANCE = 0.15


def predicted_breakdown(
    timing: "TimedResult", machine: "MachineSpec"
) -> dict[str, float]:
    """The cost model's per-stage busy seconds for one modelled run."""
    bandwidth = machine.link.bandwidth_per_direction
    return {
        "h2d": timing.bytes_h2d / bandwidth,
        "compute": timing.cpu_seconds + timing.gpu_seconds,
        "codec": timing.codec_seconds,
        "d2h": timing.bytes_d2h / bandwidth,
    }


def measured_breakdown(spans: list[Span]) -> dict[str, float]:
    """Traced per-stage self time, restricted to the drift stages."""
    stages = summarize(spans).stages
    return {stage: stages.get(stage, 0.0) for stage in DRIFT_STAGES}


def _shares(breakdown: dict[str, float]) -> dict[str, float]:
    total = sum(breakdown.get(stage, 0.0) for stage in DRIFT_STAGES)
    if total <= 0.0:
        return {stage: 0.0 for stage in DRIFT_STAGES}
    return {stage: breakdown.get(stage, 0.0) / total for stage in DRIFT_STAGES}


@dataclass
class StageDrift:
    """Predicted vs measured share of one stage."""

    stage: str
    predicted_seconds: float
    measured_seconds: float
    predicted_share: float
    measured_share: float

    @property
    def drift(self) -> float:
        """Absolute share difference - the gated quantity."""
        return abs(self.predicted_share - self.measured_share)


@dataclass
class DriftReport:
    """Outcome of one model-vs-measured comparison.

    Attributes:
        stages: Per-stage predicted/measured seconds and shares.
        tolerance: Maximum share drift allowed by the gate.
        context: Free-form labels for the report header (circuit, version,
            machine, trace file ...).
    """

    stages: list[StageDrift] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE
    context: dict[str, Any] = field(default_factory=dict)

    @property
    def max_drift(self) -> float:
        return max((s.drift for s in self.stages), default=0.0)

    @property
    def worst_stage(self) -> str | None:
        if not self.stages:
            return None
        return max(self.stages, key=lambda s: s.drift).stage

    @property
    def passed(self) -> bool:
        return self.max_drift <= self.tolerance

    def to_dict(self) -> dict[str, Any]:
        return {
            "context": dict(self.context),
            "tolerance": self.tolerance,
            "max_drift": self.max_drift,
            "worst_stage": self.worst_stage,
            "passed": self.passed,
            "stages": {
                s.stage: {
                    "predicted_seconds": s.predicted_seconds,
                    "measured_seconds": s.measured_seconds,
                    "predicted_share": s.predicted_share,
                    "measured_share": s.measured_share,
                    "drift": s.drift,
                }
                for s in self.stages
            },
        }

    def render(self) -> str:
        lines = []
        if self.context:
            header = " ".join(f"{k}={v}" for k, v in self.context.items())
            lines.append(f"drift report: {header}")
        lines.append(
            f"{'stage':<10} {'model s':>12} {'trace':>12} "
            f"{'model %':>9} {'trace %':>9} {'drift':>8}"
        )
        for s in self.stages:
            lines.append(
                f"{s.stage:<10} {s.predicted_seconds:>12.6g} "
                f"{s.measured_seconds:>12.6g} {s.predicted_share:>8.1%} "
                f"{s.measured_share:>8.1%} {s.drift:>7.1%}"
            )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"max share drift {self.max_drift:.1%} "
            f"(stage {self.worst_stage or '-'}) vs tolerance "
            f"{self.tolerance:.1%}: {verdict}"
        )
        return "\n".join(lines)


def drift_report(
    predicted: dict[str, float],
    measured: dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    context: dict[str, Any] | None = None,
) -> DriftReport:
    """Compare two per-stage breakdowns on normalised shares.

    Either side may be in any time unit (model seconds vs logical ticks) -
    each is normalised to shares of its own core-stage total first.  A side
    with zero core-stage time gets all-zero shares, so an empty trace
    drifts by exactly the model's largest share (a loud FAIL, not a crash).
    """
    predicted_shares = _shares(predicted)
    measured_shares = _shares(measured)
    stages = [
        StageDrift(
            stage=stage,
            predicted_seconds=predicted.get(stage, 0.0),
            measured_seconds=measured.get(stage, 0.0),
            predicted_share=predicted_shares[stage],
            measured_share=measured_shares[stage],
        )
        for stage in DRIFT_STAGES
    ]
    return DriftReport(stages=stages, tolerance=tolerance, context=dict(context or {}))
