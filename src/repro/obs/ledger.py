"""The unified perf ledger: one history over every ``BENCH_*.json``.

The repo's four benchmark artifacts - ``BENCH_kernels.json`` (chunk-engine
throughput), ``BENCH_planner.json`` (backend-selection accuracy/speedup),
``BENCH_service.json`` (batch-service throughput + recovery) and
``BENCH_obs.json`` (tracing overhead) - are one-shot snapshots: each CI
run overwrites the last, so there is no perf *trajectory* to raise the
committed baselines against.  The ledger fixes that with an append-only
``BENCH_LEDGER.jsonl``: every :func:`append_record` call flattens all
present BENCH files into one schema (dotted numeric leaves), stamps the
record with an **environment fingerprint** (CPU model, core count,
python, blas, platform) plus the git revision, and appends one JSON line.

Comparisons are *per fingerprint*: :func:`baseline_for` picks the most
recent earlier record with the same fingerprint id and bench mode, so a
laptop never gates against a CI runner's numbers.  :func:`diff_records`
then classifies each metric by a name-based direction heuristic
(``*seconds``/``*overhead*`` are lower-better, ``*speedup*``/
``*accuracy*``/``*mamps*`` higher-better, anything else informational)
and flags regressions beyond a tolerance - the ``repro bench ledger
diff`` command and ``benchmarks/check_bench_regression.py`` both run on
this.

Records are JSON-safe and canonical (sorted keys) so the ledger diffs
clean in review; the schema is versioned via the ``schema`` field.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ObservabilityError

#: Ledger record schema version.
SCHEMA = 1

#: The benches the ledger ingests, in canonical order: (name, filename).
BENCH_FILES: tuple[tuple[str, str], ...] = (
    ("kernels", "BENCH_kernels.json"),
    ("planner", "BENCH_planner.json"),
    ("service", "BENCH_service.json"),
    ("obs", "BENCH_obs.json"),
    ("fleet", "BENCH_fleet.json"),
)

#: Default ledger filename at the repo root.
LEDGER_NAME = "BENCH_LEDGER.jsonl"

#: Substrings marking a metric where *lower* is better.
LOWER_BETTER = ("seconds", "overhead", "latency", "_wait", "p50", "p99")

#: Substrings marking a metric where *higher* is better.
HIGHER_BETTER = (
    "speedup", "accuracy", "mamps", "per_second", "hit_rate", "throughput",
)

#: List items are keyed by the first of these fields they carry (falling
#: back to the list index), so planner cases flatten to stable names.
_LIST_KEYS = ("circuit", "name", "case", "family", "policy", "id")


# -- environment fingerprint ---------------------------------------------------


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _blas_library() -> str:
    """Best-effort BLAS identification from numpy's build config."""
    try:
        import numpy as np

        config = getattr(np.__config__, "CONFIG", None)
        if isinstance(config, dict):  # numpy >= 1.26 structured config
            blas = config.get("Build Dependencies", {}).get("blas", {})
            name = blas.get("name")
            if name:
                return str(name)
        info = getattr(np.__config__, "blas_opt_info", None)
        if isinstance(info, dict) and info.get("libraries"):
            return ",".join(str(lib) for lib in info["libraries"])
    except Exception:
        pass
    return "unknown"


def environment_fingerprint() -> dict[str, Any]:
    """The normalization key of a ledger record: where it was measured.

    Numbers from different fingerprints are never compared - a CI runner
    and a workstation have different roofs - which is the caveat
    ``docs/performance.md`` documents.
    """
    return {
        "cpu": _cpu_model(),
        "cores": os.cpu_count() or 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "blas": _blas_library(),
        "platform": f"{platform.system()}-{platform.machine()}",
    }


def fingerprint_id(fingerprint: Mapping[str, Any]) -> str:
    """Short stable id of a fingerprint (12 hex chars of its sha256)."""
    canonical = json.dumps(dict(fingerprint), sort_keys=True, separators=(",", ":"))
    return sha256(canonical.encode()).hexdigest()[:12]


def git_revision(root: str | Path = ".") -> str | None:
    """The repo's short HEAD revision, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root), capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


# -- flattening ----------------------------------------------------------------


def flatten_numeric(value: Any, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a JSON payload, under dotted keys.

    Dicts recurse by key; lists key their items by the first
    :data:`_LIST_KEYS` field present (index otherwise); booleans count as
    0/1 (so ``correct: true`` is a gateable 1.0); strings and nulls are
    dropped.  The result is the one flat metric namespace every bench
    shares in a ledger record.
    """
    out: dict[str, float] = {}
    if isinstance(value, bool):
        out[prefix] = float(value)
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, Mapping):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value[key], child))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            label = str(index)
            if isinstance(item, Mapping):
                for key in _LIST_KEYS:
                    if key in item and isinstance(item[key], str):
                        label = item[key]
                        break
            child = f"{prefix}.{label}" if prefix else label
            out.update(flatten_numeric(item, child))
    return out


# -- records -------------------------------------------------------------------


def build_record(
    root: str | Path = ".",
    benches: Iterable[tuple[str, str]] = BENCH_FILES,
    timestamp: float | None = None,
) -> dict[str, Any]:
    """One ledger record from the BENCH files present under ``root``.

    Raises:
        ObservabilityError: When none of the bench files exist (an empty
            record would poison every later diff).
    """
    root = Path(root)
    fingerprint = environment_fingerprint()
    record: dict[str, Any] = {
        "schema": SCHEMA,
        "timestamp": round(time.time() if timestamp is None else timestamp, 3),
        "fingerprint": fingerprint,
        "fingerprint_id": fingerprint_id(fingerprint),
        "git_rev": git_revision(root),
        "benches": {},
        "missing": [],
    }
    modes: set[str] = set()
    for name, filename in benches:
        path = root / filename
        if not path.exists():
            record["missing"].append(name)
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ObservabilityError(f"cannot ingest {path}: {error}") from None
        mode = payload.get("mode") if isinstance(payload, Mapping) else None
        if isinstance(mode, str):
            modes.add(mode)
        record["benches"][name] = {
            "file": filename,
            "mode": mode,
            "metrics": flatten_numeric(payload),
        }
    if not record["benches"]:
        raise ObservabilityError(
            f"no BENCH_*.json files found under {root} - run the benchmarks "
            "(e.g. QGPU_BENCH_SMOKE=1 pytest benchmarks/ -q) first"
        )
    record["mode"] = sorted(modes)[0] if len(modes) == 1 else (
        "mixed" if modes else "unknown"
    )
    return record


def record_line(record: Mapping[str, Any]) -> str:
    """Canonical single-line serialization of one record."""
    return json.dumps(dict(record), sort_keys=True, separators=(",", ":"))


def append_record(
    ledger_path: str | Path, record: Mapping[str, Any]
) -> dict[str, Any]:
    """Append ``record`` to the ledger file (created if absent)."""
    path = Path(ledger_path)
    with open(path, "a") as handle:
        handle.write(record_line(record) + "\n")
    return dict(record)


def load_ledger(ledger_path: str | Path) -> list[dict[str, Any]]:
    """Every record of a ledger file, oldest first.

    Raises:
        ObservabilityError: Unreadable file or a corrupt (non-JSON) line.
    """
    path = Path(ledger_path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ObservabilityError(f"cannot read ledger {path}: {error}") from None
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{path}:{lineno}: corrupt ledger line ({error})"
            ) from None
    return records


def baseline_for(
    records: list[dict[str, Any]], record: Mapping[str, Any]
) -> dict[str, Any] | None:
    """The most recent earlier record comparable to ``record``.

    Comparable = same ``fingerprint_id`` and same ``mode``; records from
    other machines (or full-mode vs smoke-mode runs) are never baselines.
    """
    for candidate in reversed(records):
        if candidate is record:
            continue
        if candidate.get("timestamp", 0) > record.get("timestamp", 0):
            continue
        if candidate.get("fingerprint_id") != record.get("fingerprint_id"):
            continue
        if candidate.get("mode") != record.get("mode"):
            continue
        return candidate
    return None


# -- diffs ---------------------------------------------------------------------


def metric_direction(name: str) -> str | None:
    """``"lower"``/``"higher"`` (better) or None for informational metrics."""
    lowered = name.lower()
    if any(token in lowered for token in HIGHER_BETTER):
        return "higher"
    if any(token in lowered for token in LOWER_BETTER):
        return "lower"
    return None


@dataclass(frozen=True)
class MetricDiff:
    """One metric compared across two ledger records.

    ``ratio`` is latest/baseline (None when the baseline is 0); a
    directional metric regresses when it moves the wrong way by more
    than the tolerance.
    """

    bench: str
    metric: str
    baseline: float
    latest: float
    direction: str | None
    regressed: bool

    @property
    def ratio(self) -> float | None:
        return self.latest / self.baseline if self.baseline else None


def diff_records(
    baseline: Mapping[str, Any],
    latest: Mapping[str, Any],
    tolerance: float = 0.05,
) -> list[MetricDiff]:
    """Compare every shared directional metric of two records.

    Args:
        baseline: The older record.
        latest: The newer record.
        tolerance: Allowed fractional move in the *worse* direction
            before a metric counts as regressed (default 5%).

    Returns:
        One entry per metric present in both records, regressions first,
        then by (bench, metric).  Informational metrics (no direction)
        are included but never regressed.
    """
    entries: list[MetricDiff] = []
    base_benches = baseline.get("benches", {})
    for bench, payload in sorted(latest.get("benches", {}).items()):
        base_metrics = base_benches.get(bench, {}).get("metrics", {})
        for metric, value in sorted(payload.get("metrics", {}).items()):
            if metric not in base_metrics:
                continue
            base_value = float(base_metrics[metric])
            direction = metric_direction(metric)
            regressed = False
            if direction is not None and base_value != 0:
                ratio = float(value) / base_value
                if direction == "lower":
                    regressed = ratio > 1.0 + tolerance
                else:
                    regressed = ratio < 1.0 - tolerance
            entries.append(
                MetricDiff(
                    bench=bench,
                    metric=metric,
                    baseline=base_value,
                    latest=float(value),
                    direction=direction,
                    regressed=regressed,
                )
            )
    return sorted(entries, key=lambda e: (not e.regressed, e.bench, e.metric))


# -- rendering -----------------------------------------------------------------


def render_record(record: Mapping[str, Any]) -> str:
    """Human summary of one ledger record (``bench ledger show``)."""
    fingerprint = record.get("fingerprint", {})
    lines = [
        f"record @ {record.get('timestamp')} "
        f"(mode {record.get('mode')}, git {record.get('git_rev') or '?'})",
        f"fingerprint {record.get('fingerprint_id')}: "
        f"{fingerprint.get('cpu', '?')} x{fingerprint.get('cores', '?')}, "
        f"python {fingerprint.get('python', '?')}, "
        f"blas {fingerprint.get('blas', '?')}",
    ]
    for bench, payload in sorted(record.get("benches", {}).items()):
        lines.append(
            f"  {bench:<8} {len(payload.get('metrics', {})):>4} metric(s) "
            f"from {payload.get('file')}"
        )
    missing = record.get("missing") or []
    if missing:
        lines.append(f"  missing : {', '.join(missing)}")
    return "\n".join(lines)


def render_diff(
    entries: list[MetricDiff], limit: int = 10, tolerance: float = 0.05
) -> str:
    """Human summary of a record diff, regressions first."""
    if not entries:
        return "no shared metrics between the two records"
    regressions = [e for e in entries if e.regressed]
    lines = [
        f"{len(entries)} shared metric(s), {len(regressions)} regression(s) "
        f"beyond {tolerance:.0%}"
    ]
    shown = regressions if regressions else entries[:limit]
    for entry in shown[:limit]:
        ratio = entry.ratio
        arrow = {"lower": "(lower is better)", "higher": "(higher is better)"}.get(
            entry.direction or "", "(informational)"
        )
        flag = "REGRESSED " if entry.regressed else ""
        lines.append(
            f"  {flag}{entry.bench}.{entry.metric}: "
            f"{entry.baseline:.6g} -> {entry.latest:.6g} "
            f"(x{ratio:.3f}) {arrow}" if ratio is not None else
            f"  {flag}{entry.bench}.{entry.metric}: "
            f"{entry.baseline:.6g} -> {entry.latest:.6g} {arrow}"
        )
    if len(shown) > limit:
        lines.append(f"  ... {len(shown) - limit} more")
    return "\n".join(lines)
