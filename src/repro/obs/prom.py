"""Prometheus text exposition for counters, gauges, and histograms.

:func:`render_prometheus` turns a :class:`~repro.obs.counters.CounterRegistry`
(plus optional caller-supplied gauges) into the Prometheus text format
version 0.0.4 that ``/metrics`` scrapes expect:

* every counter becomes ``<prefix>_<sanitised_name>`` with a ``# TYPE``
  line (``counter`` - the registry only holds monotonic counts);
* every :class:`~repro.obs.hist.Histogram` series becomes the standard
  triple: cumulative ``_bucket{le="..."}`` lines over its occupied grid
  range plus ``le="+Inf"``, then ``_sum`` and ``_count``;
* gauges (queue depth, inflight jobs, uptime ...) are passed explicitly
  since the registry deliberately has no gauge type.

Output is deterministic: metrics sort by name, series by label set, so a
scrape of an idle deterministic service is byte-stable.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.obs.counters import CounterRegistry
from repro.obs.hist import Histogram

_INVALID = re.compile(r"[^a-zA-Z0-9_]")
_LEADING_DIGIT = re.compile(r"^[0-9]")


def sanitize_metric_name(name: str) -> str:
    """Map an internal counter name onto the Prometheus name grammar."""
    cleaned = _INVALID.sub("_", name)
    if _LEADING_DIGIT.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels(pairs: tuple[tuple[str, str], ...], extra: str | None = None) -> str:
    parts = [f'{sanitize_metric_name(k)}="{v}"' for k, v in pairs]
    if extra is not None:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _render_histogram(series: Histogram, prefix: str) -> list[str]:
    name = f"{prefix}_{sanitize_metric_name(series.name)}"
    lines = [f"# TYPE {name} histogram"]
    for bound, cumulative in series.cumulative():
        le = 'le="' + repr(bound) + '"'
        lines.append(f"{name}_bucket{_labels(series.labels, le)} {cumulative}")
    count = series.count
    inf = 'le="+Inf"'
    lines.append(f"{name}_bucket{_labels(series.labels, inf)} {count}")
    lines.append(f"{name}_sum{_labels(series.labels)} {_format_value(series.sum)}")
    lines.append(f"{name}_count{_labels(series.labels)} {count}")
    return lines


def render_prometheus(
    counters: CounterRegistry,
    gauges: Mapping[str, float] | None = None,
    prefix: str = "repro",
) -> str:
    """Render the registry (and optional gauges) as Prometheus text.

    Args:
        counters: Registry whose counters and histogram series to expose.
        gauges: Extra point-in-time values (exposed as ``gauge`` type).
        prefix: Metric-name prefix (the conventional per-app namespace).
    """
    lines: list[str] = []
    for name, value in counters.snapshot().items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    # Histogram series of the same name share one # TYPE header.
    by_name: dict[str, list[Histogram]] = {}
    for series in counters.histograms():
        by_name.setdefault(series.name, []).append(series)
    for name in sorted(by_name):
        first = True
        for series in by_name[name]:
            rendered = _render_histogram(series, prefix)
            lines.extend(rendered if first else rendered[1:])
            first = False
    for name in sorted(gauges or {}):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(float((gauges or {})[name]))}")
    return "\n".join(lines) + "\n"
