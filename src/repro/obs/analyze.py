"""Trace analytics: rollups, critical path, overlap efficiency, bottlenecks.

PR 4's tracer answers "what happened"; this module answers the questions
the paper's figures ask of a trace:

* :func:`stage_rollups` - per-stage **self** and **total** time (Fig. 2/4:
  where does the wall time go, with and without double-counting nesting);
* :func:`critical_path` - the longest dependency chain through the span
  tree, crossing lanes via cross-thread parenting (which worker-lane work
  actually gated the run, and which merely ran in parallel).  The returned
  segments tile the root interval exactly, so the per-stage attribution of
  the critical path sums to the root duration by construction;
* :func:`overlap_stats` - the Fig. 6 claim as a number: the fraction of
  ``h2d``/``d2h`` transfer time hidden under ``compute`` spans running on
  *other* lanes (same-lane nesting is serialisation, not overlap);
* :func:`top_bottlenecks` - top-k attribution by aggregated self time.

Everything consumes the plain :class:`~repro.obs.tracer.Span` list, so it
works on live tracers, re-parsed ``*.trace.json`` files, and the DES
model's stream-schedule exports (flat, parentless spans - they are hung
off a virtual root spanning the trace extent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracer import STAGES, Span

#: Stage label for critical-path time spent in structural (stage-less)
#: spans or in gaps between top-level spans.
UNATTRIBUTED = "(untraced)"

#: Transfer stages considered by the overlap metric.
TRANSFER_STAGES = ("h2d", "d2h")


# -- per-stage rollups ---------------------------------------------------------


@dataclass
class StageRollup:
    """Self/total time and span count of one taxonomy stage.

    ``total`` double-counts nested same-stage spans (a parent's interval
    includes its children); ``self`` subtracts direct children, so self
    times across stages partition the traced time exactly.
    """

    stage: str
    total: float = 0.0
    self_time: float = 0.0
    count: int = 0


def stage_rollups(spans: list[Span]) -> dict[str, StageRollup]:
    """Per-stage self/total rollups, in taxonomy order (observed stages only)."""
    child_time: dict[int, float] = {}
    for span in spans:
        if span.parent is not None:
            child_time[span.parent] = child_time.get(span.parent, 0.0) + span.duration
    rollups: dict[str, StageRollup] = {}
    for span in spans:
        if span.stage is None:
            continue
        rollup = rollups.setdefault(span.stage, StageRollup(span.stage))
        rollup.total += span.duration
        rollup.self_time += span.duration - child_time.get(span.index, 0.0)
        rollup.count += 1
    order = {stage: position for position, stage in enumerate(STAGES)}
    return dict(
        sorted(rollups.items(), key=lambda kv: order.get(kv[0], len(order)))
    )


# -- critical path -------------------------------------------------------------


@dataclass
class CriticalSegment:
    """One stretch of the critical path, attributed to a single span.

    ``span_index`` is None for virtual-root segments (gaps between
    top-level spans in a flat trace).
    """

    span_index: int | None
    name: str
    stage: str | None
    lane: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The critical path of one trace: segments tiling the root interval.

    Attributes:
        segments: Time-ordered segments; consecutive segments abut, the
            first starts at ``root_start`` and the last ends at
            ``root_end``, so ``sum(durations) == duration`` exactly.
        root_name: Name of the root span (``"<trace>"`` for the virtual
            root of a flat or multi-root trace).
        root_start / root_end: The tiled interval.
    """

    segments: list[CriticalSegment] = field(default_factory=list)
    root_name: str = "<trace>"
    root_start: float = 0.0
    root_end: float = 0.0

    @property
    def duration(self) -> float:
        return self.root_end - self.root_start

    def stage_totals(self) -> dict[str, float]:
        """Critical-path seconds per stage (:data:`UNATTRIBUTED` for none).

        Because the segments tile the root interval, these totals sum to
        :attr:`duration` exactly - the identity the CLI reports.
        """
        totals: dict[str, float] = {}
        for segment in self.segments:
            stage = segment.stage if segment.stage is not None else UNATTRIBUTED
            totals[stage] = totals.get(stage, 0.0) + segment.duration
        order = {stage: position for position, stage in enumerate(STAGES)}
        return dict(
            sorted(totals.items(), key=lambda kv: order.get(kv[0], len(order)))
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "root": self.root_name,
            "start": self.root_start,
            "end": self.root_end,
            "duration": self.duration,
            "stage_totals": self.stage_totals(),
            "segments": [
                {
                    "span": segment.span_index,
                    "name": segment.name,
                    "stage": segment.stage,
                    "lane": segment.lane,
                    "start": segment.start,
                    "end": segment.end,
                    "duration": segment.duration,
                }
                for segment in self.segments
            ],
        }


def _children_by_parent(spans: list[Span]) -> tuple[dict[int | None, list[Span]], list[Span]]:
    """Index spans by parent; unresolvable parents become roots (defensive)."""
    by_index = {span.index: span for span in spans}
    children: dict[int | None, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        if span.parent is not None and span.parent in by_index:
            children.setdefault(span.parent, []).append(span)
        else:
            roots.append(span)
    return children, roots


def _walk_critical(
    owner_index: int | None,
    owner_name: str,
    owner_stage: str | None,
    owner_lane: str,
    start: float,
    end: float,
    kids: list[Span],
    children: dict[int | None, list[Span]],
    out: list[CriticalSegment],
) -> None:
    """Backward sweep: attribute [start, end] to the last-blocking children.

    Walking from ``end`` backwards, the critical dependency at any instant
    is the child that *finished last* before that instant; the gap back to
    its end is the owner's own (self) time, then the sweep descends into
    the child and continues before the child's start.  Children whose end
    lies inside an interval already claimed by a later-finishing sibling
    ran in parallel with the critical chain and are skipped.
    """
    cursor = end
    for child in sorted(kids, key=lambda s: (s.end, s.start, s.index), reverse=True):
        if child.end > cursor:
            continue  # overlapped by critical work already attributed
        if cursor > child.end:
            out.append(
                CriticalSegment(
                    owner_index, owner_name, owner_stage, owner_lane,
                    child.end, cursor,
                )
            )
        _walk_critical(
            child.index, child.name, child.stage, child.lane,
            child.start, child.end,
            children.get(child.index, []), children, out,
        )
        cursor = child.start
        if cursor <= start:
            break
    if cursor > start:
        out.append(
            CriticalSegment(owner_index, owner_name, owner_stage, owner_lane,
                            start, cursor)
        )


def critical_path(spans: list[Span]) -> CriticalPath:
    """Extract the critical path of a span list (empty path for no spans).

    A single top-level span roots the path; flat or multi-root traces
    (e.g. the DES stream-schedule export, whose lanes are parentless) get
    a virtual ``"<trace>"`` root spanning the trace extent, so the
    tiling-identity holds for every input.
    """
    if not spans:
        return CriticalPath()
    children, roots = _children_by_parent(spans)
    segments: list[CriticalSegment] = []
    if len(roots) == 1:
        root = roots[0]
        result = CriticalPath(
            segments, root.name, root.start, root.end
        )
        _walk_critical(
            root.index, root.name, root.stage, root.lane,
            root.start, root.end, children.get(root.index, []), children, segments,
        )
    else:
        start = min(span.start for span in spans)
        end = max(span.end for span in spans)
        result = CriticalPath(segments, "<trace>", start, end)
        _walk_critical(
            None, "<trace>", None, "", start, end, roots, children, segments
        )
    segments.reverse()
    return result


# -- overlap efficiency --------------------------------------------------------


@dataclass
class OverlapStats:
    """How much transfer time compute hid (the paper's Fig. 6 argument).

    Attributes:
        transfer: Total ``h2d`` + ``d2h`` span time.
        hidden: Portion of that time overlapped by ``compute`` spans on
            *other* lanes.
        efficiency: ``hidden / transfer`` in ``[0, 1]``, or None when the
            trace has no transfer spans (nothing streamed - residency,
            not overlap).
    """

    transfer: float = 0.0
    hidden: float = 0.0

    @property
    def exposed(self) -> float:
        return self.transfer - self.hidden

    @property
    def efficiency(self) -> float | None:
        if self.transfer <= 0.0:
            return None
        return self.hidden / self.transfer


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def overlap_stats(spans: list[Span]) -> OverlapStats:
    """Measure hidden vs exposed transfer time across lanes."""
    compute_by_lane: dict[str, list[tuple[float, float]]] = {}
    for span in spans:
        if span.stage == "compute" and span.end > span.start:
            compute_by_lane.setdefault(span.lane, []).append((span.start, span.end))
    merged_by_lane = {
        lane: _merge_intervals(intervals)
        for lane, intervals in compute_by_lane.items()
    }
    stats = OverlapStats()
    for span in spans:
        if span.stage not in TRANSFER_STAGES:
            continue
        stats.transfer += span.duration
        # Hidden time = time covered by compute on any *other* lane; union
        # across those lanes so doubly-covered instants count once.
        other: list[tuple[float, float]] = []
        for lane, intervals in merged_by_lane.items():
            if lane != span.lane:
                other.extend(intervals)
        for start, end in _merge_intervals(other):
            lo = max(start, span.start)
            hi = min(end, span.end)
            if hi > lo:
                stats.hidden += hi - lo
    return stats


# -- bottleneck attribution ----------------------------------------------------


@dataclass
class Bottleneck:
    """Aggregated self time of one (name, stage) group of spans."""

    name: str
    stage: str | None
    self_time: float = 0.0
    total: float = 0.0
    count: int = 0


def top_bottlenecks(spans: list[Span], k: int = 5) -> list[Bottleneck]:
    """The k span groups with the largest aggregated self time."""
    child_time: dict[int, float] = {}
    for span in spans:
        if span.parent is not None:
            child_time[span.parent] = child_time.get(span.parent, 0.0) + span.duration
    groups: dict[tuple[str, str | None], Bottleneck] = {}
    for span in spans:
        group = groups.setdefault(
            (span.name, span.stage), Bottleneck(span.name, span.stage)
        )
        group.self_time += span.duration - child_time.get(span.index, 0.0)
        group.total += span.duration
        group.count += 1
    ranked = sorted(
        groups.values(), key=lambda b: (-b.self_time, b.name, b.stage or "")
    )
    return ranked[: max(0, k)]


# -- the full analysis ---------------------------------------------------------


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze` derives from one span list."""

    wall: float = 0.0
    span_count: int = 0
    lanes: list[str] = field(default_factory=list)
    rollups: dict[str, StageRollup] = field(default_factory=dict)
    critical: CriticalPath = field(default_factory=CriticalPath)
    overlap: OverlapStats = field(default_factory=OverlapStats)
    bottlenecks: list[Bottleneck] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "wall": self.wall,
            "span_count": self.span_count,
            "lanes": self.lanes,
            "stages": {
                stage: {
                    "total": rollup.total,
                    "self": rollup.self_time,
                    "count": rollup.count,
                }
                for stage, rollup in self.rollups.items()
            },
            "critical_path": self.critical.to_dict(),
            "overlap": {
                "transfer": self.overlap.transfer,
                "hidden": self.overlap.hidden,
                "exposed": self.overlap.exposed,
                "efficiency": self.overlap.efficiency,
            },
            "bottlenecks": [
                {
                    "name": b.name,
                    "stage": b.stage,
                    "self": b.self_time,
                    "total": b.total,
                    "count": b.count,
                }
                for b in self.bottlenecks
            ],
        }


def analyze(spans: list[Span], top: int = 5) -> TraceAnalysis:
    """Run every analysis over one span list (all-empty for no spans)."""
    if not spans:
        return TraceAnalysis()
    return TraceAnalysis(
        wall=max(s.end for s in spans) - min(s.start for s in spans),
        span_count=len(spans),
        lanes=sorted({s.lane for s in spans}, key=lambda lane: (lane != "main", lane)),
        rollups=stage_rollups(spans),
        critical=critical_path(spans),
        overlap=overlap_stats(spans),
        bottlenecks=top_bottlenecks(spans, top),
    )


def render_analysis(analysis: TraceAnalysis, unit: str = "s") -> str:
    """Human-readable report for the ``trace analyze`` subcommand."""
    if analysis.span_count == 0:
        return "empty trace: 0 spans, nothing to analyze"
    wall = analysis.wall or 1.0
    lines = [
        f"{analysis.span_count} span(s) over {len(analysis.lanes)} lane(s), "
        f"wall {analysis.wall:.6g} {unit}",
        "",
        f"{'stage':<12} {'total ' + unit:>14} {'self ' + unit:>14} "
        f"{'share':>8} {'spans':>7}",
    ]
    for stage, rollup in analysis.rollups.items():
        lines.append(
            f"{stage:<12} {rollup.total:>14.6g} {rollup.self_time:>14.6g} "
            f"{rollup.self_time / wall:>7.1%} {rollup.count:>7}"
        )
    lines.append("")
    lines.append(render_critical_path(analysis.critical, unit=unit, limit=0))
    efficiency = analysis.overlap.efficiency
    if efficiency is None:
        lines.append("overlap efficiency: n/a (no transfer spans in trace)")
    else:
        lines.append(
            f"overlap efficiency: {efficiency:.3f} "
            f"(hidden {analysis.overlap.hidden:.6g} of "
            f"{analysis.overlap.transfer:.6g} {unit} transfer)"
        )
    if analysis.bottlenecks:
        lines.append("")
        lines.append(f"top bottlenecks by self time ({unit}):")
        for b in analysis.bottlenecks:
            stage = b.stage or "-"
            lines.append(
                f"  {b.self_time:>12.6g}  {b.name:<24} stage={stage:<10} "
                f"x{b.count}"
            )
    return "\n".join(lines)


def render_critical_path(
    path: CriticalPath, unit: str = "s", limit: int = 20
) -> str:
    """Stage attribution (and optionally segments) of a critical path."""
    if not path.segments:
        return "critical path: empty trace"
    totals = path.stage_totals()
    covered = sum(totals.values())
    ratio = covered / path.duration if path.duration else 1.0
    lines = [
        f"critical path through {path.root_name!r}: {len(path.segments)} "
        f"segment(s), duration {path.duration:.6g} {unit}",
        f"critical-path coverage: stage sum {covered:.6g} / root "
        f"{path.duration:.6g} = {ratio:.4f}",
    ]
    for stage, total in totals.items():
        share = total / path.duration if path.duration else 0.0
        lines.append(f"  {stage:<12} {total:>14.6g} {share:>7.1%}")
    if limit:
        lines.append("segments (longest first):")
        longest = sorted(path.segments, key=lambda s: -s.duration)[:limit]
        for segment in longest:
            stage = segment.stage or "-"
            lines.append(
                f"  [{segment.start:.6g}, {segment.end:.6g}] "
                f"{segment.name:<24} stage={stage:<10} lane={segment.lane}"
            )
    return "\n".join(lines)
