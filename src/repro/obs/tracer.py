"""Nested-span tracer with per-thread lanes and a fixed stage taxonomy.

A :class:`Tracer` records where time goes in a *real* execution - the
functional simulator, the parallel chunk engine, the reliability retry
path, the batch service - as nested spans::

    with tracer.span("run", circuit="bv_12"):
        with tracer.span("reorder", stage="transpile"):
            ...
        with tracer.span("apply:h", stage="compute", gate=3):
            ...

Each span lands on a **lane** (one per thread by default, so chunk-worker
threads get their own rows in the trace viewer), carries a **stage** from
the taxonomy below, and nests under the innermost open span of its thread
(or an explicit cross-thread ``parent``).

The stage taxonomy deliberately matches the DES model's resource names
(:mod:`repro.core.detailed` schedules ``h2d`` / ``gpu`` / ``d2h`` tasks;
:func:`stage_for_resource` maps them in), so the measured breakdown of a
traced run is directly comparable with the simulated breakdowns behind
Fig. 2/4/6.

Disabled tracing is near-free: ``Tracer(enabled=False).span(...)`` returns
a shared no-op context manager without touching the clock, and the module
singleton :data:`NULL_TRACER` lets call sites skip counter bookkeeping
entirely (``tracer is not NULL_TRACER``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ObservabilityError
from repro.obs.clock import WallClock
from repro.obs.counters import CounterRegistry

#: The span taxonomy.  ``h2d`` / ``compute`` / ``codec`` / ``d2h`` are the
#: paper's Fig. 2 stages; the rest cover the runtime around the kernels.
STAGES: tuple[str, ...] = (
    "transpile",   # reordering, decomposition, merge/cancel passes
    "fuse",        # gate-fusion slab construction (statevector.fusion)
    "plan",        # backend/precision planning (feature + cost analysis)
    "schedule",    # service dispatch / queue ordering
    "prune",       # Algorithm 1 bookkeeping and live-set filtering
    "h2d",         # host-to-device chunk transfers
    "compute",     # gate kernels (chunk updates)
    "codec",       # GFC compress / decompress
    "d2h",         # device-to-host chunk transfers
    "retry",       # reliability recovery (retransmission, backoff)
    "checkpoint",  # checkpoint write / resume load
    "integrity",   # CRC and norm-conservation guards
    "other",       # attributed but uncategorised work
)

#: DES-model resource name -> taxonomy stage.  Every resource the event
#: engine schedules must map here, which a test enforces.  Multi-device
#: schedules namespace their resources by device (``gpu1:h2d``); the
#: lookup strips that prefix, so the taxonomy stays device-agnostic.
DES_RESOURCE_STAGES: dict[str, str] = {
    "h2d": "h2d",
    "gpu": "compute",
    "d2h": "d2h",
    "cpu": "compute",
    "codec": "codec",
}


def stage_for_resource(resource: str) -> str | None:
    """Taxonomy stage for a DES resource name (None when unmapped).

    Device-namespaced resources (``gpu1:h2d``) map by their engine suffix.
    """
    stage = DES_RESOURCE_STAGES.get(resource)
    if stage is not None:
        return stage
    prefix, sep, suffix = resource.partition(":")
    if sep and not prefix.startswith("__"):
        return DES_RESOURCE_STAGES.get(suffix)
    return None


def device_for_resource(resource: str) -> str | None:
    """Device prefix of a namespaced DES resource (``gpu1:h2d`` -> ``gpu1``).

    None for un-namespaced (single-device) resources and for internal
    dunder resources like the retry engine's backoff timers.
    """
    prefix, sep, suffix = resource.partition(":")
    if sep and suffix in DES_RESOURCE_STAGES and not prefix.startswith("__"):
        return prefix
    return None


@dataclass
class Span:
    """One completed span.

    Attributes:
        index: Stable id, assigned at span entry (parents before children).
        name: Display name.
        stage: Taxonomy stage, or None for structural spans.
        lane: Trace row (thread-derived unless overridden).
        start: Clock reading at entry.
        end: Clock reading at exit.
        parent: Index of the enclosing span (None for lane roots).
        attrs: JSON-safe key/value annotations.
    """

    index: int
    name: str
    stage: str | None
    lane: str
    start: float
    end: float
    parent: int | None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpan:
    """Reusable no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Open-span context manager; records a :class:`Span` on exit."""

    __slots__ = (
        "_tracer", "name", "stage", "lane", "parent", "attrs", "index",
        "start", "alloc0",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        stage: str | None,
        lane: str | None,
        parent: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.stage = stage
        self.lane = lane
        self.parent = parent
        self.attrs = attrs
        self.index = -1
        self.start: float = 0.0
        self.alloc0: int | None = None

    def __enter__(self) -> "_SpanHandle":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._exit(self)
        return False


class Tracer:
    """Collects nested spans against one clock, plus a counter registry.

    Args:
        clock: Timestamp source (default: a fresh :class:`WallClock`).
            Pass a :class:`~repro.obs.clock.LogicalClock` for byte-identical
            traces under serial (``workers=1``) schedules.
        enabled: When False, :meth:`span` is a no-op returning a shared
            null context manager; counters still work.
        counters: Registry spans and call sites count into (default: a
            fresh :class:`CounterRegistry`).
        histograms: When True (the default for an enabled tracer's call
            sites to honour), every staged span's duration is observed
            into the ``span_seconds`` histogram of the counter registry,
            one series per stage, and instrumented call sites record
            distribution metrics (e.g. chunk bytes).  Pass False to keep
            full tracing but skip histogram bookkeeping.
        memory: When True, every staged span additionally records memory
            telemetry at exit: the process peak RSS into the
            ``span_peak_bytes`` histogram (one series per stage) and -
            when :mod:`tracemalloc` is tracing - the net python
            allocation delta over the span into ``span_alloc_bytes``.
            Off by default: reading ``/proc`` per span exit is cheap but
            not free, and the disabled-tracer path must stay under the
            <3% overhead gate.
        profiler: Optional :class:`~repro.obs.profile.SamplingProfiler`
            to attach.  Attachment wires the profiler to this tracer's
            open-span registry so wall-clock samples are attributed to
            the currently open span stage per lane; starting and
            stopping the sampler stays explicit (``with profiler:``).
    """

    def __init__(
        self,
        clock: Any = None,
        enabled: bool = True,
        counters: CounterRegistry | None = None,
        histograms: bool = True,
        memory: bool = False,
        profiler: Any = None,
    ) -> None:
        self.enabled = enabled
        self.clock = clock if clock is not None else WallClock()
        self.counters = counters if counters is not None else CounterRegistry()
        self.histograms = histograms
        self.memory = memory
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_index = 0
        self._local = threading.local()
        self._stage_hists: dict[str, Any] = {}
        #: Live per-thread open-span stacks (thread ident -> the same list
        #: object ``_local.stack`` aliases).  Registered once per thread on
        #: its first span, so the hot span path pays nothing extra; the
        #: sampling profiler reads the stacks racily, which is safe - a
        #: torn read only misattributes that one sample.
        self._open_stacks: dict[int, list[_SpanHandle]] = {}
        self.profiler = profiler
        if profiler is not None:
            profiler.attach(self)

    # -- span API ------------------------------------------------------------

    def span(
        self,
        name: str,
        stage: str | None = None,
        lane: str | None = None,
        parent: int | None = None,
        **attrs: Any,
    ):
        """Open a span; use as a context manager.

        Args:
            name: Display name.
            stage: Taxonomy stage (one of :data:`STAGES`) or None.
            lane: Explicit lane; defaults to the enclosing span's lane or
                this thread's name.
            parent: Explicit parent span index for cross-thread nesting
                (e.g. a worker task parented to the coordinator's gate
                span); defaults to this thread's innermost open span.

        Raises:
            ObservabilityError: On a stage outside the taxonomy.
        """
        if not self.enabled:
            return _NULL_SPAN
        if stage is not None and stage not in STAGES:
            raise ObservabilityError(
                f"unknown stage {stage!r} (taxonomy: {', '.join(STAGES)})"
            )
        return _SpanHandle(self, name, stage, lane, parent, attrs)

    def current_parent(self) -> int | None:
        """Index of this thread's innermost open span (for cross-thread use)."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1].index

    def open_stages(self) -> dict[int, tuple[str | None, str, str]]:
        """Per-thread ``(stage, span name, lane)`` of the innermost open span.

        Keyed by thread ident; the stage is the innermost *staged* open
        span's (structural spans are skipped upward).  Read racily by the
        sampling profiler - stacks mutate concurrently, so entries may be
        one span stale, which only smears a single sample.
        """
        out: dict[int, tuple[str | None, str, str]] = {}
        for ident, stack in list(self._open_stacks.items()):
            top = stack[-1] if stack else None
            if top is None:
                continue
            stage = None
            for handle in reversed(stack):
                if handle.stage is not None:
                    stage = handle.stage
                    break
            out[ident] = (stage, top.name, top.lane or "main")
        return out

    # -- results -------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Completed spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def lanes(self) -> list[str]:
        """Lane names in deterministic (sorted, main-first) order."""
        names = {span.lane for span in self.spans}
        return sorted(names, key=lambda lane: (lane != "main", lane))

    # -- internals -----------------------------------------------------------

    def _thread_lane(self) -> str:
        name = threading.current_thread().name
        return "main" if name == "MainThread" else name

    def _enter(self, handle: _SpanHandle) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._open_stacks[threading.get_ident()] = stack
        if handle.parent is None and stack:
            handle.parent = stack[-1].index
        if handle.lane is None:
            handle.lane = stack[-1].lane if stack else self._thread_lane()
        with self._lock:
            handle.index = self._next_index
            self._next_index += 1
        if self.memory and handle.stage is not None:
            import tracemalloc

            if tracemalloc.is_tracing():
                handle.alloc0 = tracemalloc.get_traced_memory()[0]
        handle.start = self.clock.tick()
        stack.append(handle)

    def _exit(self, handle: _SpanHandle) -> None:
        end = self.clock.tick()
        stack = getattr(self._local, "stack", [])
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:  # pragma: no cover - misnested exit, be safe
            stack.remove(handle)
        span = Span(
            index=handle.index,
            name=handle.name,
            stage=handle.stage,
            lane=handle.lane or "main",
            start=handle.start,
            end=end,
            parent=handle.parent,
            attrs=handle.attrs,
        )
        with self._lock:
            self._spans.append(span)
        if self.histograms and span.stage is not None:
            series = self._stage_hists.get(span.stage)
            if series is None:
                series = self._stage_hists[span.stage] = self.counters.histogram(
                    "span_seconds", stage=span.stage
                )
            series.observe(span.duration)
        if self.memory and span.stage is not None:
            from repro.obs.profile import process_peak_rss_bytes

            peak = process_peak_rss_bytes()
            if peak:
                self.counters.histogram(
                    "span_peak_bytes", stage=span.stage
                ).observe(peak)
            if handle.alloc0 is not None:
                import tracemalloc

                if tracemalloc.is_tracing():
                    delta = tracemalloc.get_traced_memory()[0] - handle.alloc0
                    self.counters.histogram(
                        "span_alloc_bytes", stage=span.stage
                    ).observe(max(0, delta))


#: Shared disabled tracer: the default for every instrumented call site.
#: ``tracer is not NULL_TRACER`` is the cheap "is observability on" test.
NULL_TRACER = Tracer(enabled=False)
