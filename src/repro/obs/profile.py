"""Sampling profiler + process-memory telemetry for traced runs.

The tracer (PR 4/5) answers *which stage* is slow; this module answers
*why*: a low-overhead background sampler built entirely on the stdlib
(:func:`sys._current_frames` on a daemon :class:`threading.Thread`)
periodically snapshots every thread's python stack and attributes each
wall-clock sample to the **currently open span stage of that thread's
lane**, read racily off the tracer's open-span registry
(:meth:`~repro.obs.tracer.Tracer.open_stages`).  Aggregated samples
export two ways:

* :meth:`SamplingProfiler.folded` - the folded-stack text format
  (``lane;stage;frame;frame... count``) that Brendan Gregg's
  ``flamegraph.pl`` and every speedscope-style viewer ingest;
* :meth:`SamplingProfiler.flamegraph` - a **self-contained SVG**
  flamegraph (no javascript, no external assets; hover titles carry the
  counts) so CI can publish one artifact per traced smoke run.

Because attribution keys on the span stage, the profile's per-stage
sample shares are directly comparable with ``trace summary``'s per-stage
time shares - the acceptance check ``repro simulate --profile`` runs.

The module also hosts the process-memory read-backs the memory-telemetry
side of the observatory uses (``Tracer(memory=True)`` records them into
the ``span_peak_bytes{stage}`` histograms; the service's ``/metrics``
endpoint exposes them as gauges):

* :func:`process_rss_bytes` / :func:`process_peak_rss_bytes` - current
  and high-water resident set, read from ``/proc/self/status`` on Linux
  with a :mod:`resource`-based fallback elsewhere.

Everything here is optional machinery: a :class:`SamplingProfiler` is
only ever constructed when the caller asked for one (``repro simulate
--profile``), so the shared-NULL disabled tracing path stays untouched
and inside the <3% ``BENCH_obs.json`` overhead gate.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ObservabilityError

#: Stage label for samples taken while a thread had no open staged span.
UNATTRIBUTED_STAGE = "(no-span)"

#: Default sampling period: 5 ms keeps a ~1000-gate smoke run at a few
#: hundred samples for well under 1% overhead.
DEFAULT_INTERVAL = 0.005


# -- process memory read-backs -------------------------------------------------


def _proc_status_bytes(field: str) -> int | None:
    """One ``kB`` field of ``/proc/self/status``, in bytes (None off-Linux)."""
    try:
        with open("/proc/self/status", "rb") as handle:
            prefix = field.encode()
            for line in handle:
                if line.startswith(prefix):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def _rusage_peak_bytes() -> int:
    """Peak RSS via :mod:`resource` (kilobytes on Linux, bytes on macOS)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def process_rss_bytes() -> int:
    """Current resident set size of this process (0 when unreadable)."""
    value = _proc_status_bytes("VmRSS:")
    return value if value is not None else _rusage_peak_bytes()


def process_peak_rss_bytes() -> int:
    """High-water resident set size of this process (0 when unreadable)."""
    value = _proc_status_bytes("VmHWM:")
    return value if value is not None else _rusage_peak_bytes()


# -- the sampler ---------------------------------------------------------------


class SamplingProfiler:
    """Background wall-clock sampler attributing stacks to span stages.

    Args:
        interval: Seconds between samples (default 5 ms).
        max_depth: Frames kept per stack, innermost dropped first.
        tracer: Optional tracer to attribute samples against; normally
            installed via ``Tracer(profiler=...)``, which calls
            :meth:`attach`.

    Use as a context manager around the region to profile::

        profiler = SamplingProfiler()
        tracer = Tracer(profiler=profiler)
        with profiler:
            QGpuSimulator(tracer=tracer).run(circuit)
        profiler.write("run.profile")     # run.profile.folded + .svg
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        max_depth: int = 64,
        tracer: Any = None,
    ) -> None:
        if interval <= 0:
            raise ObservabilityError(f"sampling interval must be positive, got {interval}")
        if max_depth < 1:
            raise ObservabilityError(f"max_depth must be >= 1, got {max_depth}")
        self.interval = interval
        self.max_depth = max_depth
        self.tracer = tracer
        self._lock = threading.Lock()
        self._samples: dict[tuple[str, ...], int] = {}
        self.sample_count = 0
        self.started_at: float | None = None
        self.stopped_at: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- wiring ----------------------------------------------------------------

    def attach(self, tracer: Any) -> None:
        """Adopt ``tracer`` as the stage-attribution source."""
        self.tracer = tracer

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the background sampler thread; returns self for chaining."""
        if self._thread is not None:
            raise ObservabilityError("profiler already started")
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.stopped_at = time.perf_counter()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - never kill the host run
                pass

    # -- sampling --------------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every thread; returns stacks recorded.

        Exposed so tests (and deterministic captures) can sample without
        the background thread; the sampler thread itself is excluded.
        """
        frames = sys._current_frames()
        stages: dict[int, tuple[str | None, str, str]] = {}
        if self.tracer is not None:
            try:
                stages = self.tracer.open_stages()
            except Exception:  # pragma: no cover - defensive
                stages = {}
        names = {
            thread.ident: thread.name
            for thread in threading.enumerate()
            if thread.ident is not None
        }
        me = self._thread.ident if self._thread is not None else None
        recorded = 0
        for ident, frame in frames.items():
            if ident == me:
                continue
            name = names.get(ident, str(ident))
            if name == "obs-profiler":  # pragma: no cover - covered by `me`
                continue
            lane = "main" if name == "MainThread" else name
            stage = stages.get(ident, (None, "", ""))[0] or UNATTRIBUTED_STAGE
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                module = frame.f_globals.get("__name__", "?")
                stack.append(f"{module}:{code.co_name}")
                frame = frame.f_back
                depth += 1
            stack.reverse()
            key = (lane, stage, *stack)
            with self._lock:
                self._samples[key] = self._samples.get(key, 0) + 1
            recorded += 1
        with self._lock:
            self.sample_count += 1
        return recorded

    # -- results ---------------------------------------------------------------

    @property
    def samples(self) -> dict[tuple[str, ...], int]:
        """``(lane, stage, frame...) -> count``, sorted by key."""
        with self._lock:
            return dict(sorted(self._samples.items()))

    @property
    def total_samples(self) -> int:
        """Total stack samples recorded (across all threads)."""
        with self._lock:
            return sum(self._samples.values())

    def stage_shares(self) -> dict[str, float]:
        """Fraction of stack samples per stage, descending.

        The profile-side counterpart of ``trace summary``'s per-stage
        time shares: on a serial traced run the two agree to sampling
        noise, which is the acceptance check ``--profile`` documents.
        """
        totals: dict[str, int] = {}
        for key, count in self.samples.items():
            totals[key[1]] = totals.get(key[1], 0) + count
        grand = sum(totals.values())
        if not grand:
            return {}
        return {
            stage: count / grand
            for stage, count in sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        }

    def folded(self) -> str:
        """Folded-stack export: one ``lane;stage;frames... count`` per line."""
        lines = [
            ";".join(key) + f" {count}" for key, count in self.samples.items()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def flamegraph(self, title: str = "repro profile") -> str:
        """Self-contained SVG flamegraph of the aggregated samples."""
        return render_flamegraph(self.samples, title=title)

    def write(self, base: str | Path) -> tuple[Path, Path]:
        """Write ``<base>.folded`` and ``<base>.svg``; returns both paths."""
        base = Path(base)
        folded_path = base.with_name(base.name + ".folded")
        svg_path = base.with_name(base.name + ".svg")
        folded_path.write_text(self.folded())
        svg_path.write_text(self.flamegraph(title=base.name))
        return folded_path, svg_path


# -- flamegraph rendering ------------------------------------------------------

#: Fixed fill per taxonomy stage (matches the docs' stage colors); frames
#: below the stage row hash onto the warm palette.
_STAGE_COLORS = {
    "transpile": "#8e7cc3",
    "fuse": "#a64d79",
    "plan": "#674ea7",
    "schedule": "#6fa8dc",
    "prune": "#76a5af",
    "h2d": "#f6b26b",
    "compute": "#e06666",
    "codec": "#ffd966",
    "d2h": "#f9cb9c",
    "retry": "#cc4125",
    "checkpoint": "#93c47d",
    "integrity": "#b6d7a8",
    "other": "#cccccc",
    UNATTRIBUTED_STAGE: "#d9d9d9",
}

_FRAME_COLORS = ("#fa7a50", "#f0944e", "#e8ab55", "#de6b50", "#f28b63",
                 "#e89a4e", "#f4a261", "#e76f51")

_ROW_HEIGHT = 17
_WIDTH = 1200
_FONT = 11


class _Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.children: dict[str, _Node] = {}

    def child(self, name: str) -> "_Node":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Node(name)
        return node


def _frame_color(name: str, depth: int) -> str:
    if depth == 1 and name in _STAGE_COLORS:
        return _STAGE_COLORS[name]
    if depth == 0:
        return "#a2c4c9"
    # Stable hash (not ``hash()``: PYTHONHASHSEED varies) for determinism.
    digest = 0
    for char in name:
        digest = (digest * 131 + ord(char)) & 0xFFFFFFFF
    return _FRAME_COLORS[digest % len(_FRAME_COLORS)]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def render_flamegraph(
    samples: Mapping[tuple[str, ...], int], title: str = "repro profile"
) -> str:
    """Render folded samples as a deterministic, dependency-free SVG.

    The layout is a top-down icicle: row 0 is the lane, row 1 the stage,
    deeper rows the python frames.  Rect widths are proportional to
    sample counts; hover ``<title>`` elements carry name, count, and
    share, so the file needs no scripts to be explorable.
    """
    root = _Node("all")
    for key, count in sorted(samples.items()):
        root.value += count
        node = root
        for part in key:
            node = node.child(part)
            node.value += count
    total = root.value
    parts: list[str] = []
    max_depth = [0]

    def emit(node: _Node, x: float, depth: int) -> None:
        max_depth[0] = max(max_depth[0], depth)
        width = _WIDTH * node.value / total if total else 0.0
        y = depth * _ROW_HEIGHT
        share = node.value / total if total else 0.0
        label = _escape(node.name)
        parts.append(
            f'<g><title>{label} ({node.value} sample(s), {share:.1%})</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(width, 0.4):.2f}" '
            f'height="{_ROW_HEIGHT - 1}" fill="{_frame_color(node.name, depth)}" '
            f'rx="1"/>'
        )
        if width > 40:
            text = label if len(label) * 7 < width else label[: max(1, int(width // 7))]
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + _ROW_HEIGHT - 5}" '
                f'font-size="{_FONT}" font-family="monospace">{text}</text>'
            )
        parts.append("</g>")
        cursor = x
        for child in sorted(node.children.values(), key=lambda n: (-n.value, n.name)):
            emit(child, cursor, depth + 1)
            cursor += _WIDTH * child.value / total if total else 0.0

    if total:
        emit(root, 0.0, 0)
    height = (max_depth[0] + 2) * _ROW_HEIGHT + 24
    header = (
        f'<text x="4" y="{(max_depth[0] + 1) * _ROW_HEIGHT + 16}" '
        f'font-size="{_FONT + 1}" font-family="monospace">'
        f'{_escape(title)}: {total} sample(s)</text>'
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{height}" viewBox="0 0 {_WIDTH} {height}">'
        f'<rect width="100%" height="100%" fill="#ffffff"/>'
        + "".join(parts)
        + header
        + "</svg>\n"
    )
