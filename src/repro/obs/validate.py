"""Span-wellformedness validation for traces from concurrent runs.

``workers=1`` traces are checked for byte-identity; ``workers>1`` traces
cannot be, so this module checks the structural invariants that any
correct trace must satisfy instead:

* every span ends at or after it starts;
* every stage tag is in the taxonomy;
* every parent reference resolves, and the parent's interval encloses the
  child's;
* within one lane, spans are *laminar* - any two either nest or are
  disjoint.  A partial overlap means two context managers interleaved on
  one thread, which the per-thread span stack makes impossible unless the
  recording itself is corrupt.

Interval comparisons use strict inequalities so spans that merely touch
at a timestamp (common under the integer :class:`LogicalClock` and with
zero-duration spans) do not raise false positives.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.tracer import STAGES, Span


def validate_spans(spans: list[Span]) -> list[str]:
    """Return every wellformedness violation found (empty = valid)."""
    problems: list[str] = []
    by_index = {span.index: span for span in spans}
    for span in spans:
        label = f"span {span.index} ({span.name!r})"
        if span.end < span.start:
            problems.append(f"{label}: ends before it starts ({span.end} < {span.start})")
        if span.stage is not None and span.stage not in STAGES:
            problems.append(f"{label}: unknown stage {span.stage!r}")
        if span.parent is not None:
            parent = by_index.get(span.parent)
            if parent is None:
                problems.append(f"{label}: parent {span.parent} not in trace")
            elif parent.start > span.start or parent.end < span.end:
                problems.append(
                    f"{label}: not enclosed by parent {parent.index} "
                    f"([{span.start}, {span.end}] outside "
                    f"[{parent.start}, {parent.end}])"
                )
    lanes: dict[str, list[Span]] = {}
    for span in spans:
        lanes.setdefault(span.lane, []).append(span)
    for lane, members in sorted(lanes.items()):
        members.sort(key=lambda s: (s.start, -s.end))
        open_stack: list[Span] = []
        for span in members:
            while open_stack and open_stack[-1].end <= span.start:
                open_stack.pop()
            if open_stack and open_stack[-1].end < span.end:
                other = open_stack[-1]
                problems.append(
                    f"lane {lane!r}: spans {other.index} ({other.name!r}) and "
                    f"{span.index} ({span.name!r}) partially overlap "
                    f"([{other.start}, {other.end}] vs [{span.start}, {span.end}])"
                )
            else:
                open_stack.append(span)
    return problems


def check_spans(spans: list[Span]) -> None:
    """Raise :class:`ObservabilityError` listing all violations, if any."""
    problems = validate_spans(spans)
    if problems:
        head = f"trace has {len(problems)} wellformedness violation(s):\n  "
        raise ObservabilityError(head + "\n  ".join(problems))


def validate_trace_file(path: str | Path) -> int:
    """Validate a ``*.trace.json`` file; returns the number of spans checked.

    Raises:
        ObservabilityError: Unreadable file or any wellformedness violation.
    """
    from repro.obs.export import load_trace_events, spans_from_events

    spans = spans_from_events(load_trace_events(path))
    check_spans(spans)
    return len(spans)
