"""The two clocks every observability reading is taken against.

Both implement the same two-method interface (:meth:`tick` / :meth:`now`):

* :class:`WallClock` - ``time.monotonic`` seconds, zeroed at construction;
  right for real throughput and latency numbers.
* :class:`LogicalClock` - an integer that advances by one on every observed
  event.  Under a serial schedule (``workers=1``) every event happens in a
  deterministic order, so every recorded timestamp and duration - and
  therefore every exported trace and metrics file - is byte-identical
  across runs.  This is the ``--workers 1 --seed N`` reproducibility mode.

These classes used to live in :mod:`repro.service.metrics`; they moved
here when the tracer started sharing them, and the service re-exports
them unchanged.
"""

from __future__ import annotations

import threading
import time


class WallClock:
    """Monotonic wall-clock seconds, zeroed at construction."""

    deterministic = False

    def __init__(self) -> None:
        self._start = time.monotonic()

    def tick(self) -> float:
        """Advance (a no-op for wall time) and return the current reading."""
        return time.monotonic() - self._start

    def now(self) -> float:
        return time.monotonic() - self._start


class LogicalClock:
    """Event counter: each observed event is one tick.

    Ticking is lock-protected so traced worker threads cannot tear the
    counter; determinism still requires a serial schedule (the lock makes
    readings unique, not ordered).
    """

    deterministic = True

    def __init__(self) -> None:
        self._now = 0
        self._lock = threading.Lock()

    def tick(self) -> int:
        """Advance by one event and return the new reading."""
        with self._lock:
            self._now += 1
            return self._now

    def now(self) -> int:
        return self._now
