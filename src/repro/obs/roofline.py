"""Live roofline attribution for measured kernel counters.

The analysis layer already places *modelled* runs on a device roofline
(:mod:`repro.analysis.roofline`, Fig. 15); this module is the measured
side of the same picture.  The chunk engines accumulate, per kernel kind,
the amplitudes touched, the bytes moved under the DES cost model's
read+write convention (``2 * itemsize * amps`` - see
:func:`repro.statevector.kernels.kernel_work`), and the wall seconds of
every batched dispatch.  From those three counters -
``kernel_amps.<kind>`` / ``kernel_bytes.<kind>`` /
``kernel_seconds.<kind>``, present in every metrics export and embedded
in every trace's counter metadata - :func:`kernel_rooflines` derives each
kind's achieved amps/s and bytes/amp, and places the achieved bandwidth
against a machine bound, so ``trace analyze --roofline`` can report
"diagonal at 74% of the bandwidth bound".

The bound defaults to the *CPU* effective bandwidth of the chosen
:class:`~repro.hardware.specs.MachineSpec` - the functional engines run
on the host, and the DES model uses the same number to cost the CPU
version - keeping measured efficiency directly comparable with the
model's predictions.

The module also hosts :func:`model_roofline_points`, the shared sweep
behind the Fig. 15 experiment: ``experiments/fig15_roofline.py`` renders
its rows from this helper (byte-identically to the pre-refactor loop),
and other callers can reuse the same grid without importing the
experiment registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: Counter prefixes the chunk engines accumulate per kernel kind.
_AMPS_PREFIX = "kernel_amps."
_BYTES_PREFIX = "kernel_bytes."
_SECONDS_PREFIX = "kernel_seconds."
_CALLS_PREFIX = "kernels."


@dataclass(frozen=True)
class KernelRoofline:
    """Measured roofline placement of one kernel kind.

    Attributes:
        kind: Kernel kind (``diagonal``, ``dense``, ``inside_fused``, ...).
        calls: Batched dispatches recorded (``kernels.<kind>`` counts
            per-chunk invocations for some kinds, so this is the raw
            counter value, reported as-is).
        amps: Total amplitudes touched.
        bytes: Total bytes moved (DES convention: read + write per amp).
        seconds: Total wall seconds across dispatches.
        bound_bandwidth: The machine bandwidth bound, bytes/s.
    """

    kind: str
    calls: float
    amps: float
    bytes: float
    seconds: float
    bound_bandwidth: float

    @property
    def amps_per_second(self) -> float:
        """Achieved amplitude throughput (amps/s)."""
        return self.amps / self.seconds if self.seconds > 0 else 0.0

    @property
    def bytes_per_amp(self) -> float:
        """Modelled traffic per amplitude (2x itemsize by construction)."""
        return self.bytes / self.amps if self.amps > 0 else 0.0

    @property
    def achieved_bandwidth(self) -> float:
        """Achieved bandwidth (bytes/s) under the model's byte convention."""
        return self.bytes / self.seconds if self.seconds > 0 else 0.0

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the bandwidth bound."""
        if self.bound_bandwidth <= 0:
            return 0.0
        return self.achieved_bandwidth / self.bound_bandwidth


def kernel_rooflines(
    counters: Mapping[str, Any], bandwidth: float
) -> list[KernelRoofline]:
    """Per-kernel-kind roofline rows from a flat counter snapshot.

    Args:
        counters: A counter snapshot - ``tracer.counters.snapshot()``, a
            metrics JSON's ``"counters"`` object, or the snapshot read
            back off a trace's metadata
            (:func:`~repro.obs.export.trace_counters_snapshot`).
        bandwidth: Bandwidth bound in bytes/s (normally the machine's
            ``cpu.effective_bandwidth``).

    Returns:
        One row per kind that recorded any timed work, sorted by
        descending seconds (the dominant kernel first).  Kinds with
        invocation counts but no timed work (e.g. ``fused_slab``, a
        structural marker) are skipped.
    """
    kinds = sorted(
        {
            name[len(_SECONDS_PREFIX):]
            for name in counters
            if name.startswith(_SECONDS_PREFIX)
        }
    )
    rows = [
        KernelRoofline(
            kind=kind,
            calls=float(counters.get(_CALLS_PREFIX + kind, 0)),
            amps=float(counters.get(_AMPS_PREFIX + kind, 0)),
            bytes=float(counters.get(_BYTES_PREFIX + kind, 0)),
            seconds=float(counters.get(_SECONDS_PREFIX + kind, 0)),
            bound_bandwidth=float(bandwidth),
        )
        for kind in kinds
    ]
    return sorted(rows, key=lambda row: (-row.seconds, row.kind))


def render_kernel_rooflines(rows: Iterable[KernelRoofline]) -> str:
    """The per-kernel table ``trace analyze --roofline`` prints."""
    rows = list(rows)
    if not rows:
        return (
            "no timed kernel work in this trace (re-record a functional "
            "run with a wall clock: logical-clock traces stay "
            "byte-reproducible by skipping wall seconds)"
        )
    lines = [
        f"{'kernel':<14} {'calls':>8} {'Mamps/s':>10} {'B/amp':>7} "
        f"{'GB/s':>8} {'bound GB/s':>11} {'of bound':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.kind:<14} {row.calls:>8.0f} "
            f"{row.amps_per_second / 1e6:>10.1f} {row.bytes_per_amp:>7.1f} "
            f"{row.achieved_bandwidth / 1e9:>8.2f} "
            f"{row.bound_bandwidth / 1e9:>11.2f} {row.efficiency:>8.1%}"
        )
    top = rows[0]
    lines.append(
        f"dominant kernel: {top.kind} at {top.efficiency:.0%} of the "
        f"bandwidth bound ({top.achieved_bandwidth / 1e9:.2f} of "
        f"{top.bound_bandwidth / 1e9:.2f} GB/s)"
    )
    return "\n".join(lines)


def rooflines_payload(rows: Iterable[KernelRoofline]) -> list[dict[str, Any]]:
    """JSON-safe dicts for ``--json`` output, same order as ``rows``."""
    return [
        {
            "kind": row.kind,
            "calls": row.calls,
            "amps": row.amps,
            "bytes": row.bytes,
            "seconds": row.seconds,
            "amps_per_second": row.amps_per_second,
            "bytes_per_amp": row.bytes_per_amp,
            "achieved_bandwidth": row.achieved_bandwidth,
            "bound_bandwidth": row.bound_bandwidth,
            "efficiency": row.efficiency,
        }
        for row in rows
    ]


# -- the modelled side (shared with experiments/fig15_roofline.py) -------------


def model_roofline_points(
    circuits: tuple[str, ...],
    sizes: tuple[int, ...],
    versions: tuple,
    machine,
    gpu,
) -> list[tuple[tuple[str, int, str], Any]]:
    """The Fig. 15 sweep: one modelled roofline point per grid cell.

    Returns ``((family, size, version.name), RooflinePoint)`` tuples in
    the experiment's historical iteration order (family-major, then size,
    then version), so the fig15 experiment reproduces its rows
    byte-identically by formatting this sequence.

    Imports are deferred so :mod:`repro.obs` stays importable without
    pulling the experiment/DES stack in.
    """
    from repro.analysis.roofline import roofline_point
    from repro.experiments.common import timed_run

    points = []
    for family in circuits:
        for size in sizes:
            for version in versions:
                timing = timed_run(family, size, version, machine=machine)
                point = roofline_point(timing, gpu)
                points.append(((family, size, version.name), point))
    return points
