"""Structured logging on stdlib :mod:`logging`.

All library logging goes through the ``repro`` logger hierarchy
(``get_logger("cli")`` -> ``repro.cli``) so one :func:`configure_logging`
call - wired to the CLI's ``--log-level`` / ``--log-format`` flags -
controls everything.  The JSON format emits one object per line
(``{"level": ..., "logger": ..., "message": ..., **extra}``) with sorted
keys, machine-parsable by the same tooling that reads the metrics export.

The library itself never configures handlers at import time; until
:func:`configure_logging` runs, records propagate to whatever the host
application set up (or vanish, per stdlib default).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any

_ROOT_NAME = "repro"

#: Fields of a LogRecord that are bookkeeping, not user payload; anything
#: else attached via ``logger.info(..., extra={...})`` lands in the JSON.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """One sorted-key JSON object per record."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED:
                payload[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            payload["exception"] = repr(record.exc_info[1])
        return json.dumps(payload, sort_keys=True, default=repr)


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger under the ``repro`` hierarchy (``None`` for the root)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: str = "info", fmt: str = "text") -> logging.Logger:
    """(Re)configure the ``repro`` logger: one stderr handler, chosen format.

    Args:
        level: Name accepted by :func:`logging.getLevelName`
            (``debug`` / ``info`` / ``warning`` / ``error``).
        fmt: ``text`` for human-readable lines, ``json`` for one object
            per line.

    Returns:
        The configured root ``repro`` logger.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(getattr(logging, level.upper(), logging.INFO))
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    if fmt == "json":
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    return logger
