"""Process-wide counter registry for simulator, engine, and service stats.

One :class:`CounterRegistry` holds every named count of a run - chunks
touched and pruned, bytes moved raw vs. on the wire, kernel invocations by
kind, cache hits, worker-pool tasks, retries and faults - wherever in the
stack it was incremented.  The service's
:class:`~repro.service.metrics.MetricsRegistry` is backed by one, so
simulator-level run stats land in the same export as the scheduling
counters instead of being dropped when a job completes.

Counters are integers or floats; increments are lock-protected so worker
threads can count concurrently.  :meth:`snapshot` returns a sorted dict
and :meth:`to_json` a canonical serialization (sorted keys, fixed
separators) so deterministic runs diff clean.

The registry also hosts :class:`~repro.obs.hist.Histogram` series
(:meth:`histogram` get-or-creates one by name + label set), so
distribution metrics - span durations, chunk bytes, queue waits, job
latencies - export alongside the counters and reach the Prometheus
endpoint (:mod:`repro.obs.prom`) without a second registry.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable, Mapping

from repro.obs.hist import Histogram


class CounterRegistry:
    """Named monotonic counters, safe to increment from any thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, int | float] = {}
        self._histograms: dict[tuple[str, tuple[tuple[str, str], ...]], Histogram] = {}

    def count(self, name: str, increment: int | float = 1) -> None:
        """Add ``increment`` (default 1) to counter ``name``."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + increment

    # ``add`` reads better for byte/seconds accumulators.
    add = count

    def observe_max(self, name: str, value: int | float) -> None:
        """Record the running maximum of a gauge-like quantity."""
        with self._lock:
            if value > self._values.get(name, value - 1):
                self._values[name] = value

    def get(self, name: str, default: int | float = 0) -> int | float:
        with self._lock:
            return self._values.get(name, default)

    def merge(self, other: "CounterRegistry | Mapping[str, int | float]") -> None:
        """Fold another registry (or plain mapping) into this one."""
        items: Iterable[tuple[str, int | float]]
        if isinstance(other, CounterRegistry):
            items = list(other.snapshot().items())
        else:
            items = list(other.items())
        with self._lock:
            for name, value in items:
                self._values[name] = self._values.get(name, 0) + value

    def clear(self) -> None:
        with self._lock:
            self._values.clear()
            self._histograms.clear()

    def snapshot(self) -> dict[str, int | float]:
        """Sorted copy of every counter."""
        with self._lock:
            return dict(sorted(self._values.items()))

    # -- histograms ----------------------------------------------------------

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the histogram series ``name`` with ``labels``."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = Histogram(name, labels)
        return series

    def histograms(self) -> list[Histogram]:
        """Every registered histogram series, in deterministic key order."""
        with self._lock:
            series = list(self._histograms.values())
        return sorted(series, key=lambda h: h.key())

    def histogram_snapshot(self) -> dict[str, dict[str, Any]]:
        """Deterministic summary of every histogram, keyed by series key."""
        return {series.key(): series.snapshot() for series in self.histograms()}

    def to_json(self, extra: Mapping[str, Any] | None = None) -> str:
        """Canonical JSON export: ``{"counters": {...}, **extra}``.

        Histogram series are included under ``"histograms"`` when any
        exist, so counter-only exports keep their historical byte layout.
        """
        payload: dict[str, Any] = {"counters": self.snapshot()}
        histograms = self.histogram_snapshot()
        if histograms:
            payload["histograms"] = histograms
        if extra:
            payload.update(extra)
        return json.dumps(payload, sort_keys=True, separators=(",", ": "), indent=1) + "\n"
