"""Exporters: Chrome trace-event JSON, metrics JSON, and stage summaries.

Two deterministic outputs per traced run:

* ``*.trace.json`` - Chrome Trace Event Format (``chrome://tracing`` /
  Perfetto): each lane becomes a named thread, each span a complete
  (``"ph": "X"``) event carrying its stage, stable span id and parent id
  in ``args`` so the file round-trips back into spans.
* metrics JSON - the :class:`~repro.obs.counters.CounterRegistry` snapshot
  plus caller-supplied run stats, sorted keys, fixed separators.

Both serializations are canonical (sorted keys, stable event order), so a
``workers=1`` run under a :class:`~repro.obs.clock.LogicalClock` exports
byte-identical files across runs.

:func:`summarize` reduces a span list to the Fig. 2-style per-stage
breakdown: each span's *self time* (duration minus direct children) is
attributed to its stage, so stage totals plus the untraced remainder equal
the wall total exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ObservabilityError
from repro.obs.tracer import STAGES, Span, Tracer, stage_for_resource

#: Wall-clock traces scale seconds to the format's microseconds; logical
#: traces emit ticks directly (one tick = one "microsecond" in the viewer).
_WALL_SCALE = 1e6


def _scale(tracer: Tracer) -> float:
    return 1.0 if getattr(tracer.clock, "deterministic", False) else _WALL_SCALE


def trace_events(tracer: Tracer, process_name: str = "repro") -> list[dict[str, Any]]:
    """Build the Trace Event list for a tracer's completed spans."""
    return events_from_spans(
        tracer.spans,
        counters=tracer.counters.snapshot(),
        deterministic=bool(getattr(tracer.clock, "deterministic", False)),
        process_name=process_name,
        scale=_scale(tracer),
    )


def events_from_spans(
    spans: list[Span],
    counters: dict[str, Any] | None = None,
    deterministic: bool = False,
    process_name: str = "repro",
    scale: float = 1.0,
) -> list[dict[str, Any]]:
    """Build a Trace Event list from a plain span list.

    This is :func:`trace_events` without the tracer: re-exporting a parsed
    trace (:func:`spans_from_events`) with the metadata read back off the
    original events (:func:`trace_clock_deterministic`,
    :func:`trace_counters_snapshot`, :func:`trace_process_name`) and
    ``scale=1.0`` - parsed timestamps are already in trace units -
    reproduces this module's output byte-for-byte.
    """
    lanes = sorted({span.lane for span in spans},
                   key=lambda lane: (lane != "main", lane))
    tids = {lane: position + 1 for position, lane in enumerate(lanes)}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        },
        {
            "name": "clock",
            "ph": "M",
            "pid": 1,
            "args": {"deterministic": bool(deterministic)},
        },
        {
            "name": "counters",
            "ph": "M",
            "pid": 1,
            "args": dict(counters) if counters is not None else {},
        },
    ]
    for lane in lanes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[lane],
                "args": {"name": lane},
            }
        )
    for span in sorted(spans, key=lambda s: (s.start, s.index)):
        args: dict[str, Any] = {"span": span.index}
        if span.parent is not None:
            args["parent"] = span.parent
        if span.stage is not None:
            args["stage"] = span.stage
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.stage or "span",
                "ph": "X",
                "pid": 1,
                "tid": tids[span.lane],
                "ts": span.start * scale,
                "dur": span.duration * scale,
                "args": args,
            }
        )
    return events


def trace_json(tracer: Tracer, process_name: str = "repro") -> str:
    """Canonical Chrome-trace JSON (byte-identical for deterministic clocks)."""
    payload = {"traceEvents": trace_events(tracer, process_name)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def write_trace(tracer: Tracer, path: str | Path, process_name: str = "repro") -> int:
    """Write the trace JSON; returns bytes written."""
    text = trace_json(tracer, process_name)
    Path(path).write_text(text)
    return len(text)


# -- reading traces back -------------------------------------------------------


def trace_clock_deterministic(events: list[dict[str, Any]]) -> bool:
    """Whether a trace's clock metadata declares logical (tick) timestamps."""
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "clock":
            return bool(event.get("args", {}).get("deterministic"))
    return False


def trace_counters_snapshot(events: list[dict[str, Any]]) -> dict[str, Any]:
    """The counter snapshot embedded in a trace's metadata (empty if none)."""
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "counters":
            args = event.get("args")
            return dict(args) if isinstance(args, dict) else {}
    return {}


def trace_process_name(events: list[dict[str, Any]], default: str = "repro") -> str:
    """The process name embedded in a trace's metadata."""
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            return str(event.get("args", {}).get("name", default))
    return default


def load_trace_events(path: str | Path) -> list[dict[str, Any]]:
    """Read a ``*.trace.json`` file back to its event list.

    Accepts both this module's output and the DES exporter's
    (:mod:`repro.hardware.trace`) - any object with a ``traceEvents`` list.

    Raises:
        ObservabilityError: Unreadable file or unrecognized structure.
    """
    try:
        data = json.loads(Path(path).read_text())
    except OSError as error:
        raise ObservabilityError(f"cannot read trace {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ObservabilityError(f"{path}: not valid JSON ({error})") from None
    events = data.get("traceEvents") if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ObservabilityError(f"{path}: no traceEvents list found")
    return events


def spans_from_events(events: list[dict[str, Any]]) -> list[Span]:
    """Rebuild spans from trace events.

    Events written by this module carry span/parent ids and stages in
    ``args``; DES-model traces carry the resource in ``cat``, which maps
    into the taxonomy via :func:`stage_for_resource` and yields a flat
    (parentless) span list.
    """
    lanes: dict[Any, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lanes[event.get("tid")] = event.get("args", {}).get("name", "?")
    spans: list[Span] = []
    for position, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        args = event.get("args", {}) or {}
        stage = args.get("stage")
        if stage is None:
            stage = stage_for_resource(str(event.get("cat", "")))
        start = float(event.get("ts", 0.0))
        duration = float(event.get("dur", 0.0))
        tid = event.get("tid")
        spans.append(
            Span(
                index=int(args.get("span", position)),
                name=str(event.get("name", "?")),
                stage=stage,
                lane=lanes.get(tid, str(tid)),
                start=start,
                end=start + duration,
                parent=args.get("parent"),
                attrs={
                    k: v for k, v in args.items() if k not in ("span", "parent", "stage")
                },
            )
        )
    return spans


# -- summaries -----------------------------------------------------------------


@dataclass
class TraceSummary:
    """Per-stage totals of one trace.

    Attributes:
        wall: Trace extent (latest end minus earliest start).
        stages: Self-time total per taxonomy stage (only stages observed).
        untraced: ``wall`` minus the sum of stage totals - structural span
            time and gaps.  By construction ``sum(stages) + untraced ==
            wall`` exactly; it can go negative in multi-lane traces where
            worker lanes overlap the coordinator.
        span_count: Spans summarized.
        lanes: Lane names present.
    """

    wall: float = 0.0
    stages: dict[str, float] = field(default_factory=dict)
    untraced: float = 0.0
    span_count: int = 0
    lanes: list[str] = field(default_factory=list)


def summarize(spans: list[Span]) -> TraceSummary:
    """Reduce spans to the Fig. 2-style stage breakdown (self-time rule)."""
    if not spans:
        return TraceSummary()
    child_time: dict[int, float] = {}
    for span in spans:
        if span.parent is not None:
            child_time[span.parent] = child_time.get(span.parent, 0.0) + span.duration
    stages: dict[str, float] = {}
    for span in spans:
        if span.stage is None:
            continue
        self_time = span.duration - child_time.get(span.index, 0.0)
        stages[span.stage] = stages.get(span.stage, 0.0) + self_time
    wall = max(s.end for s in spans) - min(s.start for s in spans)
    untraced = wall - sum(stages.values())
    return TraceSummary(
        wall=wall,
        stages=stages,
        untraced=untraced,
        span_count=len(spans),
        lanes=sorted({s.lane for s in spans}, key=lambda lane: (lane != "main", lane)),
    )


#: Stages always shown in the summary table (the paper's Fig. 2 axes),
#: whether or not the trace exercised them.
_CORE_STAGES = ("h2d", "compute", "codec", "d2h")


def render_summary(summary: TraceSummary, unit: str = "s") -> str:
    """The stage-breakdown table the ``trace summary`` subcommand prints."""
    wall = summary.wall or 1.0
    lines = [f"{'stage':<12} {unit + ' total':>14} {'share':>8}"]
    for stage in STAGES:
        total = summary.stages.get(stage, 0.0)
        if total == 0.0 and stage not in _CORE_STAGES:
            continue
        lines.append(f"{stage:<12} {total:>14.6g} {total / wall:>7.1%}")
    lines.append(
        f"{'(untraced)':<12} {summary.untraced:>14.6g} {summary.untraced / wall:>7.1%}"
    )
    lines.append(f"{'wall total':<12} {summary.wall:>14.6g} {1.0:>7.1%}")
    lines.append(
        f"{summary.span_count} span(s) over {len(summary.lanes)} lane(s): "
        + ", ".join(summary.lanes)
    )
    return "\n".join(lines)


def metrics_json(tracer: Tracer, extra: dict[str, Any] | None = None) -> str:
    """Deterministic metrics export for one traced (or counted) run."""
    return tracer.counters.to_json(extra)
