"""Fleet analytics: per-device busy/idle, link utilization, comm matrix.

:mod:`repro.obs.analyze` answers "where did the time go" for one execution
stream; this module answers the multi-GPU questions of the paper's Fig. 19
(and the scale-out roadmap item): which *device* did the work, which *link*
carried the bytes, and how uneven the fleet was.  It consumes the same
plain :class:`~repro.obs.tracer.Span` lists - typically a multi-device DES
trace re-parsed by :func:`repro.obs.export.spans_from_events`, whose spans
carry the executor's ``meta`` annotations (device, link id, bytes) in
``attrs`` - and derives:

* per-device **busy/idle** time (union of that device's lane intervals)
  plus a per-stage split that reconciles exactly with the aggregate
  :func:`~repro.obs.analyze.stage_rollups` over the same spans;
* the **load-imbalance** metric ``max(busy) / mean(busy)`` (1.0 = perfectly
  balanced fleet);
* the device-to-device **communication matrix** in bytes.  Summed, it must
  equal the executor's own transfer accounting *exactly* - byte counts are
  integers, so float64 addition is exact and the identity is checkable
  with ``==`` (the fleet-smoke CI job does);
* per-**link** byte totals, busy time, and a bucketed utilization
  timeline;
* the cross-lane critical path and overlap efficiency, reusing
  :mod:`repro.obs.analyze` unchanged - device lanes are just lanes.

The result renders as the ``trace analyze --fleet`` report and exports as
Prometheus gauges via :func:`fleet_gauges` +
:func:`repro.obs.prom.render_prometheus`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.hardware.topology import HOST
from repro.obs.analyze import (
    CriticalPath,
    OverlapStats,
    _merge_intervals,
    critical_path,
    overlap_stats,
    stage_rollups,
)
from repro.obs.tracer import DES_RESOURCE_STAGES, Span, device_for_resource

#: Device label for single-device DES traces, whose resources carry no
#: ``gpu{d}:`` namespace.
DEFAULT_DEVICE = "gpu0"

#: Buckets in each link's utilization timeline.
DEFAULT_BUCKETS = 20


def span_device(span: Span) -> str | None:
    """The device a span ran on, or None for non-device work.

    Prefers the explicit ``device`` attribute the DES exporter writes,
    falls back to the lane's resource namespace, and maps the legacy
    un-namespaced single-device resources to :data:`DEFAULT_DEVICE`.
    """
    device = span.attrs.get("device")
    if isinstance(device, str) and device:
        return device
    device = device_for_resource(span.lane)
    if device is not None:
        return device
    if span.lane in DES_RESOURCE_STAGES:
        return DEFAULT_DEVICE
    return None


@dataclass
class DeviceStats:
    """Busy/idle accounting of one device across all its lanes.

    ``busy`` is the union of the device's span intervals (a device with
    overlapped copy and compute is busy once, not twice); ``stages`` is
    the per-stage span-time split, which double-counts that overlap by
    design so the fleet-wide stage sums reconcile with
    :func:`~repro.obs.analyze.stage_rollups`.
    """

    device: str
    busy: float = 0.0
    idle: float = 0.0
    stages: dict[str, float] = field(default_factory=dict)
    spans: int = 0


@dataclass
class LinkStats:
    """Traffic and occupancy of one interconnect link."""

    link_id: str
    bytes_total: float = 0.0
    transfers: int = 0
    busy: float = 0.0
    utilization: float = 0.0
    timeline: list[float] = field(default_factory=list)


@dataclass
class FleetAnalysis:
    """Everything :func:`fleet_analysis` derives from one span list."""

    wall: float = 0.0
    span_count: int = 0
    devices: list[DeviceStats] = field(default_factory=list)
    links: list[LinkStats] = field(default_factory=list)
    comm_matrix: dict[str, dict[str, float]] = field(default_factory=dict)
    total_bytes: float = 0.0
    imbalance: float = 0.0
    rollup_totals: dict[str, float] = field(default_factory=dict)
    overlap: OverlapStats = field(default_factory=OverlapStats)
    critical: CriticalPath = field(default_factory=CriticalPath)

    def device(self, name: str) -> DeviceStats | None:
        for stats in self.devices:
            if stats.device == name:
                return stats
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "wall": self.wall,
            "span_count": self.span_count,
            "devices": [
                {
                    "device": d.device,
                    "busy": d.busy,
                    "idle": d.idle,
                    "stages": dict(d.stages),
                    "spans": d.spans,
                }
                for d in self.devices
            ],
            "links": [
                {
                    "link": link.link_id,
                    "bytes": link.bytes_total,
                    "transfers": link.transfers,
                    "busy": link.busy,
                    "utilization": link.utilization,
                    "timeline": list(link.timeline),
                }
                for link in self.links
            ],
            "comm_matrix": {
                src: dict(row) for src, row in self.comm_matrix.items()
            },
            "total_bytes": self.total_bytes,
            "imbalance": self.imbalance,
            "stage_totals": dict(self.rollup_totals),
            "overlap": {
                "transfer": self.overlap.transfer,
                "hidden": self.overlap.hidden,
                "exposed": self.overlap.exposed,
                "efficiency": self.overlap.efficiency,
            },
            "critical_path": {
                "duration": self.critical.duration,
                "stage_totals": self.critical.stage_totals(),
            },
        }


def _bucket_fractions(
    intervals: list[tuple[float, float]],
    start: float,
    end: float,
    buckets: int,
) -> list[float]:
    """Busy fraction of each of ``buckets`` equal slices of [start, end]."""
    if buckets <= 0 or end <= start:
        return []
    width = (end - start) / buckets
    fractions = []
    for position in range(buckets):
        lo = start + position * width
        hi = lo + width
        covered = sum(
            min(hi, s_end) - max(lo, s_start)
            for s_start, s_end in intervals
            if s_end > lo and s_start < hi
        )
        fractions.append(covered / width)
    return fractions


def _span_endpoints(span: Span, device: str) -> tuple[str, str] | None:
    """(src, dst) endpoints of a transfer span.

    Explicit ``src``/``dst`` attributes win; without them the stage
    implies the direction (``h2d``: host to device, ``d2h``: back).
    """
    src, dst = span.attrs.get("src"), span.attrs.get("dst")
    if isinstance(src, str) and isinstance(dst, str):
        return src, dst
    if span.stage == "h2d":
        return HOST, device
    if span.stage == "d2h":
        return device, HOST
    return None


def fleet_analysis(
    spans: list[Span], buckets: int = DEFAULT_BUCKETS
) -> FleetAnalysis:
    """Derive the fleet view of a span list (all-empty for no spans)."""
    if not spans:
        return FleetAnalysis()
    start = min(span.start for span in spans)
    end = max(span.end for span in spans)
    wall = end - start

    device_intervals: dict[str, list[tuple[float, float]]] = {}
    device_stats: dict[str, DeviceStats] = {}
    link_stats: dict[str, LinkStats] = {}
    link_intervals: dict[str, list[tuple[float, float]]] = {}
    comm: dict[str, dict[str, float]] = {}
    total_bytes = 0.0

    for span in spans:
        device = span_device(span)
        if device is None:
            continue
        stats = device_stats.setdefault(device, DeviceStats(device))
        stats.spans += 1
        if span.stage is not None:
            stats.stages[span.stage] = (
                stats.stages.get(span.stage, 0.0) + span.duration
            )
        if span.end > span.start:
            device_intervals.setdefault(device, []).append(
                (span.start, span.end)
            )
        moved = span.attrs.get("bytes")
        if span.stage in ("h2d", "d2h") and isinstance(moved, (int, float)):
            endpoints = _span_endpoints(span, device)
            if endpoints is not None:
                src, dst = endpoints
                comm.setdefault(src, {})[dst] = (
                    comm.get(src, {}).get(dst, 0.0) + moved
                )
                total_bytes += moved
            link_id = span.attrs.get("link")
            if isinstance(link_id, str) and link_id:
                link = link_stats.setdefault(link_id, LinkStats(link_id))
                link.bytes_total += moved
                link.transfers += 1
                if span.end > span.start:
                    link_intervals.setdefault(link_id, []).append(
                        (span.start, span.end)
                    )

    for device, stats in device_stats.items():
        merged = _merge_intervals(device_intervals.get(device, []))
        stats.busy = sum(hi - lo for lo, hi in merged)
        stats.idle = max(0.0, wall - stats.busy)

    for link_id, link in link_stats.items():
        merged = _merge_intervals(link_intervals.get(link_id, []))
        link.busy = sum(hi - lo for lo, hi in merged)
        link.utilization = link.busy / wall if wall > 0 else 0.0
        link.timeline = _bucket_fractions(merged, start, end, buckets)

    busies = [stats.busy for stats in device_stats.values()]
    mean_busy = sum(busies) / len(busies) if busies else 0.0
    imbalance = max(busies) / mean_busy if mean_busy > 0 else 0.0

    rollups = stage_rollups(spans)
    return FleetAnalysis(
        wall=wall,
        span_count=len(spans),
        devices=[device_stats[name] for name in sorted(device_stats)],
        links=[link_stats[name] for name in sorted(link_stats)],
        comm_matrix={src: dict(row) for src, row in sorted(comm.items())},
        total_bytes=total_bytes,
        imbalance=imbalance,
        rollup_totals={
            stage: rollup.total for stage, rollup in rollups.items()
        },
        overlap=overlap_stats(spans),
        critical=critical_path(spans),
    )


def fleet_gauges(analysis: FleetAnalysis) -> dict[str, float]:
    """Flat gauge mapping for :func:`repro.obs.prom.render_prometheus`.

    Names are raw here; the Prometheus renderer sanitizes the link-id and
    device suffixes into metric-safe characters.
    """
    gauges: dict[str, float] = {
        "fleet_devices": float(len(analysis.devices)),
        "fleet_wall_seconds": analysis.wall,
        "fleet_load_imbalance": analysis.imbalance,
        "fleet_comm_bytes_total": analysis.total_bytes,
    }
    efficiency = analysis.overlap.efficiency
    if efficiency is not None:
        gauges["fleet_overlap_efficiency"] = efficiency
    for stats in analysis.devices:
        gauges[f"fleet_device_busy_seconds_{stats.device}"] = stats.busy
        gauges[f"fleet_device_idle_seconds_{stats.device}"] = stats.idle
    for link in analysis.links:
        gauges[f"fleet_link_bytes_{link.link_id}"] = link.bytes_total
        gauges[f"fleet_link_utilization_{link.link_id}"] = link.utilization
    return gauges


def _spark(fractions: list[float]) -> str:
    """Eight-level unicode sparkline of a utilization timeline."""
    blocks = " ▁▂▃▄▅▆▇█"
    return "".join(
        blocks[min(len(blocks) - 1, int(f * (len(blocks) - 1) + 0.5))]
        for f in fractions
    )


def render_fleet(analysis: FleetAnalysis, unit: str = "s") -> str:
    """Human-readable report for ``trace analyze --fleet``."""
    if analysis.span_count == 0:
        return "empty trace: 0 spans, nothing to analyze"
    wall = analysis.wall or 1.0
    lines = [
        f"fleet: {len(analysis.devices)} device(s), "
        f"{len(analysis.links)} link(s), wall {analysis.wall:.6g} {unit}",
        "",
        f"{'device':<10} {'busy ' + unit:>14} {'idle ' + unit:>14} "
        f"{'busy%':>7} {'spans':>7}",
    ]
    for stats in analysis.devices:
        lines.append(
            f"{stats.device:<10} {stats.busy:>14.6g} {stats.idle:>14.6g} "
            f"{stats.busy / wall:>6.1%} {stats.spans:>7}"
        )
    lines.append(
        f"load imbalance (max/mean busy): {analysis.imbalance:.4f}"
        + ("  (balanced)" if 0 < analysis.imbalance <= 1.02 else "")
    )
    # Reconciliation: fleet stage sums vs the aggregate rollup.
    device_stage_totals: dict[str, float] = {}
    for stats in analysis.devices:
        for stage, total in stats.stages.items():
            device_stage_totals[stage] = (
                device_stage_totals.get(stage, 0.0) + total
            )
    drift = max(
        (
            abs(device_stage_totals.get(stage, 0.0) - total)
            for stage, total in analysis.rollup_totals.items()
        ),
        default=0.0,
    )
    lines.append(
        f"stage reconciliation vs aggregate rollup: max drift {drift:.3g} {unit}"
    )
    if analysis.links:
        lines.append("")
        lines.append(
            f"{'link':<24} {'bytes':>14} {'xfers':>7} {'util':>7}  timeline"
        )
        for link in analysis.links:
            lines.append(
                f"{link.link_id:<24} {link.bytes_total:>14.6g} "
                f"{link.transfers:>7} {link.utilization:>6.1%}  "
                f"|{_spark(link.timeline)}|"
            )
    if analysis.comm_matrix:
        lines.append("")
        lines.append(
            f"communication matrix (bytes, total {analysis.total_bytes:.6g}):"
        )
        endpoints = sorted(
            {HOST}
            | set(analysis.comm_matrix)
            | {dst for row in analysis.comm_matrix.values() for dst in row},
            key=lambda name: (name != HOST, name),
        )
        header = " ".join(f"{dst:>12}" for dst in endpoints)
        corner = "src\\dst"
        lines.append(f"  {corner:<10} {header}")
        for src in endpoints:
            row = analysis.comm_matrix.get(src, {})
            cells = " ".join(f"{row.get(dst, 0.0):>12.6g}" for dst in endpoints)
            lines.append(f"  {src:<10} {cells}")
    efficiency = analysis.overlap.efficiency
    lines.append("")
    if efficiency is None:
        lines.append("overlap efficiency: n/a (no transfer spans in trace)")
    else:
        lines.append(
            f"overlap efficiency: {efficiency:.3f} "
            f"(hidden {analysis.overlap.hidden:.6g} of "
            f"{analysis.overlap.transfer:.6g} {unit} transfer)"
        )
    if analysis.critical.segments:
        totals = analysis.critical.stage_totals()
        top = sorted(totals.items(), key=lambda kv: -kv[1])[:3]
        described = ", ".join(f"{stage} {total:.6g}" for stage, total in top)
        lines.append(
            f"critical path: {analysis.critical.duration:.6g} {unit} "
            f"({described})"
        )
    return "\n".join(lines)
