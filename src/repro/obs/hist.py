"""Streaming log-bucket histograms: fixed bounds, mergeable, deterministic.

A :class:`Histogram` summarises a stream of non-negative observations
(span durations, chunk bytes, queue waits, job latencies) without storing
them.  Buckets sit on a **fixed power-of-two grid** shared by every
histogram in the process: observation ``v`` lands in the bucket whose
upper bound is the smallest ``2**i`` with ``v <= 2**i``, with exponents
clamped to ``[MIN_EXP, MAX_EXP]``.  Because the grid never depends on the
data:

* two histograms of the same name :meth:`merge` by adding bucket counts;
* the export is deterministic - a run that observes the same values in
  any order serialises byte-identically;
* the Prometheus exposition (see :mod:`repro.obs.prom`) emits cumulative
  ``le`` bounds straight off the grid.

Observations at or below zero land in the lowest bucket (bound
``2**MIN_EXP``); values beyond the top of the grid land in the highest.
Counts, sum, min and max are tracked exactly; only the distribution is
quantised.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterator, Mapping

#: Bucket-exponent clamp: bounds span 2^-30 (~1e-9, nanosecond-scale
#: durations) to 2^40 (~1e12, terabyte-scale byte counts).
MIN_EXP = -30
MAX_EXP = 40


def bucket_exponent(value: float) -> int:
    """Grid exponent ``i`` of the smallest bound ``2**i >= value`` (clamped)."""
    if value <= 2.0**MIN_EXP:
        return MIN_EXP
    if value > 2.0**MAX_EXP:
        return MAX_EXP
    # frexp is exact: value = m * 2**e with 0.5 <= m < 1, so the smallest
    # bound at or above value is 2**(e-1) exactly when m == 0.5 (a power
    # of two) and 2**e otherwise - no log2 rounding at the boundaries.
    mantissa, exponent = math.frexp(float(value))
    bound = exponent - 1 if mantissa == 0.5 else exponent
    return max(MIN_EXP, min(MAX_EXP, bound))


class Histogram:
    """One named streaming histogram on the fixed log-bucket grid.

    Args:
        name: Metric name (e.g. ``"job_wait_seconds"``).
        labels: Optional fixed label set distinguishing series of the same
            name (e.g. ``stage="compute"``).
    """

    __slots__ = ("name", "labels", "_lock", "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.labels: tuple[tuple[str, str], ...] = tuple(
            sorted((labels or {}).items())
        )
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    # -- recording -----------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        exponent = bucket_exponent(value)
        with self._lock:
            self._buckets[exponent] = self._buckets.get(exponent, 0) + 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's counts into this one (same grid always)."""
        with other._lock:
            buckets = dict(other._buckets)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for exponent, bucket_count in buckets.items():
                self._buckets[exponent] = self._buckets.get(exponent, 0) + bucket_count
            self._count += count
            self._sum += total
            if low is not None and (self._min is None or low < self._min):
                self._min = low
            if high is not None and (self._max is None or high > self._max):
                self._max = high

    # -- reading -------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def buckets(self) -> dict[int, int]:
        """Per-exponent (non-cumulative) counts, sorted by exponent."""
        with self._lock:
            return dict(sorted(self._buckets.items()))

    def cumulative(self) -> Iterator[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs over occupied grid range.

        Yields one entry per grid exponent from the lowest to the highest
        occupied bucket, so merged histograms and re-exports agree even
        when intermediate buckets are empty.
        """
        buckets = self.buckets()
        if not buckets:
            return
        running = 0
        for exponent in range(min(buckets), max(buckets) + 1):
            running += buckets.get(exponent, 0)
            yield 2.0**exponent, running

    def snapshot(self) -> dict[str, Any]:
        """Deterministic JSON-safe summary (bounds stringified, sorted)."""
        with self._lock:
            buckets = dict(sorted(self._buckets.items()))
            payload: dict[str, Any] = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": {repr(2.0**exp): n for exp, n in buckets.items()},
            }
        return payload

    def key(self) -> str:
        """Canonical series key: ``name`` or ``name{k=v,...}``."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"
