"""OpenQASM 2.0 emission and parsing (library gate-set subset).

The paper exports its benchmarks to OpenQASM in order to run them on
Qsim-Cirq and (after a further conversion) Microsoft QDK (Section V-C).  This
module provides the same interchange path: every circuit built from the
library gate set round-trips through :func:`to_qasm` / :func:`from_qasm`.

Only the subset of OpenQASM 2.0 needed for the library gate set is supported:
a single quantum register, gate statements with literal or ``pi``-expression
parameters, and comments.  Classical registers, ``measure``, ``barrier``,
``if`` and user-defined gates are rejected with :class:`~repro.errors.QasmError`.
"""

from __future__ import annotations

import math
import re

from repro.circuits.circuit import QuantumCircuit
from repro.errors import QasmError

# Gates whose QASM spelling differs from the library mnemonic.
_EMIT_NAME = {"id": "id", "p": "u1", "u": "u3"}
_PARSE_NAME = {"u1": "p", "u3": "u", "id": "id"}

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_QREG_RE = re.compile(r"^qreg\s+([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]$")
_GATE_RE = re.compile(
    r"^([A-Za-z_][\w]*)\s*(?:\(([^)]*)\))?\s+(.+)$"
)
_QUBIT_RE = re.compile(r"^([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]$")


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise ``circuit`` to OpenQASM 2.0 text."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    for gate in circuit:
        name = _EMIT_NAME.get(gate.name, gate.name)
        params = ""
        if gate.params:
            params = "(" + ",".join(repr(p) for p in gate.params) + ")"
        qubits = ",".join(f"q[{q}]" for q in gate.qubits)
        lines.append(f"{name}{params} {qubits};")
    return "\n".join(lines) + "\n"


def _eval_param(text: str) -> float:
    """Evaluate a QASM parameter expression: numbers, ``pi``, ``+-*/``.

    A tiny recursive-descent evaluator; the grammar is restricted to what
    ``qelib1``-style circuits emit, so no names other than ``pi`` resolve.
    """
    tokens = re.findall(r"\d+\.?\d*(?:[eE][+-]?\d+)?|pi|[-+*/()]", text.replace(" ", ""))
    if "".join(tokens) != text.replace(" ", ""):
        raise QasmError(f"cannot parse parameter expression {text!r}")
    pos = 0

    def peek() -> str | None:
        return tokens[pos] if pos < len(tokens) else None

    def take() -> str:
        nonlocal pos
        token = tokens[pos]
        pos += 1
        return token

    def parse_expr() -> float:
        value = parse_term()
        while peek() in ("+", "-"):
            if take() == "+":
                value += parse_term()
            else:
                value -= parse_term()
        return value

    def parse_term() -> float:
        value = parse_factor()
        while peek() in ("*", "/"):
            if take() == "*":
                value *= parse_factor()
            else:
                divisor = parse_factor()
                if divisor == 0:
                    raise QasmError(f"division by zero in {text!r}")
                value /= divisor
        return value

    def parse_factor() -> float:
        token = peek()
        if token is None:
            raise QasmError(f"unexpected end of expression in {text!r}")
        if token == "-":
            take()
            return -parse_factor()
        if token == "+":
            take()
            return parse_factor()
        if token == "(":
            take()
            value = parse_expr()
            if peek() != ")":
                raise QasmError(f"unbalanced parentheses in {text!r}")
            take()
            return value
        take()
        if token == "pi":
            return math.pi
        try:
            return float(token)
        except ValueError as exc:
            raise QasmError(f"bad numeric literal {token!r} in {text!r}") from exc

    value = parse_expr()
    if pos != len(tokens):
        raise QasmError(f"trailing tokens in parameter expression {text!r}")
    return value


def from_qasm(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse OpenQASM 2.0 text produced by :func:`to_qasm` (or compatible)."""
    register_name: str | None = None
    circuit: QuantumCircuit | None = None

    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        for statement in filter(None, (part.strip() for part in line.split(";"))):
            if statement.startswith("OPENQASM"):
                if not statement.startswith("OPENQASM 2"):
                    raise QasmError(f"unsupported QASM version: {statement!r}")
                continue
            if statement.startswith("include"):
                continue
            qreg = _QREG_RE.match(statement)
            if qreg:
                if circuit is not None:
                    raise QasmError("multiple qreg declarations are not supported")
                register_name = qreg.group(1)
                circuit = QuantumCircuit(int(qreg.group(2)), name=name)
                continue
            if statement.startswith(("creg", "measure", "barrier", "if", "reset", "gate")):
                raise QasmError(f"unsupported statement: {statement!r}")
            if circuit is None:
                raise QasmError(f"gate before qreg declaration: {statement!r}")
            match = _GATE_RE.match(statement)
            if match is None:
                raise QasmError(f"cannot parse statement: {statement!r}")
            gate_name, params_text, qubits_text = match.groups()
            gate_name = _PARSE_NAME.get(gate_name, gate_name)
            params = (
                tuple(_eval_param(p) for p in params_text.split(","))
                if params_text
                else ()
            )
            qubits = []
            for qubit_text in qubits_text.split(","):
                qubit_match = _QUBIT_RE.match(qubit_text.strip())
                if qubit_match is None:
                    raise QasmError(f"cannot parse qubit reference {qubit_text!r}")
                if qubit_match.group(1) != register_name:
                    raise QasmError(f"unknown register in {qubit_text!r}")
                qubits.append(int(qubit_match.group(2)))
            circuit.add(gate_name, *qubits, params=params)

    if circuit is None:
        raise QasmError("no qreg declaration found")
    return circuit
