"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuits.gates.Gate` objects on
``num_qubits`` qubits.  The class offers a builder-style API (``circ.h(0)``,
``circ.cx(0, 1)``) mirroring QISKit, plus the structural queries the Q-GPU
optimizations need (involvement profile, depth, gate counts).
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Iterator, Sequence

from repro.circuits.gates import GATE_SPECS, Gate
from repro.errors import CircuitError


class QuantumCircuit:
    """An ordered sequence of gates on a fixed-width qubit register.

    Args:
        num_qubits: Register width; all gate qubit indices must be
            ``0 <= q < num_qubits``.
        name: Optional display name (benchmark circuits use ``family_n``).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = num_qubits
        self.name = name
        self._gates: list[Gate] = []

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits and self._gates == other._gates
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_gates={len(self._gates)})"
        )

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    # -- construction --------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a prebuilt gate, validating qubit bounds."""
        for q in gate.qubits:
            if q >= self.num_qubits:
                raise CircuitError(
                    f"gate {gate} uses qubit {q} but circuit has "
                    f"{self.num_qubits} qubits"
                )
        self._gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Sequence[float] = ()) -> "QuantumCircuit":
        """Append gate ``name`` on ``qubits`` with optional ``params``."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    # Builder shorthands.  Generated statically (not via __getattr__) so the
    # API is introspectable and typo-safe.

    def i(self, q: int) -> "QuantumCircuit":
        return self.add("id", q)

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", q)

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", q)

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", q)

    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", q)

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", q)

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add("sdg", q)

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", q)

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", q)

    def sx(self, q: int) -> "QuantumCircuit":
        return self.add("sx", q)

    def sy(self, q: int) -> "QuantumCircuit":
        return self.add("sy", q)

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rx", q, params=(theta,))

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("ry", q, params=(theta,))

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rz", q, params=(theta,))

    def p(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("p", q, params=(theta,))

    def u(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u", q, params=(theta, phi, lam))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cx", control, target)

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cy", control, target)

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cz", control, target)

    def cp(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("cp", control, target, params=(theta,))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("crz", control, target, params=(theta,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", a, b)

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rzz", a, b, params=(theta,))

    def ccx(self, c0: int, c1: int, target: int) -> "QuantumCircuit":
        return self.add("ccx", c0, c1, target)

    def ccz(self, c0: int, c1: int, target: int) -> "QuantumCircuit":
        return self.add("ccz", c0, c1, target)

    # -- structural queries ---------------------------------------------------

    def fingerprint(self) -> str:
        """Stable SHA-256 content hash of the circuit's semantics.

        The digest covers the register width and the ordered gate sequence
        (mnemonic, qubit tuple, parameter tuple); the display ``name`` is
        deliberately excluded so renamed copies of the same circuit hash
        equal.  Parameters are hashed via their IEEE-754 shortest ``repr``,
        so any representable perturbation changes the digest.  Used as the
        content-address for the service result cache.
        """
        hasher = hashlib.sha256()
        hasher.update(f"qgpu-circuit-v1:{self.num_qubits}\n".encode())
        for gate in self._gates:
            qubits = ",".join(str(q) for q in gate.qubits)
            params = ",".join(repr(float(p)) for p in gate.params)
            hasher.update(f"{gate.name}|{qubits}|{params}\n".encode())
        return hasher.hexdigest()

    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate mnemonics."""
        counts: dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth: longest chain of gates sharing qubits."""
        level = [0] * self.num_qubits
        for gate in self._gates:
            next_level = 1 + max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = next_level
        return max(level, default=0)

    def used_qubits(self) -> set[int]:
        """Qubits touched by at least one gate."""
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return used

    def involvement_profile(self) -> list[int]:
        """Number of distinct qubits involved after each gate, in order.

        This is the quantity plotted in Fig. 9 of the paper: element ``k`` is
        ``|union of qubits of gates[0..k]|``.
        """
        involved: set[int] = set()
        profile: list[int] = []
        for gate in self._gates:
            involved.update(gate.qubits)
            profile.append(len(involved))
        return profile

    def gates_until_full_involvement(self) -> int:
        """Index (1-based count) of the gate at which all *used* qubits are involved.

        Reproduces the "number of operations before all qubits are involved"
        column of Table II.  Returns ``len(self)`` if the circuit never
        involves every qubit it uses (cannot happen by construction).
        """
        target = len(self.used_qubits())
        involved: set[int] = set()
        for index, gate in enumerate(self._gates):
            involved.update(gate.qubits)
            if len(involved) == target:
                return index + 1
        return len(self._gates)

    def with_gates(self, gates: Iterable[Gate], suffix: str = "") -> "QuantumCircuit":
        """Return a new circuit with the same width holding ``gates``."""
        out = QuantumCircuit(self.num_qubits, name=self.name + suffix)
        out.extend(gates)
        return out

    def compose(
        self, other: "QuantumCircuit", qubits: Sequence[int] | None = None
    ) -> "QuantumCircuit":
        """Append ``other``'s gates onto this circuit (returns a new one).

        Args:
            other: Circuit to append.
            qubits: Where ``other``'s qubit ``k`` lands in this circuit
                (defaults to the identity placement; ``other`` must then be
                no wider than this circuit).
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise CircuitError(
                f"placement names {len(qubits)} qubits for a "
                f"{other.num_qubits}-qubit circuit"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError("placement has repeated qubits")
        mapping = {k: q for k, q in enumerate(qubits)}
        out = QuantumCircuit(self.num_qubits, name=self.name)
        out.extend(self._gates)
        for gate in other:
            out.append(gate.remapped(mapping))
        return out

    def repeat(self, times: int) -> "QuantumCircuit":
        """The circuit applied ``times`` times in sequence."""
        if times < 0:
            raise CircuitError(f"cannot repeat {times} times")
        out = QuantumCircuit(self.num_qubits, name=f"{self.name}^{times}")
        for _ in range(times):
            out.extend(self._gates)
        return out

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (reversed order, inverted gates).

        Only gates that are self-inverse or have a parameter negation rule
        are supported; this covers the full library gate set.
        """
        inverse_names = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        out = QuantumCircuit(self.num_qubits, name=self.name + "_dg")
        for gate in reversed(self._gates):
            spec = GATE_SPECS[gate.name]
            if spec.self_inverse:
                out.append(gate)
            elif gate.name in inverse_names:
                out.add(inverse_names[gate.name], *gate.qubits)
            elif gate.name == "u":
                # u(theta, phi, lam)^-1 = u(-theta, -lam, -phi): the two
                # phase angles swap as well as negate.
                theta, phi, lam = gate.params
                out.add("u", *gate.qubits, params=(-theta, -lam, -phi))
            elif spec.num_params >= 1:
                out.add(
                    gate.name,
                    *gate.qubits,
                    params=tuple(-p for p in gate.params),
                )
            elif gate.name == "sx":
                # sx = exp(i*pi/4) rx(pi/2); the inverse matches rx(-pi/2)
                # up to an unobservable global phase.
                out.add("rx", *gate.qubits, params=(-math.pi / 2,))
            elif gate.name == "sy":
                out.add("ry", *gate.qubits, params=(-math.pi / 2,))
            else:  # pragma: no cover - defensive; all specs handled above
                raise CircuitError(f"cannot invert gate {gate.name!r}")
        return out
