"""Quantum gate definitions.

Each :class:`Gate` is an immutable record of a named operation applied to an
ordered tuple of qubits, optionally parameterised by real angles.  The unitary
matrix of a gate is built on demand from the registry in :data:`GATE_SPECS`.

Conventions
-----------
* Qubit ``0`` is the *least significant* bit of a basis-state index, matching
  the chunk-index arithmetic in the Q-GPU paper (low qubits live inside a
  chunk, high qubits select the chunk).
* For multi-qubit gates the first listed qubit is the least significant axis
  of the returned matrix.  For controlled gates the convention is
  ``(control, ..., target)``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.errors import CircuitError

_SQRT1_2 = 1.0 / math.sqrt(2.0)

# ---------------------------------------------------------------------------
# Matrix constructors
# ---------------------------------------------------------------------------


def _mat_id() -> np.ndarray:
    return np.eye(2, dtype=np.complex128)


def _mat_x() -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=np.complex128)


def _mat_y() -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=np.complex128)


def _mat_z() -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=np.complex128)


def _mat_h() -> np.ndarray:
    return np.array([[_SQRT1_2, _SQRT1_2], [_SQRT1_2, -_SQRT1_2]], dtype=np.complex128)


def _mat_s() -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=np.complex128)


def _mat_sdg() -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=np.complex128)


def _mat_t() -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=np.complex128)


def _mat_tdg() -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=np.complex128)


def _mat_sx() -> np.ndarray:
    return 0.5 * np.array(
        [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128
    )


def _mat_sy() -> np.ndarray:
    return 0.5 * np.array(
        [[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]], dtype=np.complex128
    )


def _mat_rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def _mat_ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def _mat_rz(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=np.complex128,
    )


def _mat_p(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * theta)]], dtype=np.complex128)


def _mat_u(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


def _embed_controlled(target_matrix: np.ndarray) -> np.ndarray:
    """Return the 4x4 matrix of a singly controlled 2x2 gate.

    Qubit order is ``(control, target)`` with the control as the *least
    significant* axis, so basis ordering is ``|t c>``: indices 1 and 3 have
    the control set.
    """
    out = np.eye(4, dtype=np.complex128)
    # control = qubit 0 (LSB), target = qubit 1.  Basis index = t*2 + c.
    # Control set -> indices 1 (t=0) and 3 (t=1).
    out[1, 1] = target_matrix[0, 0]
    out[1, 3] = target_matrix[0, 1]
    out[3, 1] = target_matrix[1, 0]
    out[3, 3] = target_matrix[1, 1]
    return out


def _mat_cx() -> np.ndarray:
    return _embed_controlled(_mat_x())


def _mat_cy() -> np.ndarray:
    return _embed_controlled(_mat_y())


def _mat_cz() -> np.ndarray:
    return _embed_controlled(_mat_z())


def _mat_cp(theta: float) -> np.ndarray:
    return _embed_controlled(_mat_p(theta))


def _mat_crz(theta: float) -> np.ndarray:
    return _embed_controlled(_mat_rz(theta))


def _mat_swap() -> np.ndarray:
    out = np.eye(4, dtype=np.complex128)
    out[[1, 2]] = out[[2, 1]]
    return out


def _mat_rzz(theta: float) -> np.ndarray:
    phase = cmath.exp(1j * theta / 2)
    return np.diag(
        [1 / phase, phase, phase, 1 / phase]
    ).astype(np.complex128)


def _mat_ccx() -> np.ndarray:
    # Qubits (c0, c1, t); c0 is LSB.  Swap the two states with both controls
    # set: indices 3 (t=0,c1=1,c0=1) and 7 (t=1,c1=1,c0=1).
    out = np.eye(8, dtype=np.complex128)
    out[[3, 7]] = out[[7, 3]]
    return out


def _mat_ccz() -> np.ndarray:
    out = np.eye(8, dtype=np.complex128)
    out[7, 7] = -1
    return out


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: Canonical lowercase mnemonic (e.g. ``"cx"``).
        num_qubits: Number of qubits the gate acts on.
        num_params: Number of real parameters.
        matrix_fn: Builds the ``2^k x 2^k`` unitary from the parameters.
        diagonal: True when the unitary is diagonal in the computational
            basis (such gates commute with each other).
        self_inverse: True when the gate is its own inverse.
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[..., np.ndarray]
    diagonal: bool = False
    self_inverse: bool = False


GATE_SPECS: dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        GateSpec("id", 1, 0, _mat_id, diagonal=True, self_inverse=True),
        GateSpec("x", 1, 0, _mat_x, self_inverse=True),
        GateSpec("y", 1, 0, _mat_y, self_inverse=True),
        GateSpec("z", 1, 0, _mat_z, diagonal=True, self_inverse=True),
        GateSpec("h", 1, 0, _mat_h, self_inverse=True),
        GateSpec("s", 1, 0, _mat_s, diagonal=True),
        GateSpec("sdg", 1, 0, _mat_sdg, diagonal=True),
        GateSpec("t", 1, 0, _mat_t, diagonal=True),
        GateSpec("tdg", 1, 0, _mat_tdg, diagonal=True),
        GateSpec("sx", 1, 0, _mat_sx),
        GateSpec("sy", 1, 0, _mat_sy),
        GateSpec("rx", 1, 1, _mat_rx),
        GateSpec("ry", 1, 1, _mat_ry),
        GateSpec("rz", 1, 1, _mat_rz, diagonal=True),
        GateSpec("p", 1, 1, _mat_p, diagonal=True),
        GateSpec("u", 1, 3, _mat_u),
        GateSpec("cx", 2, 0, _mat_cx, self_inverse=True),
        GateSpec("cy", 2, 0, _mat_cy, self_inverse=True),
        GateSpec("cz", 2, 0, _mat_cz, diagonal=True, self_inverse=True),
        GateSpec("cp", 2, 1, _mat_cp, diagonal=True),
        GateSpec("crz", 2, 1, _mat_crz, diagonal=True),
        GateSpec("swap", 2, 0, _mat_swap, self_inverse=True),
        GateSpec("rzz", 2, 1, _mat_rzz, diagonal=True),
        GateSpec("ccx", 3, 0, _mat_ccx, self_inverse=True),
        GateSpec("ccz", 3, 0, _mat_ccz, diagonal=True, self_inverse=True),
    ]
}


#: Bound on the memoized-matrix working set: parameterised circuits with
#: unboundedly many distinct angles must not grow the cache forever.
_MATRIX_CACHE_SIZE = 4096


@lru_cache(maxsize=_MATRIX_CACHE_SIZE)
def _cached_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    """Build (once) and freeze the unitary for a (name, params) pair.

    Gate instances are value objects, so every ``h`` or every ``rz(0.3)``
    shares one matrix; the chunked engine applies the same gate to
    thousands of chunks and must not rebuild it per chunk.  The array is
    marked read-only because it is shared - callers that need a private
    mutable copy must take one explicitly.
    """
    matrix = GATE_SPECS[name].matrix_fn(*params)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=_MATRIX_CACHE_SIZE)
def _cached_diagonal(name: str, params: tuple[float, ...]) -> np.ndarray:
    diagonal = np.ascontiguousarray(np.diag(_cached_matrix(name, params)))
    diagonal.setflags(write=False)
    return diagonal


@dataclass(frozen=True)
class Gate:
    """A gate instance: a gate type applied to concrete qubits.

    Attributes:
        name: Gate mnemonic; must be a key of :data:`GATE_SPECS`.
        qubits: Qubit indices the gate acts on, in gate-defined order
            (controls first, target last).
        params: Real parameters (rotation angles), possibly empty.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise CircuitError(f"unknown gate {self.name!r}")
        if len(self.qubits) != spec.num_qubits:
            raise CircuitError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(self.params) != spec.num_params:
            raise CircuitError(
                f"gate {self.name!r} expects {spec.num_params} params, "
                f"got {len(self.params)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"gate {self.name!r} has repeated qubits {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise CircuitError(f"gate {self.name!r} has negative qubit in {self.qubits}")

    @property
    def spec(self) -> GateSpec:
        return GATE_SPECS[self.name]

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_diagonal(self) -> bool:
        """True when the gate's unitary is diagonal in the computational basis."""
        return self.spec.diagonal

    def matrix(self) -> np.ndarray:
        """Return the gate's unitary as a ``2^k x 2^k`` complex matrix.

        The matrix is memoized per ``(name, params)`` and returned as a
        shared *read-only* array: it is built once per distinct gate, not
        once per chunk it is applied to.  Copy before mutating.
        """
        return _cached_matrix(self.name, self.params)

    def diagonal(self) -> np.ndarray:
        """The ``2^k`` diagonal entries of a diagonal gate (memoized, read-only).

        Raises:
            CircuitError: If the gate is not diagonal in the computational
                basis (its action is not described by a diagonal).
        """
        if not self.is_diagonal:
            raise CircuitError(f"gate {self.name!r} is not diagonal")
        return _cached_diagonal(self.name, self.params)

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each qubit ``q``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({args}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"
