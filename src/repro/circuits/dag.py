"""Gate-dependency DAG.

Two gates depend on each other when they share a qubit and the later one must
observe the earlier one's effect.  The Q-GPU reordering pass (paper Section
IV-C) traverses this DAG in topological order, so the DAG exposes exactly the
queries Algorithms 2 and 3 need: per-node predecessor counts, descendant
iteration, and initially-ready nodes.

The builder applies the standard last-writer dependency rule: gate ``g``
depends on the most recent earlier gate touching each of ``g``'s qubits.
Optionally, *diagonal commutation* can be enabled: two diagonal gates commute
even on shared qubits, so no edge is needed between them.  The paper's
reordering is conservative (any shared qubit is a dependency), which is the
default here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import CircuitError


@dataclass
class DagNode:
    """A gate occurrence inside a :class:`GateDag`.

    Attributes:
        index: Position of the gate in the original circuit order; also the
            node's identity inside the DAG.
        gate: The gate itself.
        predecessors: Indices of nodes that must execute before this one.
        successors: Indices of nodes that depend on this one.
    """

    index: int
    gate: Gate
    predecessors: set[int] = field(default_factory=set)
    successors: set[int] = field(default_factory=set)


class GateDag:
    """Dependency DAG over the gates of a circuit.

    Args:
        circuit: Source circuit; node ``k`` corresponds to ``circuit[k]``.
        commute_diagonals: When True, consecutive diagonal gates sharing a
            qubit are treated as independent (they commute exactly).  The
            paper's pass does not exploit this; it is provided for the
            ablation study.
    """

    def __init__(self, circuit: QuantumCircuit, commute_diagonals: bool = False) -> None:
        self.num_qubits = circuit.num_qubits
        self.commute_diagonals = commute_diagonals
        self.nodes: list[DagNode] = [
            DagNode(index, gate) for index, gate in enumerate(circuit)
        ]
        self._build(circuit)

    def _build(self, circuit: QuantumCircuit) -> None:
        # For the conservative rule, track the last gate on each qubit.  For
        # the diagonal-commutation rule, track the full run of trailing
        # diagonal gates per qubit plus the last non-diagonal gate, because a
        # non-diagonal gate must order after *all* of them.
        last_on_qubit: list[int | None] = [None] * self.num_qubits
        trailing_diagonals: list[list[int]] = [[] for _ in range(self.num_qubits)]

        for node in self.nodes:
            gate = node.gate
            deps: set[int] = set()
            for q in gate.qubits:
                if not self.commute_diagonals:
                    if last_on_qubit[q] is not None:
                        deps.add(last_on_qubit[q])
                    continue
                if gate.is_diagonal:
                    # Depends only on the last non-diagonal gate on q.
                    if last_on_qubit[q] is not None:
                        deps.add(last_on_qubit[q])
                else:
                    # Must follow every trailing diagonal gate and the last
                    # non-diagonal gate on q.
                    deps.update(trailing_diagonals[q])
                    if last_on_qubit[q] is not None:
                        deps.add(last_on_qubit[q])
            deps.discard(node.index)
            for dep in deps:
                node.predecessors.add(dep)
                self.nodes[dep].successors.add(node.index)
            for q in gate.qubits:
                if self.commute_diagonals and gate.is_diagonal:
                    trailing_diagonals[q].append(node.index)
                else:
                    last_on_qubit[q] = node.index
                    trailing_diagonals[q] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DagNode]:
        return iter(self.nodes)

    def roots(self) -> list[int]:
        """Nodes with no predecessors, in circuit order."""
        return [node.index for node in self.nodes if not node.predecessors]

    def topological_order(self) -> list[int]:
        """A topological order of node indices (stable: ties by circuit order)."""
        remaining = [len(node.predecessors) for node in self.nodes]
        ready = [node.index for node in self.nodes if remaining[node.index] == 0]
        order: list[int] = []
        cursor = 0
        while cursor < len(ready):
            index = ready[cursor]
            cursor += 1
            order.append(index)
            for succ in sorted(self.nodes[index].successors):
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):  # pragma: no cover - defensive
            raise CircuitError("dependency graph contains a cycle")
        return order

    def is_valid_order(self, order: list[int]) -> bool:
        """True when ``order`` is a permutation respecting all dependencies."""
        if sorted(order) != list(range(len(self.nodes))):
            return False
        position = {index: pos for pos, index in enumerate(order)}
        for node in self.nodes:
            for dep in node.predecessors:
                if position[dep] >= position[node.index]:
                    return False
        return True

    def as_edges(self) -> list[tuple[int, int]]:
        """All dependency edges as ``(earlier, later)`` pairs."""
        return [
            (dep, node.index) for node in self.nodes for dep in sorted(node.predecessors)
        ]
