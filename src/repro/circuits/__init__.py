"""Quantum circuit intermediate representation.

Public surface: :class:`Gate`, :class:`QuantumCircuit`, :class:`GateDag`,
OpenQASM interchange, and the benchmark circuit library.
"""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DagNode, GateDag
from repro.circuits.gates import GATE_SPECS, Gate, GateSpec
from repro.circuits.qasm import from_qasm, to_qasm

__all__ = [
    "GATE_SPECS",
    "DagNode",
    "Gate",
    "GateDag",
    "GateSpec",
    "QuantumCircuit",
    "from_qasm",
    "to_qasm",
]
